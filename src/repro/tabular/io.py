"""CSV reading and writing for :class:`repro.tabular.Table`.

The experiments ship synthetic datasets that users may want to inspect or
archive; these helpers provide a dependency-free round-trip to CSV with a
small amount of type inference (numbers become numeric columns, 0/1 columns
become boolean, everything else becomes categorical).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from .column import CategoricalColumn
from .errors import CSVFormatError
from .table import Table

__all__ = ["read_csv", "write_csv"]


def _parse_cell(text: str) -> object:
    """Parse one CSV cell into int, float, or string."""
    stripped = text.strip()
    if stripped == "":
        raise CSVFormatError("empty cells are not supported (no missing-value handling)")
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        return stripped


def read_csv(path: str | Path) -> Table:
    """Read a CSV file with a header row into a :class:`Table`.

    Column types are inferred per column: if every cell parses as a number the
    column is numeric (and boolean if the values are exactly 0/1), otherwise
    the column is categorical.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise CSVFormatError(f"{path} is empty") from None
        rows = list(reader)
    if not header or any(not name.strip() for name in header):
        raise CSVFormatError(f"{path} has a missing or blank column name in its header")
    columns: dict[str, list] = {name.strip(): [] for name in header}
    names = list(columns.keys())
    for line_number, row in enumerate(rows, start=2):
        if len(row) != len(names):
            raise CSVFormatError(
                f"{path}:{line_number} has {len(row)} cells, expected {len(names)}"
            )
        for name, cell in zip(names, row):
            columns[name].append(_parse_cell(cell))
    typed: dict[str, list] = {}
    for name, values in columns.items():
        if any(isinstance(v, str) for v in values):
            typed[name] = [str(v) for v in values]
        else:
            typed[name] = values
    return Table(typed)


def write_csv(table: Table, path: str | Path, columns: Sequence[str] | None = None) -> None:
    """Write ``table`` to ``path`` as CSV with a header row."""
    path = Path(path)
    names = list(columns) if columns is not None else list(table.column_names)
    data = {}
    for name in names:
        column = table.column(name)
        if isinstance(column, CategoricalColumn):
            data[name] = column.labels.tolist()
        else:
            data[name] = column.to_list()
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(table.num_rows):
            writer.writerow([data[name][i] for name in names])
