"""Typed column wrappers used by :class:`repro.tabular.Table`.

A column is a one-dimensional numpy array plus a small amount of metadata.
Three kinds of columns are supported, mirroring the attribute types the paper
works with:

``NumericColumn``
    Continuous or integer-valued attributes (GPA, test scores, ENI, decile
    scores, ranking-function scores).

``BooleanColumn``
    Binary fairness attributes (low-income, English-language-learner,
    special-education, per-race indicator columns).

``CategoricalColumn``
    String-labelled attributes (race, district).  Stored as integer codes with
    a lookup table of categories, so tables stay purely numeric inside.

Columns are immutable from the caller's perspective: every transforming
operation returns a new column.  The underlying arrays are never exposed for
in-place mutation (``values`` returns a read-only view), which keeps
:class:`~repro.tabular.table.Table` cheap to copy and safe to share between
experiments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import ColumnTypeError

__all__ = [
    "Column",
    "NumericColumn",
    "BooleanColumn",
    "CategoricalColumn",
    "column_from_values",
]


class Column:
    """Base class for all column types.

    Parameters
    ----------
    values:
        One-dimensional array-like holding the column contents.
    name:
        Optional column name; the owning table overrides this with the key it
        stores the column under.
    """

    #: numpy dtype kind characters accepted by the subclass.
    _accepted_kinds: tuple[str, ...] = ()

    def __init__(self, values: Iterable, name: str = "") -> None:
        array = np.asarray(values)
        if array.ndim != 1:
            raise ColumnTypeError(
                f"columns must be one-dimensional, got shape {array.shape}"
            )
        array = self._coerce(array)
        array.setflags(write=False)
        self._values = array
        self.name = name

    # -- subclass hooks ----------------------------------------------------
    def _coerce(self, array: np.ndarray) -> np.ndarray:
        """Validate/convert the raw array; subclasses override."""
        return array

    # -- basic protocol ----------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Read-only view of the underlying numpy array."""
        return self._values

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __iter__(self):
        return iter(self._values)

    def __getitem__(self, index):
        result = self._values[index]
        if np.isscalar(result) or result.ndim == 0:
            return result
        return self._with_values(result)

    def __eq__(self, other: object) -> bool:  # pragma: no cover - trivial
        if not isinstance(other, Column):
            return NotImplemented
        return (
            type(self) is type(other)
            and len(self) == len(other)
            and bool(np.array_equal(self._values, other._values))
        )

    def __repr__(self) -> str:
        preview = np.array2string(self._values[:6], separator=", ")
        suffix = ", ..." if len(self) > 6 else ""
        return f"{type(self).__name__}(name={self.name!r}, n={len(self)}, values={preview}{suffix})"

    # -- transformations ----------------------------------------------------
    def _with_values(self, values: np.ndarray) -> "Column":
        clone = type(self).__new__(type(self))
        values = np.asarray(values)
        values.setflags(write=False)
        clone._values = values
        clone.name = self.name
        return clone

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column with the rows at ``indices`` (in that order)."""
        return self._with_values(self._values[np.asarray(indices)])

    def mask(self, boolean_mask: np.ndarray) -> "Column":
        """Return a new column with only the rows where ``boolean_mask`` is True."""
        mask = np.asarray(boolean_mask, dtype=bool)
        return self._with_values(self._values[mask])

    def concat(self, other: "Column") -> "Column":
        """Concatenate two columns of the same type."""
        if type(self) is not type(other):
            raise ColumnTypeError(
                f"cannot concatenate {type(self).__name__} with {type(other).__name__}"
            )
        return self._with_values(np.concatenate([self._values, other._values]))

    # -- conversions ---------------------------------------------------------
    def to_numeric(self) -> np.ndarray:
        """Return the column as a float array (categoricals return their codes)."""
        return self._values.astype(float)

    def to_list(self) -> list:
        return self._values.tolist()

    # -- summaries -----------------------------------------------------------
    def mean(self) -> float:
        return float(np.mean(self.to_numeric()))

    def min(self) -> float:
        return float(np.min(self.to_numeric()))

    def max(self) -> float:
        return float(np.max(self.to_numeric()))

    def std(self) -> float:
        return float(np.std(self.to_numeric()))


class NumericColumn(Column):
    """Continuous or integer-valued column stored as ``float64`` or int."""

    _accepted_kinds = ("f", "i", "u")

    def _coerce(self, array: np.ndarray) -> np.ndarray:
        if array.dtype.kind == "b":
            return array.astype(np.int64)
        if array.dtype.kind not in self._accepted_kinds:
            try:
                return array.astype(np.float64)
            except (TypeError, ValueError) as exc:
                raise ColumnTypeError(
                    f"cannot build a numeric column from dtype {array.dtype}"
                ) from exc
        if array.dtype.kind == "f" and array.dtype != np.float64:
            return array.astype(np.float64)
        return array

    def normalized(self) -> "NumericColumn":
        """Return the column min-max normalized into [0, 1].

        Constant columns normalize to all zeros rather than dividing by zero.
        """
        values = self.to_numeric()
        low, high = float(values.min()), float(values.max())
        if high == low:
            return NumericColumn(np.zeros_like(values), name=self.name)
        return NumericColumn((values - low) / (high - low), name=self.name)


class BooleanColumn(Column):
    """Binary {0, 1} column used for most fairness attributes."""

    _accepted_kinds = ("b",)

    def _coerce(self, array: np.ndarray) -> np.ndarray:
        if array.dtype.kind == "b":
            return array
        numeric = array.astype(np.float64)
        unique = np.unique(numeric)
        if not np.all(np.isin(unique, (0.0, 1.0))):
            raise ColumnTypeError(
                "boolean columns may only contain 0/1 or True/False values; "
                f"got values {unique[:10]}"
            )
        return numeric.astype(bool)

    def to_numeric(self) -> np.ndarray:
        return self._values.astype(float)

    def rate(self) -> float:
        """Proportion of True rows (the group's prevalence)."""
        return float(self._values.mean()) if len(self) else 0.0


class CategoricalColumn(Column):
    """String-labelled column stored as integer codes plus a category list."""

    def __init__(self, values: Iterable, name: str = "", categories: Sequence[str] | None = None) -> None:
        raw = np.asarray(list(values), dtype=object)
        if raw.ndim != 1:
            raise ColumnTypeError("categorical columns must be one-dimensional")
        labels = np.asarray([str(v) for v in raw], dtype=object)
        if categories is None:
            cats = tuple(sorted(set(labels.tolist())))
        else:
            cats = tuple(str(c) for c in categories)
            unknown = set(labels.tolist()) - set(cats)
            if unknown:
                raise ColumnTypeError(
                    f"values {sorted(unknown)} are not in the provided categories {list(cats)}"
                )
        index = {c: i for i, c in enumerate(cats)}
        codes = np.asarray([index[v] for v in labels], dtype=np.int64)
        codes.setflags(write=False)
        self._values = codes
        self._categories = cats
        self.name = name

    @property
    def categories(self) -> tuple[str, ...]:
        return self._categories

    @property
    def labels(self) -> np.ndarray:
        """The string labels for each row (reconstructed from codes)."""
        lookup = np.asarray(self._categories, dtype=object)
        return lookup[self._values]

    def _with_values(self, values: np.ndarray) -> "CategoricalColumn":
        clone = CategoricalColumn.__new__(CategoricalColumn)
        values = np.asarray(values, dtype=np.int64)
        values.setflags(write=False)
        clone._values = values
        clone._categories = self._categories
        clone.name = self.name
        return clone

    def concat(self, other: "Column") -> "CategoricalColumn":
        if not isinstance(other, CategoricalColumn):
            raise ColumnTypeError("can only concatenate categorical with categorical")
        if other._categories == self._categories:
            return self._with_values(np.concatenate([self._values, other._values]))
        merged = CategoricalColumn(
            np.concatenate([self.labels, other.labels]), name=self.name
        )
        return merged

    def indicator(self, category: str) -> BooleanColumn:
        """Return a 0/1 column that is 1 for rows equal to ``category``."""
        if category not in self._categories:
            raise ColumnTypeError(
                f"category {category!r} not among {list(self._categories)}"
            )
        code = self._categories.index(category)
        return BooleanColumn(self._values == code, name=f"{self.name}={category}")

    def one_hot(self) -> dict[str, BooleanColumn]:
        """Return one indicator column per category, keyed by category label."""
        return {category: self.indicator(category) for category in self._categories}

    def value_counts(self) -> dict[str, int]:
        counts = np.bincount(self._values, minlength=len(self._categories))
        return {c: int(n) for c, n in zip(self._categories, counts)}


def column_from_values(values: Iterable, name: str = "") -> Column:
    """Build the most specific column type that fits ``values``.

    Strings become :class:`CategoricalColumn`; exact {0,1}/bool data becomes
    :class:`BooleanColumn`; everything numeric becomes :class:`NumericColumn`.
    """
    if isinstance(values, Column):
        return values
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if array.dtype.kind in ("U", "S", "O"):
        return CategoricalColumn(array, name=name)
    if array.dtype.kind == "b":
        return BooleanColumn(array, name=name)
    numeric = array.astype(np.float64)
    unique = np.unique(numeric)
    if unique.size <= 2 and np.all(np.isin(unique, (0.0, 1.0))):
        return BooleanColumn(numeric, name=name)
    return NumericColumn(array, name=name)
