"""Exceptions raised by the :mod:`repro.tabular` substrate.

The tabular layer is a small, dependency-free replacement for the subset of
pandas functionality that the paper's algorithms need (column access,
filtering, sorting, sampling, and CSV round-trips).  All of its errors derive
from :class:`TabularError` so callers can catch substrate problems with a
single ``except`` clause.
"""

from __future__ import annotations


class TabularError(Exception):
    """Base class for all errors raised by :mod:`repro.tabular`."""


class ColumnTypeError(TabularError):
    """A column was constructed from, or coerced to, an unsupported dtype."""


class ColumnLengthError(TabularError):
    """Columns of mismatched lengths were combined into one table."""


class MissingColumnError(TabularError, KeyError):
    """A requested column name is not present in the table."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        self.name = name
        self.available = available
        super().__init__(
            f"column {name!r} not found; available columns: {list(available)}"
        )


class DuplicateColumnError(TabularError):
    """The same column name was supplied more than once."""


class EmptySelectionError(TabularError):
    """An operation that requires at least one row received an empty table."""


class SchemaMismatchError(TabularError):
    """Two tables with incompatible schemas were combined."""


class CSVFormatError(TabularError):
    """A CSV file could not be parsed into a table."""
