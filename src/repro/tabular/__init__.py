"""Lightweight columnar-table substrate (pandas replacement) for the reproduction.

Public API::

    from repro.tabular import Table, read_csv, write_csv
"""

from .column import (
    BooleanColumn,
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_values,
)
from .errors import (
    ColumnLengthError,
    ColumnTypeError,
    CSVFormatError,
    DuplicateColumnError,
    EmptySelectionError,
    MissingColumnError,
    SchemaMismatchError,
    TabularError,
)
from .io import read_csv, write_csv
from .table import Table

__all__ = [
    "Table",
    "Column",
    "NumericColumn",
    "BooleanColumn",
    "CategoricalColumn",
    "column_from_values",
    "read_csv",
    "write_csv",
    "TabularError",
    "ColumnTypeError",
    "ColumnLengthError",
    "MissingColumnError",
    "DuplicateColumnError",
    "EmptySelectionError",
    "SchemaMismatchError",
    "CSVFormatError",
]
