"""A small columnar table built on numpy.

:class:`Table` provides the slice of pandas-like behaviour that the paper's
algorithms need: named column access, boolean filtering, sorting by a column
or by an external score array, uniform random sampling, row subsetting, and
summary statistics.  It deliberately stays far smaller than pandas — the goal
is a predictable, easily-audited substrate for the fairness experiments, not
a general data-analysis tool.

Tables are immutable: every operation returns a new table that shares the
underlying (read-only) column arrays where possible.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .column import (
    CategoricalColumn,
    Column,
    column_from_values,
)
from .errors import (
    ColumnLengthError,
    DuplicateColumnError,
    EmptySelectionError,
    MissingColumnError,
    SchemaMismatchError,
)

__all__ = ["Table"]


class Table:
    """An immutable, ordered collection of named columns of equal length.

    Parameters
    ----------
    columns:
        Mapping from column name to column data (any array-like, or an
        existing :class:`~repro.tabular.column.Column`).

    Examples
    --------
    >>> table = Table({"score": [3.0, 1.0, 2.0], "low_income": [1, 0, 1]})
    >>> table.num_rows
    3
    >>> table.sort_by("score", descending=True).column("score").to_list()
    [3.0, 2.0, 1.0]
    """

    def __init__(self, columns: Mapping[str, Iterable] | None = None) -> None:
        self._columns: dict[str, Column] = {}
        length: int | None = None
        for name, values in (columns or {}).items():
            if name in self._columns:
                raise DuplicateColumnError(f"duplicate column name {name!r}")
            column = column_from_values(values, name=name)
            column.name = name
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise ColumnLengthError(
                    f"column {name!r} has length {len(column)}, expected {length}"
                )
            self._columns[name] = column
        self._length = length or 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, columns: Mapping[str, Column]) -> "Table":
        """Build a table directly from already-constructed columns."""
        table = cls()
        length: int | None = None
        for name, column in columns.items():
            if not isinstance(column, Column):
                column = column_from_values(column, name=name)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise ColumnLengthError(
                    f"column {name!r} has length {len(column)}, expected {length}"
                )
            column.name = name
            table._columns[name] = column
        table._length = length or 0
        return table

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, object]]) -> "Table":
        """Build a table from a sequence of row dictionaries.

        All rows must contain the same keys.
        """
        if not rows:
            return cls()
        keys = list(rows[0].keys())
        for i, row in enumerate(rows):
            if list(row.keys()) != keys:
                raise SchemaMismatchError(
                    f"row {i} has keys {list(row.keys())}, expected {keys}"
                )
        return cls({key: [row[key] for row in rows] for key in keys})

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns.keys())

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(self._columns[name] == other._columns[name] for name in self._columns)

    def __repr__(self) -> str:
        return f"Table(rows={self.num_rows}, columns={list(self.column_names)})"

    # ------------------------------------------------------------------
    # column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> Column:
        """Return the column named ``name``.

        Raises
        ------
        MissingColumnError
            If the column does not exist.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise MissingColumnError(name, self.column_names) from None

    def numeric(self, name: str) -> np.ndarray:
        """Return the column named ``name`` as a float array."""
        return self.column(name).to_numeric()

    def matrix(self, names: Sequence[str]) -> np.ndarray:
        """Return the given columns stacked into an ``(n_rows, n_cols)`` float matrix."""
        if not names:
            return np.empty((self.num_rows, 0), dtype=float)
        return np.column_stack([self.numeric(name) for name in names])

    def row(self, index: int) -> dict[str, object]:
        """Return row ``index`` as a plain dict (categoricals give labels)."""
        if index < -self._length or index >= self._length:
            raise IndexError(f"row index {index} out of range for {self._length} rows")
        out: dict[str, object] = {}
        for name, column in self._columns.items():
            if isinstance(column, CategoricalColumn):
                out[name] = column.labels[index]
            else:
                out[name] = column.values[index].item()
        return out

    def rows(self) -> Iterator[dict[str, object]]:
        """Iterate over the table as row dictionaries (slow; for tests and IO)."""
        for i in range(self._length):
            yield self.row(i)

    # ------------------------------------------------------------------
    # derived tables
    # ------------------------------------------------------------------
    def _wrap(self, columns: dict[str, Column], length: int) -> "Table":
        table = Table.__new__(Table)
        table._columns = columns
        table._length = length
        return table

    def with_column(self, name: str, values: Iterable) -> "Table":
        """Return a new table with ``name`` added (or replaced)."""
        column = column_from_values(values, name=name)
        column.name = name
        if self._columns and len(column) != self._length:
            raise ColumnLengthError(
                f"new column {name!r} has length {len(column)}, expected {self._length}"
            )
        columns = dict(self._columns)
        columns[name] = column
        return self._wrap(columns, len(column))

    def without_columns(self, names: Sequence[str]) -> "Table":
        """Return a new table with the given columns removed."""
        missing = [name for name in names if name not in self._columns]
        if missing:
            raise MissingColumnError(missing[0], self.column_names)
        columns = {k: v for k, v in self._columns.items() if k not in set(names)}
        return self._wrap(columns, self._length)

    def select(self, names: Sequence[str]) -> "Table":
        """Return a new table containing only the given columns, in order."""
        columns = {name: self.column(name) for name in names}
        return self._wrap(columns, self._length)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a new table with columns renamed according to ``mapping``."""
        columns: dict[str, Column] = {}
        for name, column in self._columns.items():
            new_name = mapping.get(name, name)
            if new_name in columns:
                raise DuplicateColumnError(f"rename produces duplicate column {new_name!r}")
            renamed = column._with_values(column.values)
            renamed.name = new_name
            columns[new_name] = renamed
        return self._wrap(columns, self._length)

    def take(self, indices: Sequence[int] | np.ndarray) -> "Table":
        """Return a new table with rows at ``indices`` (in that order)."""
        index_array = np.asarray(indices, dtype=np.int64)
        columns = {name: column.take(index_array) for name, column in self._columns.items()}
        return self._wrap(columns, int(index_array.shape[0]))

    def filter(self, mask: np.ndarray | Callable[["Table"], np.ndarray]) -> "Table":
        """Return rows where ``mask`` is True.

        ``mask`` may be a boolean array of length ``num_rows`` or a callable
        receiving the table and returning such an array.
        """
        if callable(mask):
            mask = mask(self)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._length,):
            raise ColumnLengthError(
                f"filter mask has shape {mask.shape}, expected ({self._length},)"
            )
        columns = {name: column.mask(mask) for name, column in self._columns.items()}
        return self._wrap(columns, int(mask.sum()))

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        n = max(0, min(n, self._length))
        return self.take(np.arange(n))

    def sort_by(
        self,
        key: str | np.ndarray,
        descending: bool = False,
        tie_breaker: np.ndarray | None = None,
    ) -> "Table":
        """Return the table sorted by a column name or an external key array.

        Sorting is stable.  When ``tie_breaker`` is given, rows with equal
        primary keys are ordered by it (ascending), which the ranking layer
        uses to make top-k selection deterministic.
        """
        if isinstance(key, str):
            primary = self.numeric(key)
        else:
            primary = np.asarray(key, dtype=float)
            if primary.shape != (self._length,):
                raise ColumnLengthError(
                    f"sort key has shape {primary.shape}, expected ({self._length},)"
                )
        if descending:
            primary = -primary
        if tie_breaker is None:
            order = np.argsort(primary, kind="stable")
        else:
            tie = np.asarray(tie_breaker, dtype=float)
            order = np.lexsort((tie, primary))
        return self.take(order)

    def sample(
        self,
        size: int,
        rng: np.random.Generator | None = None,
        replace: bool = False,
    ) -> "Table":
        """Return ``size`` rows drawn uniformly at random.

        DCA draws its per-step samples through this method.  When ``size``
        exceeds the number of rows and ``replace`` is False, the whole table
        is returned (a common situation for very small selection rates on
        small datasets).
        """
        if self._length == 0:
            raise EmptySelectionError("cannot sample from an empty table")
        rng = rng or np.random.default_rng()
        if not replace and size >= self._length:
            return self
        indices = rng.choice(self._length, size=size, replace=replace)
        return self.take(indices)

    def shuffle(self, rng: np.random.Generator | None = None) -> "Table":
        """Return the table with rows in a uniformly random order."""
        rng = rng or np.random.default_rng()
        return self.take(rng.permutation(self._length))

    def split(self, fraction: float, rng: np.random.Generator | None = None) -> tuple["Table", "Table"]:
        """Randomly split into two tables of sizes ``fraction`` and ``1 - fraction``."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        rng = rng or np.random.default_rng()
        permutation = rng.permutation(self._length)
        cut = int(round(fraction * self._length))
        return self.take(permutation[:cut]), self.take(permutation[cut:])

    def concat(self, other: "Table") -> "Table":
        """Stack two tables with identical column names vertically."""
        if self.num_rows == 0:
            return other
        if other.num_rows == 0:
            return self
        if set(self.column_names) != set(other.column_names):
            raise SchemaMismatchError(
                f"cannot concat tables with columns {self.column_names} and {other.column_names}"
            )
        columns = {
            name: column.concat(other.column(name)) for name, column in self._columns.items()
        }
        return self._wrap(columns, self._length + other.num_rows)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def means(self, names: Sequence[str] | None = None) -> dict[str, float]:
        """Column means (the centroid used by the disparity metric)."""
        names = list(names) if names is not None else list(self.column_names)
        return {name: self.column(name).mean() for name in names}

    def centroid(self, names: Sequence[str]) -> np.ndarray:
        """Return the mean of each named column as a vector (order preserved)."""
        if self._length == 0:
            raise EmptySelectionError("centroid of an empty table is undefined")
        return np.asarray([self.column(name).mean() for name in names], dtype=float)

    def group_rates(self, names: Sequence[str]) -> dict[str, float]:
        """Prevalence of each binary fairness attribute (mean of the column)."""
        return {name: float(np.mean(self.numeric(name))) for name in names}

    def describe(self) -> dict[str, dict[str, float]]:
        """Simple numeric summary for every non-categorical column."""
        summary: dict[str, dict[str, float]] = {}
        for name, column in self._columns.items():
            if isinstance(column, CategoricalColumn):
                continue
            summary[name] = {
                "mean": column.mean(),
                "std": column.std(),
                "min": column.min(),
                "max": column.max(),
            }
        return summary

    def to_dict(self) -> dict[str, list]:
        """Plain-python dict of lists (categoricals give labels)."""
        out: dict[str, list] = {}
        for name, column in self._columns.items():
            if isinstance(column, CategoricalColumn):
                out[name] = column.labels.tolist()
            else:
                out[name] = column.to_list()
        return out
