"""Bonus-point vectors (Definition 2 of the paper).

A bonus vector assigns a non-negative number of points to each fairness
attribute.  The compensated score of an object is::

    f_b(o) = f(o) + A_f(o) · B

where ``A_f(o)`` is the object's fairness-attribute vector.  For binary
attributes this simply adds the bonus to members of the group; for continuous
attributes (such as the Economic Need Index) the bonus acts as a multiplier
on the attribute value, giving "a more precise disparity compensation tool".

Bonus vectors are the explainable artefact the whole method produces: they
can be published in advance, compared across attributes, scaled down to trade
fairness against utility, capped, and rounded to a stakeholder-chosen
granularity.  All of those operations live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..tabular import Table

__all__ = ["BonusVector", "apply_bonus", "compensate_scores"]


@dataclass(frozen=True)
class BonusVector:
    """An immutable mapping from fairness-attribute name to bonus points.

    Examples
    --------
    >>> bonus = BonusVector({"low_income": 1.0, "ell": 11.5})
    >>> bonus["ell"]
    11.5
    >>> bonus.scaled(0.5).as_dict()
    {'low_income': 0.5, 'ell': 5.75}
    """

    attribute_names: tuple[str, ...]
    values: np.ndarray

    def __init__(self, bonuses: Mapping[str, float] | None = None,
                 attribute_names: Sequence[str] | None = None,
                 values: Sequence[float] | None = None) -> None:
        if bonuses is not None:
            names = tuple(str(name) for name in bonuses.keys())
            array = np.asarray([float(v) for v in bonuses.values()], dtype=float)
        else:
            if attribute_names is None or values is None:
                raise ValueError(
                    "provide either a bonuses mapping or attribute_names and values"
                )
            names = tuple(str(name) for name in attribute_names)
            array = np.asarray(list(values), dtype=float)
        if array.shape != (len(names),):
            raise ValueError(
                f"values have shape {array.shape}, expected ({len(names)},)"
            )
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in {names}")
        array = array.copy()
        array.setflags(write=False)
        object.__setattr__(self, "attribute_names", names)
        object.__setattr__(self, "values", array)

    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, attribute_names: Sequence[str]) -> "BonusVector":
        """A bonus vector of all zeros (the uncompensated baseline)."""
        return cls(attribute_names=attribute_names, values=np.zeros(len(attribute_names)))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.attribute_names)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attribute_names)

    def __getitem__(self, name: str) -> float:
        try:
            index = self.attribute_names.index(name)
        except ValueError:
            raise KeyError(
                f"no bonus for attribute {name!r}; attributes: {list(self.attribute_names)}"
            ) from None
        return float(self.values[index])

    def as_dict(self) -> dict[str, float]:
        return {name: float(value) for name, value in zip(self.attribute_names, self.values)}

    def __repr__(self) -> str:
        pairs = ", ".join(f"{name}: {value:g}" for name, value in self.as_dict().items())
        return f"BonusVector({{{pairs}}})"

    # ------------------------------------------------------------------
    # transformations (all return new vectors)
    # ------------------------------------------------------------------
    def _with_values(self, values: np.ndarray) -> "BonusVector":
        return BonusVector(attribute_names=self.attribute_names, values=values)

    def replace(self, **bonuses: float) -> "BonusVector":
        """Return a copy with the named bonuses overridden."""
        updated = self.as_dict()
        for name, value in bonuses.items():
            if name not in updated:
                raise KeyError(f"unknown attribute {name!r}")
            updated[name] = float(value)
        return BonusVector(updated)

    def scaled(self, proportion: float) -> "BonusVector":
        """Multiply every bonus by ``proportion``.

        This is the knob behind the paper's Figures 2, 3, and 7: applying a
        fraction of the recommended bonus points trades disparity reduction
        against ranking utility near-linearly.
        """
        if proportion < 0:
            raise ValueError(f"proportion must be non-negative, got {proportion}")
        return self._with_values(self.values * float(proportion))

    def clipped(self, minimum: float = 0.0, maximum: float | None = None) -> "BonusVector":
        """Clip every bonus into [minimum, maximum] (Section VI-A4, Figure 5)."""
        if maximum is not None and maximum < minimum:
            raise ValueError(f"maximum {maximum} is below minimum {minimum}")
        upper = np.inf if maximum is None else float(maximum)
        return self._with_values(np.clip(self.values, float(minimum), upper))

    def rounded(self, granularity: float = 0.5) -> "BonusVector":
        """Round every bonus to the nearest multiple of ``granularity``.

        The paper restricts published bonus points to multiples of 0.5 "for
        simplicity and efficiency"; stakeholders may choose other step sizes.
        """
        if granularity <= 0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        return self._with_values(np.round(self.values / granularity) * granularity)

    def norm(self) -> float:
        """The L2 norm of the bonus values (a size diagnostic, not a fairness metric)."""
        return float(np.linalg.norm(self.values))

    # ------------------------------------------------------------------
    # application to data
    # ------------------------------------------------------------------
    def attribute_matrix(self, table: Table) -> np.ndarray:
        """The fairness-attribute matrix ``A_f`` of ``table`` in this vector's order."""
        return table.matrix(list(self.attribute_names))

    def adjustments(self, table: Table) -> np.ndarray:
        """Per-object score adjustment ``A_f(o) · B`` for every row of ``table``."""
        if len(self) == 0:
            return np.zeros(table.num_rows, dtype=float)
        return self.attribute_matrix(table) @ self.values

    def apply(self, table: Table, base_scores: np.ndarray) -> np.ndarray:
        """Compensated scores ``f_b(o) = f(o) + A_f(o) · B`` for every row."""
        base_scores = np.asarray(base_scores, dtype=float)
        if base_scores.shape != (table.num_rows,):
            raise ValueError(
                f"base_scores have shape {base_scores.shape}, expected ({table.num_rows},)"
            )
        return base_scores + self.adjustments(table)

    def explain(self, table: Table, base_scores: np.ndarray, row: int) -> dict[str, float]:
        """Break one object's compensated score into explainable components.

        Returns the base score, each attribute's contribution, and the total —
        the per-applicant transparency artefact the paper argues for.
        """
        base_scores = np.asarray(base_scores, dtype=float)
        contributions: dict[str, float] = {"base_score": float(base_scores[row])}
        for name in self.attribute_names:
            contributions[f"bonus:{name}"] = float(
                table.numeric(name)[row] * self[name]
            )
        contributions["total"] = float(
            base_scores[row] + sum(v for k, v in contributions.items() if k.startswith("bonus:"))
        )
        return contributions


def apply_bonus(table: Table, base_scores: np.ndarray, bonus: BonusVector) -> np.ndarray:
    """Functional alias for :meth:`BonusVector.apply`."""
    return bonus.apply(table, base_scores)


def compensate_scores(
    attribute_matrix: np.ndarray, base_scores: np.ndarray, bonus_values: np.ndarray
) -> np.ndarray:
    """Array-plane compensation: ``f_b = f + A_f · B`` on raw arrays.

    The DCA hot loop calls this with a row subset of the precomputed
    fairness-attribute matrix instead of routing each sampled step through a
    :class:`~repro.tabular.Table` and a :class:`BonusVector`; the arithmetic
    is the same ``base + matrix @ values`` that :meth:`BonusVector.apply`
    performs.
    """
    return base_scores + attribute_matrix @ bonus_values
