"""A standalone Adam optimizer (Kingma & Ba, 2015).

The DCA refinement step (Algorithm 2 of the paper) replaces the fixed
learning rate of Core DCA with Adam's per-parameter adaptive step size, which
the authors note "is especially useful and popular to deal with the noise
created by samples".  The reproduction environment has no ML framework
installed, so the update rule is implemented directly; it follows the
original paper's bias-corrected first/second-moment formulation.

DCA is not gradient descent — the "gradient" fed to Adam is the (sample)
disparity vector itself — but the update mechanics are identical, so this
class is written as a generic vector optimizer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Adam"]


class Adam:
    """Adam optimizer over a single parameter vector.

    Parameters
    ----------
    learning_rate:
        Global step size (``alpha`` in the Adam paper).
    beta1, beta2:
        Exponential decay rates for the first and second moment estimates.
    epsilon:
        Numerical-stability constant added to the denominator.
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta1/beta2 must lie in [0, 1), got {beta1}, {beta2}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._first_moment: np.ndarray | None = None
        self._second_moment: np.ndarray | None = None
        self._step_count = 0

    @property
    def step_count(self) -> int:
        """Number of updates applied so far."""
        return self._step_count

    def reset(self) -> None:
        """Forget all accumulated moment estimates."""
        self._first_moment = None
        self._second_moment = None
        self._step_count = 0

    def step(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return updated parameters after one Adam step along ``-gradient``.

        The caller's arrays are not modified; a new array is returned.
        """
        parameters = np.asarray(parameters, dtype=float)
        gradient = np.asarray(gradient, dtype=float)
        if parameters.shape != gradient.shape:
            raise ValueError(
                f"parameter shape {parameters.shape} does not match gradient shape {gradient.shape}"
            )
        if self._first_moment is None:
            self._first_moment = np.zeros_like(parameters)
            self._second_moment = np.zeros_like(parameters)
        elif self._first_moment.shape != parameters.shape:
            raise ValueError(
                "parameter dimensionality changed between steps: "
                f"{self._first_moment.shape} vs {parameters.shape}"
            )

        self._step_count += 1
        self._first_moment = self.beta1 * self._first_moment + (1.0 - self.beta1) * gradient
        self._second_moment = (
            self.beta2 * self._second_moment + (1.0 - self.beta2) * gradient**2
        )
        first_unbiased = self._first_moment / (1.0 - self.beta1**self._step_count)
        second_unbiased = self._second_moment / (1.0 - self.beta2**self._step_count)
        update = self.learning_rate * first_unbiased / (np.sqrt(second_unbiased) + self.epsilon)
        return parameters - update
