"""The Disparity metric (Definition 3) and its logarithmically discounted variant.

Disparity is the vector difference between the centroid of the *selected*
objects and the centroid of *all* objects over the fairness attributes::

    D ≡ D_k − D_O

Each component lies in [-1, 1] once attributes are normalized to [0, 1]:
negative means the group is under-represented among the selected objects,
positive means over-represented, zero means statistical parity.  The overall
disparity of a selection is summarized by the L2 norm of the vector.

Two evaluation modes are provided:

* :class:`DisparityCalculator` — disparity at one known selection fraction
  ``k`` (the Section III-D definition);
* :class:`LogDiscountedDisparity` — a weighted average of disparities across
  a grid of selection fractions with logarithmic discounting
  (Section IV-E), used when ``k`` is unknown or when an entire ranking
  matters.  The weight of the disparity at the ``i``-th percent is
  ``1 / log2(i + 1)``, normalized by the maximum possible value ``Z``.

Both modes also have an **array-plane** entry point used by the DCA hot loop:
:meth:`DisparityCalculator.normalized_matrix` materializes the normalized
attribute matrix of a population once, and
:meth:`DisparityCalculator.disparity_from_matrix` evaluates a selection
directly on a row subset of it — no :class:`~repro.tabular.Table` slicing per
step.  Because normalization is elementwise, indexing rows out of the
pre-normalized matrix is bitwise identical to normalizing each sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ranking import selection_mask
from ..tabular import Table

__all__ = [
    "AttributeNormalizer",
    "DisparityResult",
    "DisparityCalculator",
    "LogDiscountedDisparity",
    "default_k_grid",
    "disparity_vector",
    "disparity_norm",
]


class AttributeNormalizer:
    """Min-max normalization bounds for fairness attributes.

    Binary attributes are already in [0, 1]; continuous attributes (income,
    ENI, …) are normalized "based on the range of values" (Section III-D).
    The bounds are learned once from a reference population so that samples
    and future cohorts are normalized consistently.
    """

    def __init__(self, attribute_names: Sequence[str]) -> None:
        if not attribute_names:
            raise ValueError("at least one fairness attribute is required")
        self.attribute_names = tuple(attribute_names)
        self._low: np.ndarray | None = None
        self._high: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._low is not None

    def fit(self, table: Table) -> "AttributeNormalizer":
        matrix = table.matrix(list(self.attribute_names))
        self._low = matrix.min(axis=0)
        self._high = matrix.max(axis=0)
        return self

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        if self._low is None or self._high is None:
            raise RuntimeError("normalizer has not been fitted")
        return self._low.copy(), self._high.copy()

    def transform(self, table: Table) -> np.ndarray:
        """Return the normalized fairness-attribute matrix of ``table``."""
        return self.transform_matrix(table.matrix(list(self.attribute_names)))

    def transform_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Normalize a raw ``(rows, attributes)`` matrix in this normalizer's order.

        This is the array-plane twin of :meth:`transform`: the DCA engine
        normalizes the full population matrix once per fit and then serves
        per-step samples by row indexing, which is bitwise identical to
        normalizing each sample separately (the transform is elementwise).
        """
        matrix = np.asarray(matrix, dtype=float)
        if self._low is None or self._high is None:
            # Unfitted: assume attributes are already in [0, 1] (the common
            # case of binary attributes) and clip defensively.
            return np.clip(matrix, 0.0, 1.0)
        span = np.where(self._high > self._low, self._high - self._low, 1.0)
        return np.clip((matrix - self._low) / span, 0.0, 1.0)


@dataclass(frozen=True)
class DisparityResult:
    """A disparity vector with its attribute names and norm."""

    attribute_names: tuple[str, ...]
    vector: np.ndarray

    def __post_init__(self) -> None:
        vector = np.asarray(self.vector, dtype=float)
        if vector.shape != (len(self.attribute_names),):
            raise ValueError(
                f"vector has shape {vector.shape}, expected ({len(self.attribute_names)},)"
            )
        object.__setattr__(self, "vector", vector)

    @property
    def norm(self) -> float:
        return float(np.linalg.norm(self.vector))

    def as_dict(self, include_norm: bool = True) -> dict[str, float]:
        result = {name: float(v) for name, v in zip(self.attribute_names, self.vector)}
        if include_norm:
            result["norm"] = self.norm
        return result

    def __getitem__(self, name: str) -> float:
        try:
            return float(self.vector[self.attribute_names.index(name)])
        except ValueError:
            raise KeyError(
                f"unknown attribute {name!r}; attributes: {list(self.attribute_names)}"
            ) from None

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}: {v:+.3f}" for k, v in self.as_dict(include_norm=False).items())
        return f"DisparityResult({{{pairs}}}, norm={self.norm:.3f})"


class DisparityCalculator:
    """Compute the disparity vector of a top-k selection.

    Parameters
    ----------
    attribute_names:
        Fairness attributes, in reporting order.
    normalizer:
        Optional pre-fitted :class:`AttributeNormalizer`; if omitted, one is
        fitted lazily on the first table seen (adequate when the attributes
        are binary or already scaled to [0, 1]).
    """

    def __init__(
        self,
        attribute_names: Sequence[str],
        normalizer: AttributeNormalizer | None = None,
    ) -> None:
        self.attribute_names = tuple(attribute_names)
        if not self.attribute_names:
            raise ValueError("at least one fairness attribute is required")
        self._normalizer = normalizer or AttributeNormalizer(self.attribute_names)

    @property
    def normalizer(self) -> AttributeNormalizer:
        return self._normalizer

    def fit(self, table: Table) -> "DisparityCalculator":
        """Fit normalization bounds on a reference population."""
        self._normalizer.fit(table)
        return self

    # ------------------------------------------------------------------
    def normalized_matrix(self, table: Table) -> np.ndarray:
        """The normalized fairness-attribute matrix of ``table``.

        Exposed for the array-plane DCA engine, which precomputes this once
        per fit and evaluates samples by row indexing into it.
        """
        return self._normalizer.transform(table)

    def disparity_from_matrix(
        self, matrix: np.ndarray, scores: np.ndarray, k: float
    ) -> DisparityResult:
        """Disparity of a top-``k`` selection given an already-normalized matrix.

        ``matrix`` must be ``(rows, attributes)`` in this calculator's
        attribute order, normalized the way :meth:`normalized_matrix`
        produces it (e.g. a row subset of that matrix).
        """
        matrix = np.asarray(matrix, dtype=float)
        scores = np.asarray(scores, dtype=float)
        if matrix.shape != (scores.shape[0], len(self.attribute_names)):
            raise ValueError(
                f"matrix has shape {matrix.shape}, expected "
                f"({scores.shape[0]}, {len(self.attribute_names)})"
            )
        if matrix.shape[0] == 0:
            raise ValueError("cannot compute disparity over an empty matrix")
        mask = selection_mask(scores, k)
        return DisparityResult(
            self.attribute_names, matrix[mask].mean(axis=0) - matrix.mean(axis=0)
        )

    def disparity(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        """Disparity of selecting the top ``k`` fraction of ``table`` by ``scores``."""
        scores = np.asarray(scores, dtype=float)
        if scores.shape != (table.num_rows,):
            raise ValueError(
                f"scores have shape {scores.shape}, expected ({table.num_rows},)"
            )
        if table.num_rows == 0:
            raise ValueError("cannot compute disparity over an empty table")
        return self.disparity_from_matrix(self.normalized_matrix(table), scores, k)

    def disparity_from_mask(self, table: Table, selected: np.ndarray) -> DisparityResult:
        """Disparity of an arbitrary selected/unselected partition.

        Used to evaluate baselines (quotas, FA*IR re-rankings) whose selection
        is not induced by a score threshold.
        """
        selected = np.asarray(selected, dtype=bool)
        if selected.shape != (table.num_rows,):
            raise ValueError(
                f"mask has shape {selected.shape}, expected ({table.num_rows},)"
            )
        if not selected.any():
            raise ValueError("the selected set is empty")
        matrix = self.normalized_matrix(table)
        return DisparityResult(
            self.attribute_names, matrix[selected].mean(axis=0) - matrix.mean(axis=0)
        )

    def disparity_curve(
        self, table: Table, scores: np.ndarray, k_values: Sequence[float]
    ) -> dict[float, DisparityResult]:
        """Disparity at each selection fraction in ``k_values`` (Figure 4-style sweeps)."""
        return {float(k): self.disparity(table, scores, float(k)) for k in k_values}


def default_k_grid(max_k: float = 0.5, step: float = 0.05) -> tuple[float, ...]:
    """The selection-fraction grid used by the log-discounted objective.

    The paper discounts "at every point in the sample" conceptually but
    evaluates at percentage steps (i ∈ 10, 20, 30 …); a 5-percentage-point
    grid up to ``max_k`` keeps the evaluation cheap while covering the range
    reported in the figures.
    """
    if not 0.0 < max_k <= 1.0:
        raise ValueError(f"max_k must be in (0, 1], got {max_k}")
    if not 0.0 < step <= max_k:
        raise ValueError(f"step must be in (0, max_k], got {step}")
    count = int(round(max_k / step))
    return tuple(round(step * (i + 1), 10) for i in range(count))


class LogDiscountedDisparity:
    """Logarithmically discounted disparity over a grid of selection fractions.

    The discounted disparity is::

        (1 / Z) * Σ_{k in grid}  D_k / log2(100·k + 1)

    where ``Z = Σ 1 / log2(100·k + 1)`` normalizes the weights so the result
    stays in [-1, 1] per dimension.  Earlier (smaller-k) selections receive
    more weight, mirroring the intuition that the top of the ranking matters
    most when the eventual cut-off is unknown.
    """

    def __init__(
        self,
        calculator: DisparityCalculator,
        k_grid: Sequence[float] | None = None,
    ) -> None:
        self.calculator = calculator
        grid = tuple(float(k) for k in (k_grid if k_grid is not None else default_k_grid()))
        if not grid:
            raise ValueError("the k grid must contain at least one selection fraction")
        for k in grid:
            if not 0.0 < k <= 1.0:
                raise ValueError(f"selection fractions must be in (0, 1], got {k}")
        self.k_grid = grid
        weights = np.asarray([1.0 / np.log2(100.0 * k + 1.0) for k in grid], dtype=float)
        self._weights = weights / weights.sum()

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self.calculator.attribute_names

    @property
    def weights(self) -> np.ndarray:
        """Normalized per-k weights (sum to 1)."""
        return self._weights.copy()

    def disparity(self, table: Table, scores: np.ndarray, k: float | None = None) -> DisparityResult:
        """Discounted disparity; ``k``, if given, caps the grid at that fraction."""
        grid = self.k_grid if k is None else tuple(g for g in self.k_grid if g <= k + 1e-12)
        if not grid:
            grid = (self.k_grid[0],)
        weights = np.asarray([1.0 / np.log2(100.0 * g + 1.0) for g in grid], dtype=float)
        weights = weights / weights.sum()
        total = np.zeros(len(self.attribute_names), dtype=float)
        for weight, fraction in zip(weights, grid):
            total += weight * self.calculator.disparity(table, scores, fraction).vector
        return DisparityResult(self.attribute_names, total)


# ----------------------------------------------------------------------
# Functional conveniences used by examples and tests.
# ----------------------------------------------------------------------
def disparity_vector(
    table: Table,
    scores: np.ndarray,
    attribute_names: Sequence[str],
    k: float,
    normalize_on: Table | None = None,
) -> DisparityResult:
    """One-shot disparity computation without building a calculator by hand."""
    calculator = DisparityCalculator(attribute_names)
    calculator.fit(normalize_on if normalize_on is not None else table)
    return calculator.disparity(table, scores, k)


def disparity_norm(
    table: Table,
    scores: np.ndarray,
    attribute_names: Sequence[str],
    k: float,
) -> float:
    """The L2 norm of the disparity vector (the paper's "Norm" column)."""
    return disparity_vector(table, scores, attribute_names, k).norm
