"""The paper's primary contribution: bonus-point disparity compensation (DCA)."""

from .adam import Adam
from .bonus import BonusVector, apply_bonus, compensate_scores
from .calibration import (
    TradeoffPoint,
    proportion_for_disparity,
    proportion_for_utility,
    proportion_sweep,
)
from .config import DCAConfig
from .dca import (
    DCA,
    BatchFitResult,
    CoreDCA,
    DCARefinement,
    FitSpec,
    FullDCA,
    fit_bonus_points,
)
from .disparity import (
    AttributeNormalizer,
    DisparityCalculator,
    DisparityResult,
    LogDiscountedDisparity,
    default_k_grid,
    disparity_norm,
    disparity_vector,
)
from .objectives import (
    CompiledObjective,
    DisparateImpactObjective,
    DisparityObjective,
    ExposureGapObjective,
    FairnessObjective,
    FalsePositiveRateObjective,
    LogDiscountedDisparityObjective,
)
from .parallel import (
    CompiledObjectiveCache,
    PlaneCache,
    ShardedFitPlane,
    SharedColumnStore,
    default_objective_cache,
)
from .scheduler import FitScheduler
from .result import DCAResult, DCATrace
from .sampling import SampleStream, rarest_group_frequency, recommended_sample_size

__all__ = [
    "Adam",
    "BonusVector",
    "apply_bonus",
    "compensate_scores",
    "DCAConfig",
    "DCA",
    "CoreDCA",
    "DCARefinement",
    "FullDCA",
    "FitSpec",
    "BatchFitResult",
    "fit_bonus_points",
    "DCAResult",
    "DCATrace",
    "CompiledObjective",
    "CompiledObjectiveCache",
    "FitScheduler",
    "PlaneCache",
    "ShardedFitPlane",
    "SharedColumnStore",
    "default_objective_cache",
    "AttributeNormalizer",
    "DisparityCalculator",
    "DisparityResult",
    "LogDiscountedDisparity",
    "default_k_grid",
    "disparity_vector",
    "disparity_norm",
    "FairnessObjective",
    "DisparityObjective",
    "LogDiscountedDisparityObjective",
    "DisparateImpactObjective",
    "FalsePositiveRateObjective",
    "ExposureGapObjective",
    "SampleStream",
    "rarest_group_frequency",
    "recommended_sample_size",
    "TradeoffPoint",
    "proportion_sweep",
    "proportion_for_utility",
    "proportion_for_disparity",
]
