"""Shared-memory population planes and compiled-objective caching.

This module is the scaling substrate behind :meth:`repro.core.DCA.fit_many`:

* :class:`CompiledObjectiveCache` — a per-population cache of compiled
  objective state.  Batched fits repeatedly compile the same objective
  against the same cohort (a k sweep compiles one
  :class:`~repro.core.objectives.DisparityObjective` per job, each walking
  the full population); the cache keys compiled state by *(population
  identity, objective signature)* and rebuilds a fresh lightweight
  :class:`~repro.core.objectives.CompiledObjective` around the cached arrays
  per job, so every job keeps private mutable scratch state while the
  population-sized arrays are computed exactly once.
* :class:`SharedPopulationPlane` — packs named NumPy arrays into one
  ``multiprocessing.shared_memory`` segment so process-pool workers can map
  the population (base scores, attribute matrices, compiled objective state)
  instead of receiving a pickled copy per job.
* :func:`execute_process_jobs` — runs :class:`PlaneJob` descriptors on a
  process pool whose workers attach the plane once (in the pool
  initializer) and then serve jobs from lightweight shard descriptors.

The process backend trades a one-time plane construction + worker start-up
cost for true multi-core execution of the Python-level DCA step loop, which
the thread backend cannot parallelize (the loop holds the GIL between NumPy
kernels).  Results are bitwise identical to the serial backend because
workers consume exactly the arrays the serial path would compute and every
job owns its own seeded generator.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import threading
import time
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping, Sequence

import numpy as np

from ..tabular import Table
from .config import DCAConfig
from .objectives import CompiledObjective, FairnessObjective

__all__ = [
    "CompiledObjectiveCache",
    "default_objective_cache",
    "SharedPopulationPlane",
    "PlanePayload",
    "PlaneJob",
    "execute_process_jobs",
    "process_start_method",
]


# ----------------------------------------------------------------------
# Compiled-objective caching
# ----------------------------------------------------------------------
class CompiledObjectiveCache:
    """Cache of compiled-objective state, keyed by population and signature.

    ``compile(objective, table)`` is a drop-in replacement for
    ``objective.compile(table)`` with one precondition: **the objective must
    have been ``fit`` on ``table``** (the invariant every
    :meth:`repro.core.DCA.fit` call establishes before compiling).  Under
    that precondition, two objectives with equal
    :meth:`~repro.core.objectives.FairnessObjective.signature` compile to
    bitwise-identical state, so the cache can hand the second caller a fresh
    compiled instance rebuilt around the first caller's arrays.

    Populations are tracked by object identity through weak references:
    entries die with their table, so holding the module-level default cache
    never pins a cohort in memory.  Objectives whose ``signature()`` is
    ``None`` (the default for custom subclasses) or whose compiled form does
    not support :meth:`~repro.core.objectives.CompiledObjective.export_state`
    bypass the cache entirely.

    The cache is thread-safe; ``hits`` / ``misses`` count cache outcomes for
    diagnostics and tests.
    """

    def __init__(self) -> None:
        # Reentrant: the weakref eviction callback may fire on this thread
        # while the lock is already held.
        self._lock = threading.RLock()
        # id(table) -> (weakref to table, {signature: (cls, arrays, metadata)})
        self._populations: dict[int, tuple[weakref.ref, dict]] = {}
        self.hits = 0
        self.misses = 0

    def _entry_for(self, table: Table) -> dict:
        """The signature->state dict for ``table``, creating it if needed."""
        key = id(table)
        entry = self._populations.get(key)
        if entry is not None and entry[0]() is not table:
            entry = None  # a dead table's id() was recycled
        if entry is None:
            def _evict(_ref: weakref.ref, key: int = key) -> None:
                with self._lock:
                    self._populations.pop(key, None)

            entry = (weakref.ref(table, _evict), {})
            self._populations[key] = entry
        return entry[1]

    def compile(self, objective: FairnessObjective, table: Table) -> CompiledObjective:
        """Compile ``objective`` against ``table``, reusing cached state.

        Precondition: ``objective.fit(table)`` has been called (see class
        docstring).  Returns either the freshly compiled objective (first
        sighting of this signature on this population) or a new instance
        rebuilt from the cached arrays.
        """
        signature = objective.signature()
        if signature is None:
            return objective.compile(table)
        with self._lock:
            states = self._entry_for(table)
            state = states.get(signature)
        if state is not None:
            cls, arrays, metadata = state
            with self._lock:
                self.hits += 1
            return cls.from_state(arrays, metadata)
        compiled = objective.compile(table)
        exported = compiled.export_state()
        with self._lock:
            self.misses += 1
            if exported is not None:
                arrays, metadata = exported
                states[signature] = (type(compiled), arrays, metadata)
        return compiled

    def clear(self) -> None:
        """Drop every cached entry (mostly useful in tests)."""
        with self._lock:
            self._populations.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return sum(len(entry[1]) for entry in self._populations.values())


_DEFAULT_CACHE = CompiledObjectiveCache()


def default_objective_cache() -> CompiledObjectiveCache:
    """The process-wide cache :meth:`repro.core.DCA.fit_many` uses by default.

    Repeated sweeps over the same cohort — across separate ``fit_many``
    calls — share this cache, so only the first sweep pays for compiling
    each objective.  Entries are weakly tied to their tables and vanish when
    the cohort is garbage-collected.
    """
    return _DEFAULT_CACHE


# ----------------------------------------------------------------------
# Shared-memory population plane (parent side)
# ----------------------------------------------------------------------
_ALIGNMENT = 64  # cache-line align every array inside the segment


@dataclass(frozen=True)
class _ArrayRef:
    """Locates one array inside the plane's shared-memory segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int


class SharedPopulationPlane:
    """One shared-memory segment holding a population's named arrays.

    The parent packs every array a batch of fits needs (base scores,
    per-attribute-set matrices, compiled objective state) into a single
    segment; workers attach it by name and serve every job through zero-copy
    read-only views.  The plane owns the segment: call :meth:`close` (or use
    the plane as a context manager) once the pool has shut down to release
    and unlink it.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        packed = {key: np.ascontiguousarray(value) for key, value in arrays.items()}
        total = 0
        offsets: dict[str, int] = {}
        for key, value in packed.items():
            total = -(-total // _ALIGNMENT) * _ALIGNMENT  # round up
            offsets[key] = total
            total += value.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        self.refs: dict[str, _ArrayRef] = {}
        for key, value in packed.items():
            view = np.ndarray(
                value.shape, dtype=value.dtype, buffer=self._shm.buf, offset=offsets[key]
            )
            view[...] = value
            self.refs[key] = _ArrayRef(value.dtype.str, tuple(value.shape), offsets[key])

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None

    def __enter__(self) -> "SharedPopulationPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanePayload:
    """Everything a worker needs to attach and interpret a plane.

    Sent once per worker (through the pool initializer), never per job.

    Attributes
    ----------
    shm_name:
        Shared-memory segment to attach.
    num_rows:
        Population size (drives the per-step index sampling).
    refs:
        Array locations inside the segment, keyed by plane-local names
        (``"base"``, ``"matrix:<attrs>"``, ``"objective:<i>:<name>"``).
    objective_states:
        Per distinct objective signature: the compiled class, a mapping from
        its state-array names to plane keys, and its small metadata dict.
    untrack_on_attach:
        Whether the attaching process must unregister the segment from its
        resource tracker.  Pool workers inherit the parent's tracker (under
        ``fork`` and ``spawn`` alike), where registration is idempotent and
        the parent unregisters once at unlink — so pool payloads pass
        False.  Only an independent attacher with a private tracker (which
        would otherwise report a bogus leak at exit) should pass True.
    """

    shm_name: str
    num_rows: int
    refs: dict[str, _ArrayRef]
    objective_states: dict[int, tuple[type, dict[str, str], dict]]
    untrack_on_attach: bool = False


@dataclass(frozen=True)
class PlaneJob:
    """One shard descriptor for a process-pool fit — a few hundred bytes.

    ``config`` carries the job's already-resolved seed; ``objective_key``
    points into the payload's ``objective_states``.
    """

    index: int
    attribute_names: tuple[str, ...]
    k: float
    config: DCAConfig
    sample_size: int
    objective_key: int


def _attach_shared_memory(name: str, untrack: bool) -> shared_memory.SharedMemory:
    """Attach a segment without tripping the resource tracker on exit.

    On Python < 3.13 attaching registers the segment with the process's
    ``resource_tracker``; a spawn worker's private tracker would then report
    a bogus "leak" when it exits while the parent still owns the segment.
    Use ``track=False`` where available, otherwise unregister manually —
    but only when ``untrack`` says this process must (never under ``fork``,
    where the tracker is shared and unregistering here would erase the
    parent's one canonical registration).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        segment = shared_memory.SharedMemory(name=name)
        if untrack:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        return segment


class _AttachedPlane:
    """A worker's read-only view of the parent's shared-memory plane."""

    def __init__(self, payload: PlanePayload) -> None:
        # The attached segment reference keeps the mapped buffer alive.
        self._shm = _attach_shared_memory(payload.shm_name, payload.untrack_on_attach)
        self.num_rows = payload.num_rows
        self.arrays: dict[str, np.ndarray] = {}
        for key, ref in payload.refs.items():
            view = np.ndarray(
                ref.shape, dtype=np.dtype(ref.dtype), buffer=self._shm.buf, offset=ref.offset
            )
            view.flags.writeable = False
            self.arrays[key] = view
        self._objective_states = payload.objective_states

    def compiled_for(self, key: int) -> CompiledObjective:
        """Rebuild the compiled objective for ``key`` around the mapped arrays."""
        cls, array_keys, metadata = self._objective_states[key]
        arrays = {name: self.arrays[plane_key] for name, plane_key in array_keys.items()}
        return cls.from_state(arrays, metadata)


#: Worker-global plane, set once per worker by the pool initializer.
_WORKER_PLANE: _AttachedPlane | None = None


def _plane_worker_init(payload: PlanePayload) -> None:
    global _WORKER_PLANE
    _WORKER_PLANE = _AttachedPlane(payload)


def _plane_worker_fit(job: PlaneJob):
    """Run one fit entirely from the attached plane (no table in sight)."""
    from .dca import _BonusSearch, _finish_fit  # deferred: dca imports this module lazily

    plane = _WORKER_PLANE
    if plane is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker has no attached population plane")
    start = time.perf_counter()
    search = _BonusSearch.from_arrays(
        base_scores=plane.arrays["base"],
        attribute_matrix=plane.arrays[matrix_key(job.attribute_names)],
        compiled=plane.compiled_for(job.objective_key),
        num_rows=plane.num_rows,
        sample_size=job.sample_size,
        attribute_names=job.attribute_names,
        k=job.k,
        config=job.config,
    )
    return job.index, _finish_fit(search, job.attribute_names, job.config, start)


def matrix_key(attribute_names: Sequence[str]) -> str:
    """Plane key of the raw attribute matrix for an attribute set."""
    return "matrix:" + "|".join(attribute_names)


def process_start_method() -> str:
    """The start method the process backend uses on this platform.

    ``fork`` where available (cheap start-up; the plane makes the inherited
    address space irrelevant anyway), ``spawn`` otherwise (macOS/Windows).
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def execute_process_jobs(
    payload: PlanePayload,
    jobs: Sequence[PlaneJob],
    max_workers: int,
) -> list[tuple[int, object]]:
    """Run plane jobs on a process pool; returns ``(job index, DCAResult)`` pairs.

    Workers attach the shared plane once (initializer) and each job ships
    only its :class:`PlaneJob` descriptor.  The caller must keep the plane
    alive until this returns and close it afterwards.
    """
    context = multiprocessing.get_context(process_start_method())
    workers = max(1, min(int(max_workers), len(jobs)))
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_plane_worker_init,
        initargs=(payload,),
    ) as pool:
        return list(pool.map(_plane_worker_fit, jobs))
