"""Shared-memory population planes and compiled-objective caching.

This module is the scaling substrate behind :meth:`repro.core.DCA.fit_many`
and the row-sharded :meth:`repro.core.DCA.fit`:

* :class:`CompiledObjectiveCache` — a per-population cache of compiled
  objective state.  Batched fits repeatedly compile the same objective
  against the same cohort (a k sweep compiles one
  :class:`~repro.core.objectives.DisparityObjective` per job, each walking
  the full population); the cache keys compiled state by *(population
  identity, objective signature)* and rebuilds a fresh lightweight
  :class:`~repro.core.objectives.CompiledObjective` around the cached arrays
  per job, so every job keeps private mutable scratch state while the
  population-sized arrays are computed exactly once.
* :class:`SharedPopulationPlane` — one ``multiprocessing.shared_memory``
  segment holding named NumPy arrays, either packed from existing arrays or
  :meth:`~SharedPopulationPlane.allocate`-d empty and filled in place, so
  process-pool workers can map the population (base scores, attribute
  matrices, compiled objective state) instead of receiving a pickled copy
  per job.
* :class:`SharedColumnStore` — a cohort-shaped column store over one
  segment: dataset generators write synthetic columns straight into it, so
  a scale-bench cohort exists exactly once, already mapped for workers.
* :func:`execute_process_jobs` — runs :class:`PlaneJob` descriptors on a
  process pool whose workers attach the plane once (in the pool
  initializer) and then serve jobs from lightweight shard descriptors.
  This is *job sharding*: many independent fits over one population.
* :class:`ShardedFitPlane` — *row sharding*: ONE fit whose per-step
  objective evaluation is mapped over contiguous row shards by long-lived
  workers and reduced in the parent, via the
  :meth:`~repro.core.objectives.CompiledObjective.partial` /
  :meth:`~repro.core.objectives.CompiledObjective.merge` map-reduce
  contract.

The process backends trade a one-time plane construction + worker start-up
cost for true multi-core execution of the Python-level DCA step loop, which
the thread backend cannot parallelize (the loop holds the GIL between NumPy
kernels).  Results are bitwise identical to the serial paths because
workers consume exactly the arrays the serial path would compute, every
job owns its own seeded generator, and (for row sharding) every
floating-point reduction happens in the parent on the sample reassembled
in its original order.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import threading
import time
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping, Sequence

import numpy as np

from ..analysis import race_sanitizer
from ..ranking import selection_size
from ..tabular import Table
from .bonus import compensate_scores
from .config import DCAConfig, validate_worker_count
from .objectives import CompiledObjective, FairnessObjective

__all__ = [
    "CompiledObjectiveCache",
    "PlaneCache",
    "default_objective_cache",
    "SharedPopulationPlane",
    "SharedColumnStore",
    "ShardedFitPlane",
    "ShardPayload",
    "PlanePayload",
    "PlaneJob",
    "compute_shard_bounds",
    "execute_process_jobs",
    "local_topk_positions",
    "merge_topk_selection",
    "process_start_method",
    "record_topk_candidates",
    "scatter_fields",
    "shard_sample_positions",
    "validate_worker_count",
]

#: Step-dispatch modes of the sharded fit plane: the persistent
#: doorbell scheduler (default) or the legacy per-step ``pool.map``.
STEP_DISPATCH_MODES = ("doorbell", "pool")


# ----------------------------------------------------------------------
# Compiled-objective caching
# ----------------------------------------------------------------------
class CompiledObjectiveCache:
    """Cache of compiled-objective state, keyed by population and signature.

    ``compile(objective, table)`` is a drop-in replacement for
    ``objective.compile(table)`` with one precondition: **the objective must
    have been ``fit`` on ``table``** (the invariant every
    :meth:`repro.core.DCA.fit` call establishes before compiling).  Under
    that precondition, two objectives with equal
    :meth:`~repro.core.objectives.FairnessObjective.signature` compile to
    bitwise-identical state, so the cache can hand the second caller a fresh
    compiled instance rebuilt around the first caller's arrays.

    Populations are tracked by object identity through weak references:
    entries die with their table, so holding the module-level default cache
    never pins a cohort in memory.  Objectives whose ``signature()`` is
    ``None`` (the default for custom subclasses) or whose compiled form does
    not support :meth:`~repro.core.objectives.CompiledObjective.export_state`
    bypass the cache entirely.

    The cache is thread-safe; ``hits`` / ``misses`` count cache outcomes for
    diagnostics and tests.
    """

    def __init__(self) -> None:
        # Reentrant: the weakref eviction callback may fire on this thread
        # while the lock is already held.
        self._lock = threading.RLock()
        # id(table) -> (weakref to table, {signature: (cls, arrays, metadata)})
        self._populations: dict[int, tuple[weakref.ref, dict]] = {}
        self.hits = 0
        self.misses = 0

    def _entry_for(self, table: Table) -> dict:
        """The signature->state dict for ``table``, creating it if needed."""
        key = id(table)
        entry = self._populations.get(key)
        if entry is not None and entry[0]() is not table:
            entry = None  # a dead table's id() was recycled
        if entry is None:
            def _evict(_ref: weakref.ref, key: int = key) -> None:
                with self._lock:
                    self._populations.pop(key, None)

            entry = (weakref.ref(table, _evict), {})
            self._populations[key] = entry
        return entry[1]

    def compile(self, objective: FairnessObjective, table: Table) -> CompiledObjective:
        """Compile ``objective`` against ``table``, reusing cached state.

        Precondition: ``objective.fit(table)`` has been called (see class
        docstring).  Returns either the freshly compiled objective (first
        sighting of this signature on this population) or a new instance
        rebuilt from the cached arrays.
        """
        signature = objective.signature()
        if signature is None:
            return objective.compile(table)
        with self._lock:
            states = self._entry_for(table)
            state = states.get(signature)
        if state is not None:
            cls, arrays, metadata = state
            with self._lock:
                self.hits += 1
            return cls.from_state(arrays, metadata)
        compiled = objective.compile(table)
        exported = compiled.export_state()
        with self._lock:
            self.misses += 1
            if exported is not None:
                arrays, metadata = exported
                states[signature] = (type(compiled), arrays, metadata)
        return compiled

    def clear(self) -> None:
        """Drop every cached entry (mostly useful in tests)."""
        with self._lock:
            self._populations.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return sum(len(entry[1]) for entry in self._populations.values())


_DEFAULT_CACHE = CompiledObjectiveCache()


def default_objective_cache() -> CompiledObjectiveCache:
    """The process-wide cache :meth:`repro.core.DCA.fit_many` uses by default.

    Repeated sweeps over the same cohort — across separate ``fit_many``
    calls — share this cache, so only the first sweep pays for compiling
    each objective.  Entries are weakly tied to their tables and vanish when
    the cohort is garbage-collected.
    """
    return _DEFAULT_CACHE


# ----------------------------------------------------------------------
# Shared-memory population plane (parent side)
# ----------------------------------------------------------------------
_ALIGNMENT = 64  # cache-line align every array inside the segment


@dataclass(frozen=True)
class _ArrayRef:
    """Locates one array inside the plane's shared-memory segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int


class SharedPopulationPlane:
    """One shared-memory segment holding a population's named arrays.

    The parent packs every array a batch of fits needs (base scores,
    per-attribute-set matrices, compiled objective state) into a single
    segment; workers attach it by name and serve every job through zero-copy
    read-only views.  A plane can also be :meth:`allocate`-d from dtype/shape
    specs and filled in place through :meth:`view`, so large arrays are
    computed straight into the segment instead of being materialized on the
    private heap first.  The plane owns the segment: call :meth:`close` (or
    use the plane as a context manager) once the pool has shut down to
    release and unlink it.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        packed = {key: np.ascontiguousarray(value) for key, value in arrays.items()}
        self._allocate_segment(
            {key: (value.dtype.str, tuple(value.shape)) for key, value in packed.items()}
        )
        for key, value in packed.items():
            self.view(key)[...] = value

    @classmethod
    def allocate(
        cls, specs: Mapping[str, tuple[str, tuple[int, ...]]]
    ) -> "SharedPopulationPlane":
        """Create a plane of empty (zero-filled) arrays from dtype/shape specs.

        ``specs`` maps each array key to ``(dtype string, shape)``.  Fill the
        arrays through :meth:`view` — this is how cohort generators and the
        sharded fit plane write population-sized data into shared memory
        without a second private-heap copy.
        """
        plane = cls.__new__(cls)
        plane._allocate_segment({key: (dtype, tuple(shape)) for key, (dtype, shape) in specs.items()})
        return plane

    def _allocate_segment(self, specs: Mapping[str, tuple[str, tuple[int, ...]]]) -> None:
        total = 0
        self.refs: dict[str, _ArrayRef] = {}
        for key, (dtype, shape) in specs.items():
            total = -(-total // _ALIGNMENT) * _ALIGNMENT  # round up
            self.refs[key] = _ArrayRef(dtype, shape, total)
            total += int(np.dtype(dtype).itemsize) * int(np.prod(shape, dtype=np.int64))
        self._shm = shared_memory.SharedMemory(create=True, size=max(total, 1))

    def view(self, key: str) -> np.ndarray:
        """A writable ndarray view of one named array inside the segment."""
        ref = self.refs[key]
        return np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=self._shm.buf, offset=ref.offset
        )

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None

    def __enter__(self) -> "SharedPopulationPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SharedColumnStore:
    """Equal-length named columns inside one shared-memory segment.

    Synthetic-cohort generators write their columns straight into the store
    (:meth:`columns` hands out writable views), so a multi-million-row
    population is materialized exactly once — in pages any worker process
    can map — instead of once on the parent heap and again for sharing.
    Wrap the finished columns with :meth:`table`; the resulting
    :class:`~repro.tabular.Table` keeps float64 columns as zero-copy views
    into the segment (binary 0/1 columns are stored by the table layer as
    compact ``bool`` copies).  The store owns the segment, and :meth:`close`
    unmaps it — the standard ``multiprocessing.shared_memory`` contract
    applies: close **last**, after every table, view, and fit over the
    store is finished.  Touching a view after close is use-after-free (it
    can crash the interpreter, not merely raise).
    """

    def __init__(self, num_rows: int, column_names: Sequence[str], dtype: str = "<f8") -> None:
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        names = tuple(column_names)
        if not names:
            raise ValueError("at least one column name is required")
        self.num_rows = int(num_rows)
        self.column_names = names
        self._plane = SharedPopulationPlane.allocate(
            {name: (dtype, (self.num_rows,)) for name in names}
        )

    def view(self, name: str) -> np.ndarray:
        """Writable view of one column."""
        return self._plane.view(name)

    def columns(self) -> dict[str, np.ndarray]:
        """Writable views of every column, keyed by name, in declared order."""
        return {name: self._plane.view(name) for name in self.column_names}

    def table(self) -> Table:
        """Wrap the current column contents as a :class:`~repro.tabular.Table`."""
        return Table(self.columns())

    def close(self) -> None:
        """Release and unlink the backing segment (idempotent).

        Must be the store's last use: every column view — including those
        inside tables built by :meth:`table` — becomes a dangling mapping
        afterwards (see the class docstring).
        """
        self._plane.close()

    def __enter__(self) -> "SharedColumnStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanePayload:
    """Everything a worker needs to attach and interpret a plane.

    Sent once per worker (through the pool initializer), never per job.

    Attributes
    ----------
    shm_name:
        Shared-memory segment to attach.
    num_rows:
        Population size (drives the per-step index sampling).
    refs:
        Array locations inside the segment, keyed by plane-local names
        (``"base"``, ``"matrix:<attrs>"``, ``"objective:<i>:<name>"``).
    objective_states:
        Per distinct objective signature: the compiled class, a mapping from
        its state-array names to plane keys, and its small metadata dict.
    untrack_on_attach:
        Whether the attaching process must unregister the segment from its
        resource tracker.  Pool workers inherit the parent's tracker (under
        ``fork`` and ``spawn`` alike), where registration is idempotent and
        the parent unregisters once at unlink — so pool payloads pass
        False.  Only an independent attacher with a private tracker (which
        would otherwise report a bogus leak at exit) should pass True.
    """

    shm_name: str
    num_rows: int
    refs: dict[str, _ArrayRef]
    objective_states: dict[int, tuple[type, dict[str, str], dict]]
    untrack_on_attach: bool = False


@dataclass(frozen=True)
class PlaneJob:
    """One shard descriptor for a process-pool fit — a few hundred bytes.

    ``config`` carries the job's already-resolved seed; ``objective_key``
    points into the payload's ``objective_states``.
    """

    index: int
    attribute_names: tuple[str, ...]
    k: float
    config: DCAConfig
    sample_size: int
    objective_key: int


def _attach_shared_memory(name: str, untrack: bool) -> shared_memory.SharedMemory:
    """Attach a segment without tripping the resource tracker on exit.

    On Python < 3.13 attaching registers the segment with the process's
    ``resource_tracker``; a spawn worker's private tracker would then report
    a bogus "leak" when it exits while the parent still owns the segment.
    Use ``track=False`` where available, otherwise unregister manually —
    but only when ``untrack`` says this process must (never under ``fork``,
    where the tracker is shared and unregistering here would erase the
    parent's one canonical registration).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        segment = shared_memory.SharedMemory(name=name)
        if untrack:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        return segment


def _map_refs(
    shm: shared_memory.SharedMemory,
    refs: Mapping[str, _ArrayRef],
    writable: frozenset[str] = frozenset(),
) -> dict[str, np.ndarray]:
    """Map every referenced array out of an attached segment.

    Views are read-only unless their key is in ``writable`` (the sharded fit
    plane's scratch arrays are the one place workers write).
    """
    arrays: dict[str, np.ndarray] = {}
    for key, ref in refs.items():
        view = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf, offset=ref.offset
        )
        view.flags.writeable = key in writable
        arrays[key] = view
    return arrays


class _AttachedPlane:
    """A worker's read-only view of the parent's shared-memory plane."""

    def __init__(self, payload: PlanePayload) -> None:
        # The attached segment reference keeps the mapped buffer alive.
        self._shm = _attach_shared_memory(payload.shm_name, payload.untrack_on_attach)
        self.num_rows = payload.num_rows
        self.arrays = _map_refs(self._shm, payload.refs)
        self._objective_states = payload.objective_states

    def compiled_for(self, key: int) -> CompiledObjective:
        """Rebuild the compiled objective for ``key`` around the mapped arrays."""
        cls, array_keys, metadata = self._objective_states[key]
        arrays = {name: self.arrays[plane_key] for name, plane_key in array_keys.items()}
        return cls.from_state(arrays, metadata)


#: Worker-global plane, set once per worker by the pool initializer.
_WORKER_PLANE: _AttachedPlane | None = None


def _plane_worker_init(payload: PlanePayload) -> None:
    global _WORKER_PLANE
    _WORKER_PLANE = _AttachedPlane(payload)


def _plane_worker_serve(plane: _AttachedPlane, job: PlaneJob):
    """Run one fit entirely from an attached plane (no table in sight).

    The job-grain kernel shared by the legacy pool path
    (:func:`_plane_worker_fit`) and the scheduler's job queue
    (:func:`repro.core.scheduler._scheduler_worker_loop`).
    """
    from .dca import _BonusSearch, _finish_fit  # deferred: dca imports this module lazily

    start = time.perf_counter()
    search = _BonusSearch.from_arrays(
        base_scores=plane.arrays["base"],
        attribute_matrix=plane.arrays[matrix_key(job.attribute_names)],
        compiled=plane.compiled_for(job.objective_key),
        num_rows=plane.num_rows,
        sample_size=job.sample_size,
        attribute_names=job.attribute_names,
        k=job.k,
        config=job.config,
    )
    return job.index, _finish_fit(search, job.attribute_names, job.config, start)


def _plane_worker_fit(job: PlaneJob):
    """Pool-path entry: serve one job from the initializer-attached plane."""
    plane = _WORKER_PLANE
    if plane is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker has no attached population plane")
    return _plane_worker_serve(plane, job)


def matrix_key(attribute_names: Sequence[str]) -> str:
    """Plane key of the raw attribute matrix for an attribute set."""
    return "matrix:" + "|".join(attribute_names)


def process_start_method() -> str:
    """The start method the process backend uses on this platform.

    ``fork`` where available (cheap start-up; the plane makes the inherited
    address space irrelevant anyway), ``spawn`` otherwise (macOS/Windows).
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def execute_process_jobs(
    payload: PlanePayload,
    jobs: Sequence[PlaneJob],
    max_workers: int,
) -> list[tuple[int, object]]:
    """Run plane jobs on a scheduler pool; returns ``(job index, DCAResult)`` pairs.

    Workers attach the shared plane once (at scheduler start-up) and each
    job ships only its :class:`PlaneJob` descriptor through the scheduler's
    job queue (:meth:`repro.core.scheduler.FitScheduler.run_jobs`).  The
    caller must keep the plane alive until this returns and close it
    afterwards.
    """
    from .scheduler import FitScheduler  # deferred: scheduler imports this module

    workers = max(1, min(int(max_workers), len(jobs)))
    scheduler = FitScheduler(num_workers=workers, plane_payload=payload)
    try:
        return scheduler.run_jobs(jobs)
    finally:
        scheduler.close()


# ----------------------------------------------------------------------
# Row-sharded single-fit execution (map-reduce over the population rows)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPayload:
    """Everything a row-shard worker needs to serve one sharded fit.

    Sent once per worker through the pool initializer, never per step.

    Attributes
    ----------
    shm_name:
        Shared-memory segment holding the population arrays *and* the
        per-step scratch (sample indices plus one array per accumulator
        field).
    refs:
        Array locations inside the segment.
    objective_class, objective_arrays, objective_metadata:
        The compiled objective's class, a mapping from its state-array names
        to plane keys, and its small metadata dict — enough for each worker
        to rebuild a private :class:`~repro.core.objectives.CompiledObjective`
        around the mapped arrays.
    scratch_keys:
        Accumulator field name (``"scores"`` included) → plane key of the
        sample-sized scratch array the worker scatters that field into.
    shard_bounds:
        Per-shard contiguous row ranges ``(lo, hi)``; a step task for shard
        ``s`` handles exactly the sampled indices falling in its range.
    k:
        The fit's selection fraction (constant across steps).
    """

    shm_name: str
    refs: dict[str, _ArrayRef]
    objective_class: type
    objective_arrays: dict[str, str]
    objective_metadata: dict
    scratch_keys: dict[str, str]
    shard_bounds: tuple[tuple[int, int], ...]
    k: float
    #: Plane keys of the write-race ledger (``positions`` / ``counts``)
    #: when :mod:`repro.analysis.race_sanitizer` is armed, else ``None``.
    sanitizer_keys: dict[str, str] | None = None
    #: Plane keys of the distributed top-k candidate region (``scores`` /
    #: ``positions`` / ``counts``) when the objective supports selection
    #: pre-computation, else ``None``.
    topk_keys: dict[str, str] | None = None
    #: The selection fraction the top-k candidates are recorded for.
    topk_fraction: float | None = None


class _ShardWorkerState:
    """A row-shard worker's mapped arrays plus its rebuilt compiled objective."""

    def __init__(self, payload: ShardPayload) -> None:
        self._shm = _attach_shared_memory(payload.shm_name, untrack=False)
        writable = frozenset(payload.scratch_keys.values())
        if payload.sanitizer_keys is not None:
            writable |= frozenset(payload.sanitizer_keys.values())
        if payload.topk_keys is not None:
            writable |= frozenset(payload.topk_keys.values())
        arrays = _map_refs(self._shm, payload.refs, writable=writable)
        self.base = arrays["base"]
        self.matrix = arrays["matrix"]
        self.indices = arrays["indices"]
        self.scratch = {
            field: arrays[key] for field, key in payload.scratch_keys.items()
        }
        if payload.sanitizer_keys is not None:
            self.sanitizer: tuple[np.ndarray, np.ndarray] | None = (
                arrays[payload.sanitizer_keys["positions"]],
                arrays[payload.sanitizer_keys["counts"]],
            )
        else:
            self.sanitizer = None
        if payload.topk_keys is not None:
            self.topk: tuple[np.ndarray, np.ndarray, np.ndarray] | None = (
                arrays[payload.topk_keys["scores"]],
                arrays[payload.topk_keys["positions"]],
                arrays[payload.topk_keys["counts"]],
            )
        else:
            self.topk = None
        self.topk_fraction = payload.topk_fraction
        state_arrays = {
            name: arrays[key] for name, key in payload.objective_arrays.items()
        }
        self.compiled: CompiledObjective = payload.objective_class.from_state(
            state_arrays, payload.objective_metadata
        )
        self.bounds = payload.shard_bounds
        self.k = payload.k


#: Worker-global shard state, set once per worker by the pool initializer.
_SHARD_STATE: _ShardWorkerState | None = None


def _shard_worker_init(payload: ShardPayload) -> None:
    global _SHARD_STATE
    _SHARD_STATE = _ShardWorkerState(payload)


def compute_shard_bounds(num_rows: int, shard_rows: int) -> tuple[tuple[int, int], ...]:
    """Contiguous ``(lo, hi)`` row ranges covering ``[0, num_rows)``.

    The single source of shard descriptors for the sharded fit plane: the
    ranges tile the population exactly — pairwise disjoint, no gaps — which
    is the property the write-race sanitizer re-proves numerically at every
    step (and what its injected-race test breaks on purpose).
    """
    return tuple(
        (start, min(start + shard_rows, num_rows))
        for start in range(0, num_rows, shard_rows)
    )


def shard_sample_positions(indices: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Sample positions whose row index falls in the shard's ``[lo, hi)``.

    The nameable shard filter repro-lint R6 anchors on: every worker write
    is indexed by this function's result (or a bounds-derived slice), which
    is what makes per-shard scatters provably descriptor-indexed.
    """
    return np.flatnonzero((indices >= lo) & (indices < hi))


def scatter_fields(
    scratch: Mapping[str, np.ndarray],
    positions: np.ndarray,
    accumulator: Mapping[str, np.ndarray],
) -> None:
    """Scatter accumulator fields into shared scratch at sample positions.

    The one write path from a shard worker into shared memory.  ``positions``
    must come from :func:`shard_sample_positions` over the worker's own
    bounds — R6 flags any call whose positions are not shard-derived.
    """
    for field, block in accumulator.items():
        scratch[field][positions] = block


def local_topk_positions(scores: np.ndarray, limit: int) -> np.ndarray:
    """Positions (ascending) of a shard's ``limit`` best scores.

    The shard-local half of the distributed top-k.  The candidate *set*
    matches what :func:`repro.ranking.selection_mask` admits at this
    shard's granularity: the boundary tie-break is lowest position first,
    and a NaN-bearing score vector falls back to the exact lexsort ordering
    (NaN last), mirroring ``selection_mask``'s own fallback.  Returning
    positions in ascending order keeps candidate recording bit-exact and
    sample-ordered.
    """
    n = scores.shape[0]
    if limit >= n:
        return np.arange(n)
    low = scores.min()
    if low != low:  # NaN present: exact lexsort fallback, like selection_mask
        order = np.lexsort((np.arange(n), -scores))
        return np.sort(order[:limit])
    threshold = scores[scores.argpartition(n - limit)[n - limit]]
    mask = scores > threshold
    remaining = limit - int(np.count_nonzero(mask))
    if remaining > 0:
        ties = np.flatnonzero(scores == threshold)
        mask[ties[:remaining]] = True
    return np.flatnonzero(mask)


def record_topk_candidates(
    topk: tuple[np.ndarray, np.ndarray, np.ndarray],
    shard: int,
    positions: np.ndarray,
    scores: np.ndarray,
    num_sampled: int,
    fraction: float,
) -> None:
    """Write one shard's top-k candidate ``(score, position)`` pairs.

    Every global selection winner inside this shard is necessarily among
    the shard's own best ``min(|shard sample|, global selection size)``
    scores (dominance: anything better than a winner is itself a winner),
    so recording exactly that many candidates preserves bitwise identity
    while the parent merges ``shards × k`` candidates instead of
    argpartitioning the full sample.  Each shard writes only its own row of
    the candidate region — the same disjointness contract as the scratch
    scatters, and what :func:`repro.analysis.race_sanitizer.verify_topk`
    re-proves numerically.
    """
    scores_log, positions_log, counts = topk
    limit = min(positions.shape[0], selection_size(num_sampled, fraction))
    local = local_topk_positions(scores, limit)
    counts[shard] = limit
    scores_log[shard, :limit] = scores[local]
    positions_log[shard, :limit] = positions[local]


def merge_topk_selection(
    scores_log: np.ndarray,
    positions_log: np.ndarray,
    counts: np.ndarray,
    num_sampled: int,
    fraction: float,
) -> np.ndarray:
    """Fold shard-local top-k candidates into the exact global selection mask.

    Bitwise identical to ``selection_mask(scores, fraction)`` over the full
    sample: the candidate pool provably contains every winner (see
    :func:`record_topk_candidates`), so the size-th largest candidate *is*
    the serial threshold, every above-threshold score is a candidate, and
    every tie the serial pass admits (lowest sample position first) is a
    candidate too.  The merge therefore replays ``selection_mask``'s own
    threshold-plus-ties algorithm over the candidate pool — ``O(shards × k)``
    plus a sort of the tie class, instead of ``O(sample)``.  A NaN-bearing
    pool falls back to the exact lexsort ordering, like ``selection_mask``;
    a NaN-free pool cannot correspond to a serial selection that admitted
    NaN rows (any admitted row is a candidate), so the fast path is safe
    even when unseen shard scores hold NaN.
    """
    size = selection_size(num_sampled, fraction)
    cand_scores = np.concatenate(
        [scores_log[shard, : int(counts[shard])] for shard in range(counts.shape[0])]
    )
    cand_positions = np.concatenate(
        [positions_log[shard, : int(counts[shard])] for shard in range(counts.shape[0])]
    )
    selection = np.zeros(num_sampled, dtype=bool)
    total = cand_positions.shape[0]
    if total <= size:
        # Only possible at exact equality (every shard contributed fewer
        # candidates than the global size only when all were winners).
        selection[cand_positions] = True
        return selection
    low = cand_scores.min()
    if low != low:  # NaN present: exact lexsort fallback, like selection_mask
        order = np.lexsort((cand_positions, -cand_scores))
        selection[cand_positions[order[:size]]] = True
        return selection
    threshold = cand_scores[cand_scores.argpartition(total - size)[total - size]]
    above = cand_scores > threshold
    selection[cand_positions[above]] = True
    remaining = size - int(np.count_nonzero(above))
    if remaining > 0:
        ties = np.sort(cand_positions[cand_scores == threshold])
        selection[ties[:remaining]] = True
    return selection


def _shard_worker_serve(
    state: _ShardWorkerState, shard: int, bonus_values: np.ndarray, num_sampled: int
) -> int:
    """Serve one shard's share of one DCA step; returns rows written.

    The map step of the objective's map-reduce contract, shared by the
    legacy pool path (:func:`_shard_worker_step`) and the scheduler's
    doorbell loop: filter the current sample to this shard's row range,
    compensate those rows' scores under the broadcast bonus vector, gather
    the objective's per-row accumulator
    (:meth:`~repro.core.objectives.CompiledObjective.partial`), and scatter
    every field into the shared scratch at the rows' *sample positions* —
    so the parent merges arrays already in the exact order a serial
    evaluation would have seen.  When the distributed top-k is armed, the
    shard's candidate pairs are additionally recorded
    (:func:`record_topk_candidates`).
    """
    lo, hi = state.bounds[shard]
    indices = state.indices[:num_sampled]
    positions = shard_sample_positions(indices, lo, hi)
    if state.sanitizer is not None:
        positions_log, counts = state.sanitizer
        race_sanitizer.record_shard_write(positions_log, counts, shard, positions)
    if positions.size == 0:
        if state.topk is not None:
            state.topk[2][shard] = 0
        return 0
    sub = indices[positions]
    scores = compensate_scores(state.matrix[sub], state.base[sub], bonus_values)
    accumulator = state.compiled.partial(sub, scores, state.k)
    scatter_fields(state.scratch, positions, accumulator)
    if state.topk is not None:
        record_topk_candidates(
            state.topk, shard, positions, scores, num_sampled, state.topk_fraction
        )
    return int(positions.size)


def _shard_worker_step(job: tuple[int, tuple[float, ...], int]) -> int:
    """Pool-path entry: serve one shard job from the initializer-attached state."""
    shard, bonus_values, num_sampled = job
    state = _SHARD_STATE
    if state is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker has no attached shard state")
    return _shard_worker_serve(
        state, shard, np.asarray(bonus_values, dtype=float), num_sampled
    )


class ShardedFitPlane:
    """Row-sharded execution of one fit's sampled objective evaluations.

    The population plane (base scores, raw attribute matrix ``A_f``, the
    compiled objective's exported state) and the per-step scratch (sample
    indices, compensated scores, one array per accumulator field) live in a
    single shared-memory segment.  Long-lived workers each serve contiguous
    row shards; every :meth:`step` broadcasts only the current bonus vector
    and the sample length, workers map their shard
    (:meth:`~repro.core.objectives.CompiledObjective.partial` after a
    bit-exact gather + score compensation), and the parent reduces the
    reassembled sample with
    :meth:`~repro.core.objectives.CompiledObjective.merge`.

    Because workers only *gather* (row indexing is exact) and scatter into
    the sample's original positions, while every floating-point reduction
    runs in the parent on the full sample-ordered arrays, a sharded step is
    **bitwise identical** to the serial ``evaluate`` — for any number of
    workers and any shard boundaries.

    Parameters
    ----------
    base_scores, attribute_matrix:
        The fit's precomputed population arrays (copied into the segment).
    compiled:
        The parent's compiled objective; must support the map-reduce
        contract (``shard_fields()`` not ``None``) and ``export_state``.
    sample_size:
        Rows per sampled step; sizes the scratch arrays.
    k:
        The fit's selection fraction.
    row_workers:
        Pool size.  Validated eagerly: zero/negative raise ``ValueError``
        before any segment or pool exists.
    shard_rows:
        Rows per shard; defaults to an even split over ``row_workers``.
        Smaller shards than workers are allowed (workers then serve several
        shards per step); results are identical for any value.
    step_dispatch:
        How steps reach the workers.  ``"doorbell"`` (the default) keeps
        one persistent :class:`~repro.core.scheduler.FitScheduler` pool
        whose workers block on a shared-memory barrier and read each step's
        ``(bonus, sample_len, step_id)`` from a control block — no per-step
        pickling or task-queue hop — and additionally pre-computes the
        selection mask from distributed per-shard top-k candidates when the
        objective supports it.  ``"pool"`` is the legacy per-step
        ``pool.map`` path, kept for verification and benchmarking.  Results
        are bitwise identical under both.
    """

    def __init__(
        self,
        *,
        base_scores: np.ndarray,
        attribute_matrix: np.ndarray,
        compiled: CompiledObjective,
        sample_size: int,
        k: float,
        row_workers: int,
        shard_rows: int | None = None,
        step_dispatch: str | None = None,
    ) -> None:
        row_workers = validate_worker_count("row_workers", row_workers)
        shard_rows = validate_worker_count("shard_rows", shard_rows)
        step_dispatch = step_dispatch if step_dispatch is not None else "doorbell"
        if step_dispatch not in STEP_DISPATCH_MODES:
            raise ValueError(
                f"step_dispatch must be one of {STEP_DISPATCH_MODES}, got {step_dispatch!r}"
            )
        fields = compiled.shard_fields()
        if fields is None:
            raise ValueError(
                "this compiled objective does not support map-reduce evaluation "
                "(shard_fields() is None)"
            )
        exported = compiled.export_state()
        if exported is None:
            raise ValueError(
                "this compiled objective cannot export shard state (export_state() is None)"
            )
        state_arrays, metadata = exported
        num_rows = int(base_scores.shape[0])
        sample_size = int(sample_size)
        if shard_rows is None:
            shard_rows = -(-num_rows // row_workers)  # ceil: one shard per worker
        bounds = compute_shard_bounds(num_rows, shard_rows)

        base_scores = np.ascontiguousarray(base_scores, dtype=float)
        attribute_matrix = np.ascontiguousarray(attribute_matrix)
        specs: dict[str, tuple[str, tuple[int, ...]]] = {
            "base": (base_scores.dtype.str, base_scores.shape),
            "matrix": (attribute_matrix.dtype.str, attribute_matrix.shape),
            "indices": ("<i8", (sample_size,)),
            "scratch:scores": ("<f8", (sample_size,)),
        }
        scratch_keys = {"scores": "scratch:scores"}
        for field, (dtype, columns) in fields.items():
            shape = (sample_size,) if columns == 0 else (sample_size, int(columns))
            key = f"scratch:{field}"
            specs[key] = (dtype, shape)
            scratch_keys[field] = key
        objective_arrays: dict[str, str] = {}
        for name, value in state_arrays.items():
            key = f"objective:{name}"
            specs[key] = (value.dtype.str, tuple(value.shape))
            objective_arrays[name] = key
        # Opt-in write-race ledger: lives inside the same segment, each
        # worker writes only its own row (see repro.analysis.race_sanitizer).
        sanitizer_keys: dict[str, str] | None = None
        if race_sanitizer.enabled():
            specs.update(race_sanitizer.ledger_specs(len(bounds), sample_size))
            sanitizer_keys = {
                "positions": "sanitizer:positions",
                "counts": "sanitizer:counts",
            }
        # Distributed top-k candidate region: one row per shard, sized for
        # the global selection.  Only the doorbell scheduler consumes it
        # (the pool path keeps the historical full-vector argpartition).
        topk_keys: dict[str, str] | None = None
        topk_fraction = (
            compiled.topk_fraction(float(k)) if step_dispatch == "doorbell" else None
        )
        if topk_fraction is not None:
            limit_max = selection_size(sample_size, topk_fraction)
            specs["topk:scores"] = ("<f8", (len(bounds), limit_max))
            specs["topk:positions"] = ("<i8", (len(bounds), limit_max))
            specs["topk:counts"] = ("<i8", (len(bounds),))
            topk_keys = {
                "scores": "topk:scores",
                "positions": "topk:positions",
                "counts": "topk:counts",
            }

        self._plane = SharedPopulationPlane.allocate(specs)
        self._pool = None
        self._scheduler = None
        try:
            self._plane.view("base")[...] = base_scores
            self._plane.view("matrix")[...] = attribute_matrix
            for name, key in objective_arrays.items():
                self._plane.view(key)[...] = state_arrays[name]

            self._compiled = compiled
            self.k = float(k)
            self.num_shards = len(bounds)
            self._bounds = bounds
            self._indices = self._plane.view("indices")
            self._scratch = {
                field: self._plane.view(key) for field, key in scratch_keys.items()
            }
            if sanitizer_keys is not None:
                self._sanitizer: tuple[np.ndarray, np.ndarray] | None = (
                    self._plane.view(sanitizer_keys["positions"]),
                    self._plane.view(sanitizer_keys["counts"]),
                )
            else:
                self._sanitizer = None
            if topk_keys is not None:
                self._topk: tuple[np.ndarray, np.ndarray, np.ndarray] | None = (
                    self._plane.view(topk_keys["scores"]),
                    self._plane.view(topk_keys["positions"]),
                    self._plane.view(topk_keys["counts"]),
                )
            else:
                self._topk = None
            self._topk_fraction = topk_fraction
            payload = ShardPayload(
                shm_name=self._plane.name,
                refs=self._plane.refs,
                objective_class=type(compiled),
                objective_arrays=objective_arrays,
                objective_metadata=metadata,
                scratch_keys=scratch_keys,
                shard_bounds=bounds,
                k=self.k,
                sanitizer_keys=sanitizer_keys,
                topk_keys=topk_keys,
                topk_fraction=topk_fraction,
            )
            if step_dispatch == "doorbell":
                from .scheduler import FitScheduler  # deferred: scheduler imports this module

                self._scheduler = FitScheduler(
                    num_workers=min(row_workers, self.num_shards),
                    shard_payload=payload,
                    num_attrs=int(attribute_matrix.shape[1]),
                )
            else:
                context = multiprocessing.get_context(process_start_method())
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(row_workers, self.num_shards),
                    mp_context=context,
                    initializer=_shard_worker_init,
                    initargs=(payload,),
                )
        except BaseException:
            # No caller holds the plane yet, so close() would be
            # unreachable and the population-sized segment would leak.
            self.close()
            raise

    def step(self, bonus_values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """One sampled objective evaluation, mapped over shards and reduced here.

        ``indices`` is the step's sample (drawn by the parent, so the RNG
        stream is exactly the serial one); ``bonus_values`` is the current
        bonus vector.  Returns the raw signal vector.

        Under the doorbell dispatch the step is one scheduler round — no
        pickling — and, when the top-k region is armed, the parent merges
        ``shards × k`` candidates into the exact selection mask instead of
        argpartitioning the full sample inside ``merge``.
        """
        num_sampled = int(indices.shape[0])
        self._indices[:num_sampled] = indices
        if self._sanitizer is not None:
            race_sanitizer.reset_step(self._sanitizer[1])
        if self._topk is not None:
            self._topk[2][...] = -1
        if self._scheduler is not None:
            written = self._scheduler.dispatch_step(
                np.asarray(bonus_values, dtype=float), num_sampled
            )
        else:
            bonus = tuple(float(value) for value in bonus_values)
            jobs = [(shard, bonus, num_sampled) for shard in range(self.num_shards)]
            written = sum(self._pool.map(_shard_worker_step, jobs))
        if self._sanitizer is not None:
            # Verify BEFORE consuming the scratch: on overlap or a missed
            # region the scratch contents are garbage, and the attributable
            # WriteRaceError must win over the generic count check below.
            positions_log, counts = self._sanitizer
            race_sanitizer.verify_step(positions_log, counts, num_sampled, self._bounds)
        if written != num_sampled:  # pragma: no cover - guards shard-bound bugs
            raise RuntimeError(
                f"shard workers wrote {written} of {num_sampled} sampled rows"
            )
        selection = None
        if self._topk is not None:
            scores_log, positions_log, counts = self._topk
            if self._sanitizer is not None:
                race_sanitizer.verify_topk(
                    self._sanitizer[0],
                    self._sanitizer[1],
                    positions_log,
                    counts,
                    selection_size(num_sampled, self._topk_fraction),
                )
            selection = merge_topk_selection(
                scores_log, positions_log, counts, num_sampled, self._topk_fraction
            )
        accumulator = {
            field: view[:num_sampled] for field, view in self._scratch.items()
        }
        return np.asarray(
            self._compiled.merge([accumulator], self.k, selection=selection), dtype=float
        )

    def worker_pids(self) -> tuple[int, ...]:
        """Worker process ids, when the doorbell scheduler runs the plane.

        Stable for the plane's lifetime, so tests can assert that plane
        reuse (:class:`PlaneCache`) really kept one pool alive.  The legacy
        pool dispatch returns an empty tuple (its executor spawns lazily).
        """
        if self._scheduler is not None:
            return self._scheduler.worker_pids()
        return ()

    def close(self) -> None:
        """Shut the workers down and release the segment (idempotent)."""
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._plane.close()

    def __enter__(self) -> "ShardedFitPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PlaneCache:
    """Cache of live :class:`ShardedFitPlane` instances, keyed by population.

    ``fit_many(row_workers=N)`` runs many same-shaped fits against one
    cohort; without reuse every job pays the full plane cost — copy the
    population into a fresh segment, spawn a pool, replay shard state.  The
    cache leases one plane per ``(population, job signature)`` so only the
    first job builds it and the rest iterate against the already-resident
    workers.

    Populations are tracked by object identity through weak references,
    mirroring :class:`CompiledObjectiveCache`: when a table dies, its entry
    is evicted and every plane in it is closed, so holding a cache never
    pins a cohort or leaks a segment.  Unlike the objective cache the
    cached values own OS resources (shared memory + processes) — call
    :meth:`close` when done with a batch; :meth:`repro.core.DCA.fit_many`
    does this for the cache it creates internally.

    Thread-safe; ``hits`` / ``planes_built`` count cache outcomes for
    diagnostics and the pool-identity tests.
    """

    def __init__(self) -> None:
        # Reentrant for the same reason as CompiledObjectiveCache: weakref
        # eviction callbacks may fire while the lock is held on this thread.
        self._lock = threading.RLock()
        # id(table) -> (weakref to table, {key: (score_function, plane)})
        self._populations: dict[int, tuple[weakref.ref, dict]] = {}
        self.hits = 0
        self.planes_built = 0

    def _entry_for(self, table: Table) -> dict:
        """The key->plane dict for ``table``, creating it if needed."""
        key = id(table)
        entry = self._populations.get(key)
        if entry is not None and entry[0]() is not table:
            entry = None  # a dead table's id() was recycled
        if entry is None:
            def _evict(_ref: weakref.ref, key: int = key) -> None:
                with self._lock:
                    evicted = self._populations.pop(key, None)
                if evicted is not None:
                    for _function, plane in evicted[1].values():
                        try:
                            plane.close()
                        except Exception:  # pragma: no cover - best-effort GC path
                            pass

            entry = (weakref.ref(table, _evict), {})
            self._populations[key] = entry
        return entry[1]

    def lease(self, table: Table, score_function, key, build):
        """A live plane for ``(table, key)``, building via ``build()`` on miss.

        ``key`` must capture everything the plane bakes in besides the
        population: objective signature, ``k``, sample size, worker count,
        shard size, dispatch mode.  ``score_function`` is compared by
        identity as an extra guard — signatures do not cover custom
        callables, and a plane compiled against one scorer must never serve
        another.  The returned plane stays owned by the cache; callers must
        not close it.
        """
        with self._lock:
            planes = self._entry_for(table)
            cached = planes.get(key)
            if cached is not None and cached[0] is score_function:
                self.hits += 1
                return cached[1]
        plane = build()
        with self._lock:
            planes = self._entry_for(table)
            self.planes_built += 1
            stale = planes.get(key)
            planes[key] = (score_function, plane)
        if stale is not None:
            stale[1].close()  # replaced a plane leased for a different scorer
        return plane

    def close(self) -> None:
        """Close every cached plane and drop all entries (idempotent)."""
        with self._lock:
            populations = list(self._populations.values())
            self._populations.clear()
        for _ref, planes in populations:
            for _function, plane in planes.values():
                plane.close()

    def __enter__(self) -> "PlaneCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(entry[1]) for entry in self._populations.values())
