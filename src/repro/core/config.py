"""Configuration for the Disparity Compensation Algorithm.

The defaults reproduce the settings of Section V-B: three passes of 100
iterations (learning rates 1.0 and 0.1, then an Adam-driven refinement), a
sample of 500 objects, bonus points rounded to multiples of 0.5, and a
non-negativity constraint on every bonus.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DCAConfig", "validate_worker_count"]


def validate_worker_count(name: str, value: int | None) -> int | None:
    """Eagerly reject zero/negative worker or shard counts.

    The one implementation of the ">= 1 or ValueError" rule shared by
    :meth:`DCAConfig.validate`, :meth:`repro.core.DCA.fit`/``fit_many``, and
    the sharded fit plane.  ``None`` passes through (it means "use the
    default"); anything below 1 raises a clear ``ValueError`` *before* any
    pool or shared-memory segment is created, instead of failing obscurely
    inside an executor.
    """
    if value is None:
        return None
    count = int(value)
    if count < 1:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return count


@dataclass(frozen=True)
class DCAConfig:
    """Hyper-parameters of Core DCA and its refinement step.

    Attributes
    ----------
    learning_rates:
        Decreasing step sizes for Core DCA (Algorithm 1); each is run for
        ``iterations`` steps.  The paper uses 1.0 then 0.1.
    iterations:
        Number of sampled steps per learning rate.
    refinement_iterations:
        Number of Adam-driven steps in the refinement pass (Algorithm 2);
        set to 0 to run Core DCA only.  The paper uses 100; the default here
        is 200 because the extra (cheap) sampled steps measurably tighten the
        residual disparity on the synthetic cohorts.
    refinement_learning_rate:
        Adam's global step size during refinement.
    averaging_window:
        The refinement result is the average of the last ``averaging_window``
        iterates ("the rolling average of the last 100 points"), capped at
        ``refinement_iterations``.
    sample_size:
        Rows drawn per step.  ``None`` applies the ``max(1/k, 1/r)`` rule from
        :func:`repro.core.sampling.recommended_sample_size`.
    granularity:
        Bonus points are rounded to multiples of this value at the end
        (0 disables rounding).
    min_bonus, max_bonus:
        Per-attribute bounds enforced at every step (Section VI-A4).  The
        default forbids negative bonuses, which "would be perceived as a
        penalty".
    seed:
        RNG seed controlling the random initialization and all samples.
    initial_bonus_scale:
        The random initial bonus vector is uniform on [0, initial_bonus_scale].
    engine:
        How per-step objective evaluations are executed.  ``"array"`` (the
        default) runs on the vectorized array plane: attribute matrices,
        base scores, and group masks are gathered once per fit and every
        sampled step works on integer-indexed NumPy arrays.  ``"table"`` is
        the legacy reference path that materializes a
        :class:`~repro.tabular.Table` slice per step; it produces bitwise
        identical results and exists for verification and debugging.
    row_workers:
        Number of shared-memory worker processes a single :meth:`~repro.core.DCA.fit`
        row-shards its sampled objective evaluations across
        (:class:`~repro.core.parallel.ShardedFitPlane`).  ``None`` or 1 runs
        in-process.  Results are bitwise identical to the in-process path
        for any value; worth it when the per-step sample is large (big
        cohorts with ``sample_size`` in the tens of thousands or more).
    shard_rows:
        Rows per contiguous shard of a row-sharded fit; ``None`` splits the
        population evenly over ``row_workers``.  Purely a granularity knob —
        results are identical for any value.
    rng_batching:
        ``"per_step"`` (the default) draws each step's sample in its own
        generator call, preserving seed-for-seed history.  ``"per_phase"``
        draws all of a phase's sample indices in **one** generator call
        (:meth:`repro.core.sampling.SampleStream.draw_phase_indices`),
        which removes per-step generator overhead but changes the stream
        (different results for the same seed) and samples with replacement
        within a step — statistically negligible while the sample is much
        smaller than the population, which is the recommended regime.
    stratified_sampling:
        When True, per-step samples guarantee at least one member of each
        binary fairness attribute's rarest side
        (:class:`~repro.core.sampling.SampleStream` ``stratify``), which
        stabilizes the signal for very rare groups (< ~1/sample_size
        frequency).  Opt-in because the correction consumes extra RNG draws
        whenever it triggers, so fits are not seed-comparable with the
        default mode.
    step_dispatch:
        How a row-sharded fit drives its workers each step.  ``"doorbell"``
        (the default) keeps one persistent pool blocking on a shared-memory
        doorbell (:class:`~repro.core.scheduler.FitScheduler`): the parent
        writes ``(bonus, sample_len, step_id)`` into the control block and
        barrier-releases the workers — no per-step pickling or task-queue
        hop — and, when the objective supports it, workers publish
        shard-local top-k candidates so the parent merges ``shards × k``
        entries instead of argpartitioning the full sample.  ``"pool"`` is
        the legacy per-step ``pool.map`` dispatch kept for comparison
        benches and debugging.  Results are bitwise identical either way.
    """

    learning_rates: tuple[float, ...] = (1.0, 0.1)
    iterations: int = 100
    refinement_iterations: int = 200
    refinement_learning_rate: float = 0.1
    averaging_window: int = 100
    sample_size: int | None = 500
    granularity: float = 0.5
    min_bonus: float = 0.0
    max_bonus: float | None = None
    seed: int | None = None
    initial_bonus_scale: float = 1.0
    min_group_count: int = 30
    engine: str = "array"
    row_workers: int | None = None
    shard_rows: int | None = None
    rng_batching: str = "per_step"
    stratified_sampling: bool = False
    step_dispatch: str = "doorbell"

    def validate(self) -> None:
        if not self.learning_rates:
            raise ValueError("at least one learning rate is required")
        if any(rate <= 0 for rate in self.learning_rates):
            raise ValueError(f"learning rates must be positive, got {self.learning_rates}")
        if list(self.learning_rates) != sorted(self.learning_rates, reverse=True):
            raise ValueError(
                f"learning rates must be sorted in decreasing order, got {self.learning_rates}"
            )
        if self.iterations <= 0:
            raise ValueError(f"iterations must be positive, got {self.iterations}")
        if self.refinement_iterations < 0:
            raise ValueError(
                f"refinement_iterations must be non-negative, got {self.refinement_iterations}"
            )
        if self.refinement_learning_rate <= 0:
            raise ValueError(
                f"refinement_learning_rate must be positive, got {self.refinement_learning_rate}"
            )
        if self.averaging_window <= 0:
            raise ValueError(f"averaging_window must be positive, got {self.averaging_window}")
        if self.sample_size is not None and self.sample_size <= 0:
            raise ValueError(f"sample_size must be positive, got {self.sample_size}")
        if self.granularity < 0:
            raise ValueError(f"granularity must be non-negative, got {self.granularity}")
        if self.min_bonus < 0:
            raise ValueError(f"min_bonus must be non-negative, got {self.min_bonus}")
        if self.max_bonus is not None and self.max_bonus < self.min_bonus:
            raise ValueError(
                f"max_bonus ({self.max_bonus}) must be at least min_bonus ({self.min_bonus})"
            )
        if self.initial_bonus_scale < 0:
            raise ValueError(
                f"initial_bonus_scale must be non-negative, got {self.initial_bonus_scale}"
            )
        if self.min_group_count <= 0:
            raise ValueError(f"min_group_count must be positive, got {self.min_group_count}")
        if self.engine not in ("array", "table"):
            raise ValueError(f"engine must be 'array' or 'table', got {self.engine!r}")
        validate_worker_count("row_workers", self.row_workers)
        validate_worker_count("shard_rows", self.shard_rows)
        if self.rng_batching not in ("per_step", "per_phase"):
            raise ValueError(
                "rng_batching must be 'per_step' or 'per_phase', "
                f"got {self.rng_batching!r}"
            )
        if self.step_dispatch not in ("doorbell", "pool"):
            raise ValueError(
                f"step_dispatch must be 'doorbell' or 'pool', got {self.step_dispatch!r}"
            )

    def rng(self):
        """The fit's seeded root generator — the RNG-lineage anchor.

        Every stream a fit consumes (initialization, per-step samples)
        derives from this one generator, which is what makes a ``(seed,
        config)`` pair fully determine the fit and what repro-lint R5
        traces draws back to.  A fresh generator is returned per call, so
        two fits over the same config never share stream state.
        """
        import numpy as np  # deferred: config stays importable without numpy

        return np.random.default_rng(self.seed)

    def without_refinement(self) -> "DCAConfig":
        """A copy configured to run Core DCA only (used by the Figure 8 ablation)."""
        return replace(self, refinement_iterations=0)
