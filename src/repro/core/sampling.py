"""Sample-size selection and sample streams for DCA.

DCA never looks at the whole dataset: every iteration draws a small uniform
sample and treats its disparity as an estimate of the population disparity
(Section IV-C).  Two quantities bound the sample size from below:

* the Central Limit Theorem needs roughly 30 observations for the selected
  set, so the sample must contain at least ``min_count / k`` rows, and
* every fairness subgroup must also appear roughly ``min_count`` times, so
  the sample must contain at least ``min_count / r`` rows where ``r`` is the
  frequency of the rarest group.

This gives the paper's ``O(max(1/k, 1/r))`` sample-size rule (Section IV-D).
The experiments use a fixed sample of 500 for the school data ("our rarest
fairness category has a frequency of 10%, so we picked a sample size of 500
elements to ensure a representation of 50 elements").

A binary attribute defines *two* groups — the members (value 1) and the
complement (value 0) — and either one can be the rare one.  An attribute with
prevalence 0.9 therefore has a rarest-group frequency of 0.1, not 0.9:
:func:`rarest_group_frequency` takes ``min(freq, 1 - freq)`` per attribute.

The array-plane DCA engine (see :mod:`repro.core.dca`) draws *index arrays*
via :meth:`SampleStream.draw_indices` instead of materialized
:class:`~repro.tabular.Table` slices; :meth:`SampleStream.draw` remains for
the legacy table path and for external callers.
"""

from __future__ import annotations

import math
import warnings
from typing import Iterator, Sequence

import numpy as np

from ..tabular import Table

__all__ = [
    "rarest_group_frequency",
    "recommended_sample_size",
    "SampleStream",
]


def rarest_group_frequency(table: Table, attribute_names: Sequence[str]) -> float:
    """Frequency of the least common fairness group in ``table``.

    Each binary attribute defines two groups — the attribute holders (1s) and
    their complement (0s) — and the rarer of the two is what bounds the sample
    size, so an attribute with mean 0.9 contributes ``r = 0.1``.  Degenerate
    attributes (all 0s or all 1s) define no real partition and are skipped,
    as are continuous attributes, which do not define a discrete group.  If
    every attribute is skipped the function returns 1.0 (no subgroup
    constraint).
    """
    if table.num_rows == 0:
        raise ValueError("cannot measure group frequencies on an empty table")
    rarest = 1.0
    for name in attribute_names:
        values = table.numeric(name)
        unique = np.unique(values)
        if unique.size <= 2 and np.all(np.isin(unique, (0.0, 1.0))):
            frequency = float(values.mean())
            if 0.0 < frequency < 1.0:
                rarest = min(rarest, frequency, 1.0 - frequency)
    return rarest


def recommended_sample_size(
    k: float,
    rarest_frequency: float,
    min_group_count: int = 30,
    minimum: int = 100,
    maximum: int | None = None,
) -> int:
    """The paper's ``O(max(1/k, 1/r))`` sample-size rule.

    The result is the larger of ``min_group_count / k`` and
    ``min_group_count / rarest_frequency``, floored at ``minimum`` and capped
    at ``maximum``.  The cap is applied *last* and always wins: when
    ``maximum < minimum`` (typically because the dataset itself is smaller
    than the floor) the function returns ``maximum`` and emits a
    ``UserWarning``, since a sample can never usefully exceed the population
    it is drawn from.

    Parameters
    ----------
    k:
        Selection fraction in (0, 1].
    rarest_frequency:
        Frequency ``r`` of the least common fairness group, in (0, 1].
    min_group_count:
        How many selected objects / rarest-group members the sample should
        contain for the Central Limit Theorem to apply (≈30).
    minimum, maximum:
        Floor and optional cap on the returned size.  The cap wins over the
        floor (with a warning) when the two conflict.
    """
    if not 0.0 < k <= 1.0:
        raise ValueError(f"k must be in (0, 1], got {k}")
    if not 0.0 < rarest_frequency <= 1.0:
        raise ValueError(f"rarest_frequency must be in (0, 1], got {rarest_frequency}")
    if min_group_count <= 0:
        raise ValueError(f"min_group_count must be positive, got {min_group_count}")
    if maximum is not None and maximum <= 0:
        raise ValueError(f"maximum must be positive, got {maximum}")
    if maximum is not None and maximum < minimum:
        warnings.warn(
            f"sample-size cap ({maximum}) is below the floor ({minimum}); "
            "the cap wins — the sampled estimates will be noisier than the "
            "CLT floor assumes",
            UserWarning,
            stacklevel=2,
        )
        return int(maximum)
    size = max(
        math.ceil(min_group_count / k),
        math.ceil(min_group_count / rarest_frequency),
        minimum,
    )
    if maximum is not None:
        size = min(size, maximum)
    return int(size)


class SampleStream:
    """An endless stream of uniform random samples from a table.

    Core DCA draws "a random sample of sample size from O" at every step; the
    refinement loop takes "the next sample in O".  Both are served by this
    stream, which also guards against degenerate samples (e.g. a sample with
    zero members of some group is fine — the disparity estimate just carries
    more noise — but a sample smaller than the requested selection is not).

    The stream has two faces over the same RNG state:

    * :meth:`draw_indices` returns an ``int64`` index array into the table —
      the hot-path representation the array-plane DCA engine consumes without
      ever materializing a table slice;
    * :meth:`draw` returns an actual :class:`~repro.tabular.Table` sample for
      callers that want one.

    Both consume the RNG identically, so an array-plane run and a table-plane
    run with the same seed see the same sample sequence.

    ``population`` may also be a bare row count instead of a
    :class:`~repro.tabular.Table`.  Index draws are a function of the
    population *size* only, so the shared-memory process workers of
    :meth:`repro.core.DCA.fit_many` stream indices without ever holding the
    table; such a stream supports :meth:`draw_indices` but not :meth:`draw`.

    Stratified draws
    ----------------

    A uniform sample can entirely miss a very rare fairness group (a 0.5%
    group is absent from ~8% of 500-row samples), which zeroes that group's
    contribution to the sampled disparity signal.  Passing
    ``stratify=attribute_names`` guarantees every listed binary attribute's
    *rarest side* (members or complement, whichever is less frequent) at
    least ``min_stratum_count`` members per draw: deficient draws have their
    trailing unprotected slots replaced by uniformly drawn members of the
    missing group.  The correction consumes additional RNG state whenever it
    triggers, so stratified streams are not seed-comparable with uniform
    ones; it is opt-in (``DCAConfig(stratified_sampling=True)``).
    Degenerate and continuous attributes are skipped, exactly as in
    :func:`rarest_group_frequency`.  Stratification needs the group masks,
    so it requires a table-backed stream.

    The guarantee is per attribute and unconditional whenever the sample has
    enough slots outside the listed rare groups to host every correction —
    the intended regime (a few very rare, mostly disjoint groups).  In
    pathological overlaps, where nearly every sampled row belongs to some
    listed rare group, a later stratum's replacement falls back to trailing
    slots and may evict an earlier stratum's only member: corrections are
    then best-effort, not re-checked.
    """

    def __init__(
        self,
        population: Table | int,
        sample_size: int,
        rng: np.random.Generator | None = None,
        stratify: Sequence[str] | None = None,
        min_stratum_count: int = 1,
    ) -> None:
        if isinstance(population, Table):
            self.table: Table | None = population
            num_rows = population.num_rows
        else:
            self.table = None
            num_rows = int(population)
        if num_rows <= 0:
            raise ValueError("cannot sample from an empty population")
        if sample_size <= 0:
            raise ValueError(f"sample_size must be positive, got {sample_size}")
        self.num_rows = num_rows
        self.sample_size = int(min(sample_size, num_rows))
        # Documented public-API fallback: callers who pass no generator opt
        # out of reproducibility explicitly.  Every repro code path seeds
        # (R5 proves it: each fit entry point reaches this line only with a
        # DCAConfig.rng()-derived generator in hand).
        self._rng = rng or np.random.default_rng()  # repro-lint: disable=R1,R5
        if min_stratum_count < 1:
            raise ValueError(
                f"min_stratum_count must be a positive integer, got {min_stratum_count}"
            )
        self._min_stratum_count = int(min_stratum_count)
        self._strata: list[tuple[str, np.ndarray, np.ndarray]] = []
        self._protected: np.ndarray | None = None
        if stratify:
            if self.table is None:
                raise TypeError(
                    "stratify requires a table-backed SampleStream; index-only "
                    "streams hold no group information"
                )
            self._build_strata(tuple(stratify))

    def _build_strata(self, attribute_names: Sequence[str]) -> None:
        """Precompute each binary attribute's rarest-side pool and mask."""
        protected = np.zeros(self.num_rows, dtype=bool)
        for name in attribute_names:
            values = self.table.numeric(name)
            unique = np.unique(values)
            if unique.size > 2 or not np.all(np.isin(unique, (0.0, 1.0))):
                continue  # continuous attribute: no discrete group to protect
            frequency = float(values.mean())
            if not 0.0 < frequency < 1.0:
                continue  # degenerate: one side is empty
            rare_value = 1.0 if frequency <= 0.5 else 0.0
            mask = values == rare_value
            self._strata.append((name, np.flatnonzero(mask).astype(np.int64), mask))
            protected |= mask
        self._protected = protected if self._strata else None

    def _apply_strata(self, indices: np.ndarray) -> np.ndarray:
        """Enforce the per-group minimum on one draw (mutates ``indices``)."""
        for _name, pool, mask in self._strata:
            count = int(np.count_nonzero(mask[indices]))
            if count >= self._min_stratum_count:
                continue
            deficit = self._min_stratum_count - count
            available = pool if count == 0 else pool[~np.isin(pool, indices)]
            deficit = min(deficit, int(available.size))
            if deficit == 0:
                continue  # the whole group is already in the sample
            extra = self._rng.choice(available, size=deficit, replace=False)
            # Prefer evicting rows that belong to no protected group, so one
            # stratum's correction cannot starve another; pathological
            # overlaps (almost every sampled row protected) fall back to the
            # trailing slots.
            safe = np.flatnonzero(~self._protected[indices])
            if safe.size >= deficit:
                victims = safe[-deficit:]
            else:
                victims = np.arange(indices.size - deficit, indices.size)
            indices[victims] = extra
        return indices

    def __iter__(self) -> Iterator[Table]:
        return self

    def __next__(self) -> Table:
        return self.draw()

    def draw_indices(self) -> np.ndarray:
        """Row indices of the next uniform random sample (without replacement).

        When the sample covers the whole population the identity index array
        is returned and no RNG state is consumed, mirroring :meth:`draw`.
        Stratified streams additionally enforce the per-group minimum (see
        the class docstring).
        """
        if self.sample_size >= self.num_rows:
            return np.arange(self.num_rows, dtype=np.int64)
        indices = self._rng.choice(self.num_rows, size=self.sample_size, replace=False)
        if self._strata:
            indices = self._apply_strata(indices)
        return indices

    def draw_phase_indices(self, num_steps: int) -> np.ndarray:
        """A whole phase's samples as a ``(num_steps, sample_size)`` matrix.

        This is the ``rng_batching="per_phase"`` fast path: all of the
        phase's randomness comes from **one** generator call
        (``Generator.integers``), which removes the per-step generator
        overhead of :meth:`draw_indices` at the cost of (a) a different
        stream for the same seed and (b) sampling *with* replacement within
        each step — a negligible distinction while the sample is much
        smaller than the population.  When the sample covers the whole
        population, every row is the identity index array and no RNG state
        is consumed, mirroring :meth:`draw_indices`.
        """
        if num_steps <= 0:
            raise ValueError(f"num_steps must be positive, got {num_steps}")
        if self.sample_size >= self.num_rows:
            return np.broadcast_to(
                np.arange(self.num_rows, dtype=np.int64),
                (num_steps, self.num_rows),
            )
        indices = self._rng.integers(
            0, self.num_rows, size=(num_steps, self.sample_size), dtype=np.int64
        )
        if self._strata:
            for row in range(num_steps):
                self._apply_strata(indices[row])
        return indices

    def draw(self) -> Table:
        """Return the next uniform random sample (without replacement).

        Only available when the stream was built from a table; index-only
        streams (built from a row count) raise ``TypeError``.
        """
        if self.table is None:
            raise TypeError(
                "this SampleStream was built from a row count and holds no table; "
                "use draw_indices()"
            )
        if self.sample_size >= self.num_rows:
            return self.table
        return self.table.take(self.draw_indices())
