"""Persistent barrier-synchronized worker pool for fit execution.

:class:`FitScheduler` replaces the per-step ``pool.map`` round trip of the
row-sharded fit plane with a **doorbell protocol** over one long-lived pool:

* The parent allocates a small shared-memory *control block* (command word,
  step counter, bonus vector, per-shard served counts, per-worker error
  flags) next to the population plane.
* Workers attach their payloads **once** at start-up — the row-shard state
  (:class:`~repro.core.parallel.ShardPayload`) and/or the job plane
  (:class:`~repro.core.parallel.PlanePayload`) — and then block on a shared
  start barrier.
* Each :meth:`FitScheduler.dispatch_step` writes ``(bonus, sample_len,
  step_id)`` into the control block and releases the start barrier (the
  doorbell); every worker serves its strided subset of shards straight out
  of the state it already holds — no pickling, no task-queue hop — and
  meets the parent on the done barrier.
* :meth:`FitScheduler.run_jobs` reuses the same pool at **job grain**: the
  command word selects job mode, workers drain
  :class:`~repro.core.parallel.PlaneJob` descriptors from a queue until
  they hit a sentinel, and results come back through a result queue.  One
  pool thus accepts both row-grain (shard step) and job-grain work.

The protocol is deterministic by construction: workers compute exactly the
shard partials the old ``pool.map`` path computed (same
:func:`~repro.core.parallel._shard_worker_serve` kernel, same shard
descriptors), the parent still performs every floating-point reduction, and
the per-shard ``served`` slots double as a completeness check.  Any worker
fault — a Python exception, a crashed process, a broken barrier — surfaces
as a parent-side ``RuntimeError`` (or the job's own exception at job
grain), never as a hang: parent-side barrier waits carry a timeout, and a
failed protocol round terminates the pool.

Start-up costs one process spawn per worker (amortized across the
thousands of steps of a fit, or across the jobs of a batch); per-step
dispatch costs two barrier crossings, which is what the scheduler bench
measures against the ``pool.map`` baseline.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import time
from dataclasses import dataclass

import numpy as np

from . import parallel

__all__ = ["FitScheduler", "SchedulerPayload"]

#: Command words the parent writes into the control block.
_CMD_STOP = 0
_CMD_STEP = 1
_CMD_JOBS = 2

#: Parent-side ceiling on one protocol round.  Generous: a round is one
#: sampled objective evaluation (milliseconds) or one queued fit job
#: (seconds); only a dead worker can take this long.
_BARRIER_TIMEOUT = 300.0

#: How long close() waits for workers to acknowledge the stop doorbell
#: before escalating to termination.
_STOP_TIMEOUT = 10.0

#: Control-block keys workers may write (everything else is parent-owned).
_WORKER_WRITABLE = frozenset({"served", "errors"})


@dataclass(frozen=True)
class SchedulerPayload:
    """Everything a scheduler worker attaches at start-up (sent exactly once).

    Attributes
    ----------
    control_name, control_refs:
        The control block's shared-memory segment and array locations
        (``command``, ``bonus``, ``served``, ``errors``).
    shard:
        Row-shard state for step-grain work, or ``None`` for a job-only pool.
    plane:
        Population plane for job-grain work, or ``None`` for a step-only pool.
    """

    control_name: str
    control_refs: dict[str, parallel._ArrayRef]
    shard: parallel.ShardPayload | None = None
    plane: parallel.PlanePayload | None = None


def _shippable(error: Exception) -> Exception:
    """An exception safe to send through a result queue.

    Worker exceptions cross a pickle boundary; an unpicklable one (or one
    whose unpickling re-raises) would kill the queue's feeder thread and
    hang the parent, so it is degraded to a ``RuntimeError`` carrying the
    original message.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


def _scheduler_worker_loop(
    worker_id: int,
    num_workers: int,
    payload: SchedulerPayload,
    start_barrier,
    done_barrier,
    jobs,
    results,
) -> None:
    """One scheduler worker: attach state once, then serve doorbell rounds.

    The worker blocks on the start barrier between rounds.  On release it
    reads the command word: a **step** round serves every shard congruent to
    its worker id (strided, so shard counts need not match worker counts)
    through :func:`~repro.core.parallel._shard_worker_serve` and records
    each shard's written-row count in its ``served`` slot; a **jobs** round
    drains :class:`~repro.core.parallel.PlaneJob` descriptors from the queue
    until the ``None`` sentinel; a **stop** round exits.  Any exception
    raises the worker's ``errors`` flag (and ships detail through the result
    queue) instead of desynchronizing the barriers.
    """
    control_shm = parallel._attach_shared_memory(payload.control_name, untrack=False)
    control = parallel._map_refs(
        control_shm, payload.control_refs, writable=_WORKER_WRITABLE
    )
    command = control["command"]
    bonus = control["bonus"]
    served = control["served"]
    errors = control["errors"]
    state = parallel._ShardWorkerState(payload.shard) if payload.shard is not None else None
    plane = parallel._AttachedPlane(payload.plane) if payload.plane is not None else None
    while True:
        start_barrier.wait()
        word = int(command[0])
        if word == _CMD_STOP:
            return  # exits before the done barrier; the parent does not wait
        try:
            if word == _CMD_STEP:
                num_sampled = int(command[1])
                bonus_values = bonus.copy()
                for shard in range(worker_id, len(state.bounds), num_workers):
                    served[shard] = parallel._shard_worker_serve(
                        state, shard, bonus_values, num_sampled
                    )
            elif word == _CMD_JOBS:
                while True:
                    job = jobs.get()
                    if job is None:
                        break
                    try:
                        index, result = parallel._plane_worker_serve(plane, job)
                        results.put(("ok", index, result))
                    except Exception as error:
                        results.put(("error", job.index, _shippable(error)))
        except Exception as error:
            errors[worker_id] = 1
            try:
                results.put(("fatal", worker_id, repr(error)))
            except Exception:
                pass
        done_barrier.wait()


class FitScheduler:
    """A persistent worker pool driven by a shared-memory doorbell.

    One scheduler serves two work grains through the same workers and
    control block: row-grain shard steps (:meth:`dispatch_step`, the hot
    path of a sharded fit) and job-grain plane fits (:meth:`run_jobs`, the
    ``fit_many`` process backend).  Construct it with a
    :class:`~repro.core.parallel.ShardPayload` for step work, a
    :class:`~repro.core.parallel.PlanePayload` for job work, or both.

    The scheduler owns its control segment and its worker processes; call
    :meth:`close` (or use it as a context manager) to release both.  The
    caller owns the payload segments and must keep them alive while the
    scheduler runs.
    """

    def __init__(
        self,
        *,
        num_workers: int,
        shard_payload: parallel.ShardPayload | None = None,
        plane_payload: parallel.PlanePayload | None = None,
        num_attrs: int = 0,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be a positive integer, got {num_workers}")
        if shard_payload is None and plane_payload is None:
            raise ValueError("a scheduler needs a shard payload, a plane payload, or both")
        self.num_workers = int(num_workers)
        num_shards = len(shard_payload.shard_bounds) if shard_payload is not None else 0
        self.num_shards = num_shards
        self._workers: list = []
        self._control = parallel.SharedPopulationPlane.allocate(
            {
                # command[0] = command word, [1] = sample length, [2] = step id.
                "command": ("<i8", (4,)),
                "bonus": ("<f8", (max(1, int(num_attrs)),)),
                "served": ("<i8", (max(1, num_shards),)),
                "errors": ("<i8", (self.num_workers,)),
            }
        )
        try:
            self._command = self._control.view("command")
            self._bonus = self._control.view("bonus")
            self._served = self._control.view("served")
            self._errors = self._control.view("errors")
            payload = SchedulerPayload(
                control_name=self._control.name,
                control_refs=self._control.refs,
                shard=shard_payload,
                plane=plane_payload,
            )
            context = multiprocessing.get_context(parallel.process_start_method())
            # Parties = workers + the parent: both barriers double as the
            # memory fence between parent writes and worker reads.
            self._start_barrier = context.Barrier(self.num_workers + 1)
            self._done_barrier = context.Barrier(self.num_workers + 1)
            self._jobs = context.Queue()
            self._results = context.Queue()
            for worker_id in range(self.num_workers):
                process = context.Process(
                    target=_scheduler_worker_loop,
                    args=(
                        worker_id,
                        self.num_workers,
                        payload,
                        self._start_barrier,
                        self._done_barrier,
                        self._jobs,
                        self._results,
                    ),
                    daemon=True,
                )
                process.start()
                self._workers.append(process)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Protocol rounds
    # ------------------------------------------------------------------
    def _round_trip(self) -> None:
        """Ring the doorbell and wait for every worker to finish the round."""
        try:
            self._start_barrier.wait(timeout=_BARRIER_TIMEOUT)
            self._done_barrier.wait(timeout=_BARRIER_TIMEOUT)
        except Exception as error:
            self._fail(f"scheduler protocol round broke ({error!r}); workers terminated")

    def _fail(self, message: str) -> None:
        """Terminate the pool and raise: a broken round is not recoverable."""
        self._reap(force=True)
        raise RuntimeError(message)

    def _check_errors(self) -> None:
        if not self._errors.any():
            return
        detail = ""
        deadline = time.perf_counter() + 5.0
        while time.perf_counter() < deadline:
            try:
                kind, _, info = self._results.get(timeout=0.5)
            except queue_module.Empty:
                continue
            if kind == "fatal":
                detail = f": {info}"
                break
        failed = [int(i) for i in np.flatnonzero(self._errors)]
        self._fail(f"scheduler workers {failed} failed{detail}")

    def dispatch_step(self, bonus_values: np.ndarray, num_sampled: int) -> int:
        """One row-grain step: broadcast ``(bonus, sample_len)`` and collect.

        Writes the step's inputs into the control block, runs one doorbell
        round, verifies every shard reported in, and returns the total rows
        written — the same contract the ``pool.map`` path's summed worker
        returns provide.  No per-step pickling happens anywhere.
        """
        self._bonus[: len(bonus_values)] = bonus_values
        self._errors[...] = 0
        self._served[...] = -1
        self._command[1] = num_sampled
        self._command[2] += 1
        self._command[0] = _CMD_STEP
        self._round_trip()
        self._check_errors()
        served = self._served[: self.num_shards]
        if (served < 0).any():  # pragma: no cover - guards protocol bugs
            missing = [int(i) for i in np.flatnonzero(served < 0)]
            self._fail(f"scheduler step finished with unserved shards {missing}")
        return int(served.sum())

    def run_jobs(self, jobs) -> list[tuple[int, object]]:
        """Run job-grain work through the pool; returns results in job order.

        Enqueues every :class:`~repro.core.parallel.PlaneJob` plus one stop
        sentinel per worker, rings the doorbell, and collects exactly one
        result per job **before** joining the done barrier (so queue
        back-pressure can never deadlock the round).  A job that raised
        re-raises its own exception here, after the round completes; a
        worker-level fault terminates the pool.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        for job in jobs:
            self._jobs.put(job)
        for _ in range(self.num_workers):
            self._jobs.put(None)
        self._errors[...] = 0
        self._command[0] = _CMD_JOBS
        try:
            self._start_barrier.wait(timeout=_BARRIER_TIMEOUT)
        except Exception as error:
            self._fail(f"scheduler job round broke ({error!r}); workers terminated")
        outcomes = self._collect(len(jobs))
        try:
            self._done_barrier.wait(timeout=_BARRIER_TIMEOUT)
        except Exception as error:
            self._fail(f"scheduler job round broke ({error!r}); workers terminated")
        failures = sorted(
            (index, error) for kind, index, error in outcomes if kind == "error"
        )
        if failures:
            raise failures[0][1]
        results = {index: result for _, index, result in outcomes}
        return [(job.index, results[job.index]) for job in jobs]

    def _collect(self, expected: int) -> list[tuple[str, int, object]]:
        """Drain exactly ``expected`` job outcomes from the result queue."""
        outcomes: list[tuple[str, int, object]] = []
        deadline = time.perf_counter() + _BARRIER_TIMEOUT
        while len(outcomes) < expected:
            try:
                outcome = self._results.get(timeout=1.0)
            except queue_module.Empty:
                if self._errors.any():
                    failed = [int(i) for i in np.flatnonzero(self._errors)]
                    self._fail(f"scheduler workers {failed} failed mid-job")
                if any(not process.is_alive() for process in self._workers):
                    self._fail("a scheduler worker died mid-job")
                if time.perf_counter() > deadline:
                    self._fail("timed out waiting for scheduler job results")
                continue
            if outcome[0] == "fatal":
                self._fail(f"scheduler worker {outcome[1]} failed: {outcome[2]}")
            outcomes.append(outcome)
        return outcomes

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def worker_pids(self) -> tuple[int, ...]:
        """The pool's process ids (stable for the scheduler's lifetime)."""
        return tuple(process.pid for process in self._workers)

    def _reap(self, force: bool) -> None:
        workers, self._workers = self._workers, []
        for process in workers:
            if force and process.is_alive():
                process.terminate()
        for process in workers:
            process.join(timeout=_STOP_TIMEOUT)
            if process.is_alive():  # pragma: no cover - terminate() sufficed so far
                process.kill()
                process.join(timeout=_STOP_TIMEOUT)
        if workers:
            for channel in (self._jobs, self._results):
                try:
                    channel.close()
                    channel.cancel_join_thread()
                except Exception:  # pragma: no cover - queue already torn down
                    pass

    def close(self) -> None:
        """Stop the workers and release the control segment (idempotent)."""
        if self._workers:
            graceful = True
            try:
                self._command[0] = _CMD_STOP
                self._start_barrier.wait(timeout=_STOP_TIMEOUT)
            except Exception:
                graceful = False
            self._reap(force=not graceful)
        if self._control is not None:
            self._control.close()
            self._control = None

    def __enter__(self) -> "FitScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
