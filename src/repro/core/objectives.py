"""Pluggable optimization objectives for DCA.

DCA's update rule moves the bonus vector *against* a per-attribute fairness
signal: ``B ← B − L · D``.  Any metric can drive the search as long as it
(Section VI-C5):

* is a vector with one independently computed dimension per fairness
  attribute,
* lies in [-1, 1] with **negative values meaning the group needs more bonus
  points** (under-representation / disadvantage), positive values meaning the
  group is over-compensated, and zero meaning fairness,
* can be summarized by its norm.

The objectives implemented here are the ones the paper evaluates:

``DisparityObjective``
    The default — Definition 3's centroid difference at a known ``k``.
``LogDiscountedDisparityObjective``
    Section IV-E's discounted average over a grid of ``k`` values.
``DisparateImpactObjective``
    The scaled disparate-impact ratio of Zafar et al. (Section VI-C5).
``FalsePositiveRateObjective``
    Equalized-odds-style FPR differences, used on COMPAS (Figure 10b).
``ExposureGapObjective``
    Per-group average exposure differences (the DDP building block of
    Section VI-C4), usable as a direct optimization target.

Array plane
-----------

Every objective can be **compiled** against a population via
:meth:`FairnessObjective.compile`, yielding a :class:`CompiledObjective` whose
``evaluate(indices, scores, k)`` works directly on NumPy arrays: the
population-level inputs (normalized attribute matrix, group-membership masks,
labels) are gathered once, and each sampled DCA step is served by row
indexing — no per-step :class:`~repro.tabular.Table` construction.  The
built-in objectives provide exact array-plane compilations (bitwise identical
to their table-path results); custom subclasses that only implement
``evaluate`` automatically fall back to a compiled wrapper that slices the
table, so they keep working under the array engine unchanged.

Map-reduce (sharded) evaluation
-------------------------------

A compiled objective can additionally expose its evaluation in **map-reduce
form**, which is what lets one fit's per-step signal be computed from
disjoint row shards (:class:`repro.core.parallel.ShardedFitPlane`):

* :meth:`CompiledObjective.partial` is the *map* step: for one shard's rows
  it gathers everything the objective needs about those rows — their
  compensated scores plus the per-row state declared by
  :meth:`CompiledObjective.shard_fields` — into a plain dict-of-arrays
  *accumulator*.  ``partial`` performs only gathers (bit-exact row
  indexing), never a floating-point reduction.
* :meth:`CompiledObjective.merge` is the *reduce* step: it folds shard
  accumulators — concatenated in shard-rank order — into the signal vector.
  Every order-sensitive floating-point reduction lives here and operates on
  the reassembled sample exactly as ``evaluate`` would, so
  ``merge([partial(indices, scores, k)], k)`` is **bitwise identical** to
  ``evaluate(indices, scores, k)``, and splitting the same sample across
  any number of shards cannot change a single bit of the result.

The built-in compiled objectives all support the contract; the table
fallback explicitly does not (its ``evaluate`` needs the whole sample's
table slice), which callers detect through ``shard_fields() is None``.

Sharing compiled state
----------------------

Compiling an objective is the expensive part of a fit's setup (it walks the
whole population), and batched fits (:meth:`repro.core.DCA.fit_many`) run
many jobs against the *same* population.  Two hooks let that work be done
once:

* :meth:`FairnessObjective.signature` — a stable, hashable description of an
  objective's compiled-state inputs.  Two objectives with equal signatures,
  fitted on the same population, compile to bitwise-identical state, so the
  state can be cached per population
  (:class:`repro.core.parallel.CompiledObjectiveCache`).
* :meth:`CompiledObjective.export_state` /
  :meth:`CompiledObjective.from_state` — split a compiled objective into a
  dict of plain arrays plus small metadata and rebuild it from them.  The
  arrays can live anywhere (the in-process cache, or
  ``multiprocessing.shared_memory`` segments mapped into worker processes),
  and every rebuilt instance gets private mutable scratch state, so one
  exported state safely serves many concurrent jobs.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..ranking import selection_mask
from ..tabular import Table
from .disparity import (
    AttributeNormalizer,
    DisparityCalculator,
    DisparityResult,
    LogDiscountedDisparity,
)

__all__ = [
    "FairnessObjective",
    "CompiledObjective",
    "DisparityObjective",
    "LogDiscountedDisparityObjective",
    "DisparateImpactObjective",
    "FalsePositiveRateObjective",
    "ExposureGapObjective",
]


class CompiledObjective(abc.ABC):
    """A fairness objective bound to one population, evaluated on arrays.

    ``evaluate`` receives the row ``indices`` of the current sample (``None``
    meaning the whole population), the compensated ``scores`` of exactly those
    rows, and the selection fraction ``k``; it returns the raw signal vector
    (one value per fairness attribute) as a plain ``ndarray``.
    """

    __slots__ = ()

    def __init_subclass__(cls, **kwargs) -> None:
        """Enforce the map-reduce contract at class-definition time.

        The same pairing rules repro-lint's R3 checks statically: a class
        that overrides :meth:`partial` must also override :meth:`merge`
        and :meth:`shard_fields` (a partial that nothing can reduce — or
        that silently falls back to whole-table pickling — is a latent
        bug, not an option), and overriding :meth:`export_state` requires
        :meth:`from_state` so workers can rebuild the state they receive.
        Failing here, when the subclass is *defined*, beats failing on the
        first sharded fit months later.
        """
        super().__init_subclass__(**kwargs)

        def overrides(name: str) -> bool:
            ours = getattr(cls, name, None)
            base = getattr(CompiledObjective, name)
            # Compare underlying functions so classmethods participate.
            return getattr(ours, "__func__", ours) is not getattr(base, "__func__", base)

        if overrides("partial"):
            missing = [name for name in ("merge", "shard_fields") if not overrides(name)]
            if missing:
                raise TypeError(
                    f"{cls.__name__} overrides partial() without {' and '.join(missing)}: "
                    "the map-reduce contract requires partial/merge/shard_fields together"
                )
        if overrides("export_state") and not overrides("from_state"):
            raise TypeError(
                f"{cls.__name__} overrides export_state() without from_state(): "
                "workers cannot rebuild the compiled state they are handed"
            )

    @abc.abstractmethod
    def evaluate(self, indices: np.ndarray | None, scores: np.ndarray, k: float) -> np.ndarray:
        """Per-attribute fairness signal for the rows at ``indices``."""

    # ------------------------------------------------------------------
    # Map-reduce (sharded) evaluation
    # ------------------------------------------------------------------
    def shard_fields(self) -> dict[str, tuple[str, int]] | None:
        """Per-row accumulator fields needed for map-reduce evaluation.

        Maps each field name :meth:`partial` emits (besides ``"scores"``,
        which every accumulator carries) to ``(dtype string, columns)``,
        where ``columns`` is the field's trailing dimension (0 for a 1-D
        field).  The sharded fit plane uses this to pre-allocate
        shared-memory scratch sized to the sample.  Returning ``None`` (the
        default) declares that this compiled objective cannot be evaluated
        shard-wise; such objectives still work everywhere else, but
        row-sharded fits fall back to in-process execution.
        """
        return None

    def topk_fraction(self, k: float) -> float | None:
        """The single selection fraction :meth:`merge` masks with, if any.

        When an objective's reduce step selects exactly one top-``k`` set
        over the merged scores (``selection_mask(scores, fraction)`` for one
        fraction), returning that fraction lets the sharded fit plane
        compute the mask *distributed*: workers publish shard-local top
        candidates and the parent merges ``shards × k`` entries instead of
        argpartitioning the full sample, then hands the finished mask to
        :meth:`merge` via its ``selection`` argument.  Returning ``None``
        (the default) declares no such single mask — e.g. multi-fraction
        reduces — and merge computes selections itself.
        """
        return None

    def partial(self, indices: np.ndarray, scores: np.ndarray, k: float) -> dict[str, np.ndarray]:
        """Map step: one shard's accumulator for the rows at ``indices``.

        ``scores`` are the compensated scores of exactly those rows.  The
        returned dict holds ``"scores"`` plus one array per
        :meth:`shard_fields` entry, each with ``len(indices)`` rows.  The
        method performs only bit-exact gathers — all floating-point
        reductions are deferred to :meth:`merge`, which is what makes the
        sharded result independent of how the sample was partitioned.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support map-reduce (sharded) evaluation"
        )

    def merge(
        self,
        accumulators: Sequence[dict],
        k: float,
        selection: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reduce step: fold shard accumulators into the signal vector.

        ``accumulators`` are :meth:`partial` outputs in shard-rank order;
        their concatenation defines the evaluated sample.  ``merge`` uses
        only compile-time metadata (never per-row population arrays), so
        any equivalently-compiled instance can reduce any shard's output —
        in particular the parent process can merge what pool workers
        mapped.  ``merge([partial(indices, scores, k)], k)`` is bitwise
        identical to ``evaluate(indices, scores, k)``.

        ``selection``, when given, is the precomputed boolean top-``k``
        mask over the merged sample (the distributed top-k merge described
        in :meth:`topk_fraction`); it must equal
        ``selection_mask(scores, topk_fraction(k))`` bitwise.  Objectives
        whose :meth:`topk_fraction` is ``None`` never receive one.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support map-reduce (sharded) evaluation"
        )

    def export_state(self) -> tuple[dict[str, np.ndarray], dict] | None:
        """Split this compiled objective into ``(arrays, metadata)``.

        ``arrays`` maps names to the population-sized ndarrays the objective
        evaluates on; ``metadata`` holds everything else (small, picklable —
        grids, kernels, labels of structure).  ``from_state`` on the same
        class must rebuild an equivalent instance from them, with the arrays
        possibly living in shared memory.  Returning ``None`` (the default)
        marks the state as non-shareable: such objectives still work under
        every executor, but each process-pool job falls back to an in-parent
        fit instead of a shared-memory worker.
        """
        return None

    @classmethod
    def from_state(cls, arrays: dict[str, np.ndarray], metadata: dict) -> "CompiledObjective":
        """Rebuild a compiled objective from :meth:`export_state` output.

        The returned instance must treat ``arrays`` as read-only (they may be
        shared across jobs, threads, and processes) and must keep any mutable
        scratch state private to itself.
        """
        raise NotImplementedError(f"{cls.__name__} does not support shared state")


class _CompiledTableFallback(CompiledObjective):
    """Compiled wrapper for objectives that only implement the table path."""

    __slots__ = ("_objective", "_table")

    def __init__(self, objective: "FairnessObjective", table: Table) -> None:
        self._objective = objective
        self._table = table

    def evaluate(self, indices: np.ndarray | None, scores: np.ndarray, k: float) -> np.ndarray:
        subset = self._table if indices is None else self._table.take(indices)
        return self._objective.evaluate(subset, scores, k).vector

    def shard_fields(self) -> None:
        """Explicitly no sharding: the table path evaluates whole samples only."""
        return None

    def partial(self, indices: np.ndarray, scores: np.ndarray, k: float) -> dict[str, np.ndarray]:
        raise NotImplementedError(
            "this objective only implements the table-path evaluate(); row-sharded "
            "execution requires an array-plane compilation that overrides "
            "CompiledObjective.shard_fields/partial/merge"
        )

    def merge(
        self,
        accumulators: Sequence[dict],
        k: float,
        selection: np.ndarray | None = None,
    ) -> np.ndarray:
        raise NotImplementedError(
            "this objective only implements the table-path evaluate(); row-sharded "
            "execution requires an array-plane compilation that overrides "
            "CompiledObjective.shard_fields/partial/merge"
        )


class FairnessObjective(abc.ABC):
    """Base class for the vector-valued fairness signals DCA can minimize."""

    def __init__(self, attribute_names: Sequence[str]) -> None:
        if not attribute_names:
            raise ValueError("at least one fairness attribute is required")
        self.attribute_names = tuple(attribute_names)

    @abc.abstractmethod
    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        """Per-attribute fairness signal for selecting the top ``k`` by ``scores``."""

    def fit(self, table: Table) -> "FairnessObjective":
        """Fit any normalization state on a reference population (no-op by default)."""
        return self

    def compile(self, table: Table) -> CompiledObjective:
        """Bind this objective to ``table`` for array-plane evaluation.

        The default compilation wraps the table path (slicing ``table`` per
        call), so any subclass works under the array engine; the built-in
        objectives override this with exact vectorized versions.
        """
        return _CompiledTableFallback(self, table)

    def signature(self) -> tuple | None:
        """A stable, hashable description of this objective's compiled state.

        Contract: two objectives with equal signatures that have been
        ``fit`` on the same population compile to bitwise-identical state.
        The signature is what lets :class:`repro.core.parallel.CompiledObjectiveCache`
        reuse one compilation across the jobs of a batched fit and what keys
        the shared-memory plane handed to process-pool workers.  The default
        ``None`` opts out of caching and sharing (always correct, never
        stale) — override it in subclasses whose compiled state is fully
        determined by constructor parameters plus the fitted population.
        """
        return None

    def norm(self, table: Table, scores: np.ndarray, k: float) -> float:
        return self.evaluate(table, scores, k).norm


class DisparityObjective(FairnessObjective):
    """The paper's default objective: Definition 3 disparity at a known ``k``."""

    def __init__(
        self,
        attribute_names: Sequence[str],
        normalizer: AttributeNormalizer | None = None,
    ) -> None:
        super().__init__(attribute_names)
        self.calculator = DisparityCalculator(self.attribute_names, normalizer=normalizer)

    def fit(self, table: Table) -> "DisparityObjective":
        self.calculator.fit(table)
        return self

    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        return self.calculator.disparity(table, scores, k)

    def compile(self, table: Table) -> CompiledObjective:
        return _CompiledDisparity(self.calculator.normalized_matrix(table))

    def signature(self) -> tuple:
        return ("disparity", self.attribute_names, _type_tag(self.calculator.normalizer))


def _type_tag(instance: object) -> str:
    """Fully qualified type name, used to make objective signatures precise."""
    cls = type(instance)
    return f"{cls.__module__}.{cls.__qualname__}"


def _column_means(matrix: np.ndarray) -> np.ndarray:
    """Column means via the raw ufunc reduction.

    Bitwise identical to ``matrix.mean(axis=0)`` (which performs the same
    ``add.reduce`` followed by the same division) but without the Python-level
    dispatch overhead, which matters at thousands of calls per fit.
    """
    return np.add.reduce(matrix, axis=0) / matrix.shape[0]


def _merged_arrays(accumulators: Sequence[dict]) -> dict:
    """Reassemble shard accumulators into one sample-sized array per field.

    Concatenation order is the given shard-rank order; concatenating row
    gathers is bit-exact, so the reassembled arrays equal what a single
    un-sharded gather over the whole sample would have produced.
    """
    if not accumulators:
        raise ValueError("merge requires at least one shard accumulator")
    if len(accumulators) == 1:
        return accumulators[0]
    return {
        key: np.concatenate([np.asarray(acc[key]) for acc in accumulators])
        for key in accumulators[0]
    }


class _CompiledDisparity(CompiledObjective):
    """Array-plane Definition 3 disparity over a pre-normalized matrix.

    ``evaluate`` and ``merge`` share one kernel (:meth:`_signal`), so the
    map-reduce identity ``merge([partial(...)]) == evaluate(...)`` holds by
    construction rather than by keeping two copies of the arithmetic in sync.
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self._matrix = matrix

    @staticmethod
    def _signal(
        matrix: np.ndarray,
        scores: np.ndarray,
        k: float,
        selection: np.ndarray | None = None,
    ) -> np.ndarray:
        mask = selection if selection is not None else selection_mask(scores, k)
        return _column_means(matrix[mask]) - _column_means(matrix)

    def evaluate(self, indices: np.ndarray | None, scores: np.ndarray, k: float) -> np.ndarray:
        matrix = self._matrix if indices is None else self._matrix[indices]
        return self._signal(matrix, scores, k)

    def shard_fields(self) -> dict[str, tuple[str, int]]:
        return {"matrix": (self._matrix.dtype.str, int(self._matrix.shape[1]))}

    def topk_fraction(self, k: float) -> float:
        # merge() masks at exactly one fraction — k itself — so the sharded
        # plane may hand it a distributed-merge selection mask.
        return float(k)

    def partial(self, indices: np.ndarray, scores: np.ndarray, k: float) -> dict[str, np.ndarray]:
        return {"scores": scores, "matrix": self._matrix[indices]}

    def merge(
        self,
        accumulators: Sequence[dict],
        k: float,
        selection: np.ndarray | None = None,
    ) -> np.ndarray:
        arrays = _merged_arrays(accumulators)
        return self._signal(arrays["matrix"], arrays["scores"], k, selection)

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        return {"matrix": self._matrix}, {}

    @classmethod
    def from_state(cls, arrays: dict[str, np.ndarray], metadata: dict) -> "_CompiledDisparity":
        return cls(arrays["matrix"])


class LogDiscountedDisparityObjective(FairnessObjective):
    """Section IV-E: discounted disparity over many selection fractions."""

    def __init__(
        self,
        attribute_names: Sequence[str],
        k_grid: Sequence[float] | None = None,
        normalizer: AttributeNormalizer | None = None,
    ) -> None:
        super().__init__(attribute_names)
        self.calculator = DisparityCalculator(self.attribute_names, normalizer=normalizer)
        self.discounted = LogDiscountedDisparity(self.calculator, k_grid=k_grid)

    def fit(self, table: Table) -> "LogDiscountedDisparityObjective":
        self.calculator.fit(table)
        return self

    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        # ``k`` caps the grid: "the disparity outside that section of the
        # ranking can be ignored" when only part of the ranking matters.
        return self.discounted.disparity(table, scores, k=k)

    def compile(self, table: Table) -> CompiledObjective:
        return _CompiledLogDiscounted(
            self.calculator.normalized_matrix(table), self.discounted.k_grid
        )

    def signature(self) -> tuple:
        return (
            "log-discounted",
            self.attribute_names,
            self.discounted.k_grid,
            _type_tag(self.calculator.normalizer),
        )


class _CompiledLogDiscounted(CompiledObjective):
    """Array-plane log-discounted disparity over a grid of selection fractions."""

    __slots__ = ("_matrix", "_k_grid", "_cached_k", "_cached_grid", "_cached_weights")

    def __init__(self, matrix: np.ndarray, k_grid: tuple[float, ...]) -> None:
        self._matrix = matrix
        self._k_grid = k_grid
        self._cached_k: float | None = None
        self._cached_grid: tuple[float, ...] = ()
        self._cached_weights = np.zeros(0)

    def _capped_grid(self, k: float) -> tuple[tuple[float, ...], np.ndarray]:
        # ``k`` is constant across a fit's thousands of steps; cache the
        # capped grid and normalized weights instead of rebuilding them.
        if k != self._cached_k:
            grid = tuple(g for g in self._k_grid if g <= k + 1e-12)
            if not grid:
                grid = (self._k_grid[0],)
            weights = np.asarray([1.0 / np.log2(100.0 * g + 1.0) for g in grid], dtype=float)
            self._cached_k = k
            self._cached_grid = grid
            self._cached_weights = weights / weights.sum()
        return self._cached_grid, self._cached_weights

    def _signal(self, matrix: np.ndarray, scores: np.ndarray, k: float) -> np.ndarray:
        # The one kernel behind evaluate and merge: the map-reduce identity
        # cannot drift because there is no second copy of this arithmetic.
        grid, weights = self._capped_grid(k)
        population_centroid = _column_means(matrix)
        total = np.zeros(matrix.shape[1], dtype=float)
        for weight, fraction in zip(weights, grid):
            mask = selection_mask(scores, fraction)
            total += weight * (_column_means(matrix[mask]) - population_centroid)
        return total

    def evaluate(self, indices: np.ndarray | None, scores: np.ndarray, k: float) -> np.ndarray:
        matrix = self._matrix if indices is None else self._matrix[indices]
        return self._signal(matrix, scores, k)

    def shard_fields(self) -> dict[str, tuple[str, int]]:
        return {"matrix": (self._matrix.dtype.str, int(self._matrix.shape[1]))}

    def partial(self, indices: np.ndarray, scores: np.ndarray, k: float) -> dict[str, np.ndarray]:
        return {"scores": scores, "matrix": self._matrix[indices]}

    def merge(
        self,
        accumulators: Sequence[dict],
        k: float,
        selection: np.ndarray | None = None,
    ) -> np.ndarray:
        # topk_fraction() stays None here: the reduce masks at every grid
        # fraction, so no single distributed top-k mask applies.
        arrays = _merged_arrays(accumulators)
        return self._signal(arrays["matrix"], arrays["scores"], k)

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        # The per-k weight cache is scratch state: every rebuilt instance
        # starts with an empty one, so shared state stays immutable.
        return {"matrix": self._matrix}, {"k_grid": self._k_grid}

    @classmethod
    def from_state(cls, arrays: dict[str, np.ndarray], metadata: dict) -> "_CompiledLogDiscounted":
        return cls(arrays["matrix"], tuple(metadata["k_grid"]))


class DisparateImpactObjective(FairnessObjective):
    """Scaled disparate impact (Zafar et al.) adapted to DCA's conventions.

    For a binary attribute F, disparate impact is
    ``min(P(O=1|F=0)/P(O=1|F=1), P(O=1|F=1)/P(O=1|F=0))`` — a ratio in [0, 1]
    where 1 means equal selection rates.  To drive DCA it is rescaled to
    [-1, 1]: the magnitude is ``1 − DI`` and the sign is negative when the
    protected group (F=1) is selected at a *lower* rate than the rest, so that
    the standard update ``B ← B − L·D`` adds points to the disadvantaged group.
    """

    def __init__(self, attribute_names: Sequence[str]) -> None:
        super().__init__(attribute_names)

    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        scores = np.asarray(scores, dtype=float)
        mask = selection_mask(scores, k)
        membership = _membership_matrix(table, self.attribute_names)
        return DisparityResult(self.attribute_names, _disparate_impact_values(membership, mask))

    def compile(self, table: Table) -> CompiledObjective:
        return _CompiledGroupObjective(
            _membership_matrix(table, self.attribute_names), _disparate_impact_values
        )

    def signature(self) -> tuple:
        return ("disparate-impact", self.attribute_names)


class FalsePositiveRateObjective(FairnessObjective):
    """Equalized-odds-style objective: per-group false-positive-rate gaps.

    The COMPAS setting flags defendants predicted to re-offend; a *false
    positive* is a defendant who did **not** re-offend but was flagged (i.e.
    was not in the selected low-risk set).  For each group the objective
    reports ``FPR_overall − FPR_group``: negative when the group's FPR exceeds
    the overall rate (the group is over-flagged and needs compensation), zero
    when the rates match.  The paper phrases the same quantity as "subtract
    the overall FPR from the per-group FPR"; the sign here is flipped so that
    the uniform DCA update ``B ← B − L·D`` raises bonuses for over-flagged
    groups.

    Parameters
    ----------
    attribute_names:
        Binary group-membership columns (e.g. one-hot race indicators).
    label_column:
        Column holding the true outcome; 1 means the positive event (e.g.
        recidivism within two years) actually occurred.
    """

    def __init__(self, attribute_names: Sequence[str], label_column: str) -> None:
        super().__init__(attribute_names)
        self.label_column = str(label_column)

    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        scores = np.asarray(scores, dtype=float)
        selected = selection_mask(scores, k)
        membership = _membership_matrix(table, self.attribute_names)
        labels = table.numeric(self.label_column) > 0.5
        return DisparityResult(
            self.attribute_names, _false_positive_rate_values(membership, labels, selected)
        )

    def compile(self, table: Table) -> CompiledObjective:
        membership = _membership_matrix(table, self.attribute_names)
        labels = table.numeric(self.label_column) > 0.5
        return _CompiledFalsePositiveRate(membership, labels)

    def signature(self) -> tuple:
        return ("fpr", self.attribute_names, self.label_column)


class ExposureGapObjective(FairnessObjective):
    """Per-group exposure gaps with logarithmic position discounting.

    Exposure of a ranked object at (1-based) rank ``r`` is ``1 / log2(r + 1)``
    (Gupta et al., 2021).  For each fairness attribute the objective reports
    the difference between the group's average exposure and the complement
    group's average exposure, scaled by the maximum attainable exposure so the
    value stays in [-1, 1].  Negative means the group is ranked systematically
    lower (needs compensation).
    """

    def __init__(self, attribute_names: Sequence[str]) -> None:
        super().__init__(attribute_names)

    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        scores = np.asarray(scores, dtype=float)
        membership = _membership_matrix(table, self.attribute_names)
        return DisparityResult(self.attribute_names, _exposure_gap_values(membership, scores))

    def compile(self, table: Table) -> CompiledObjective:
        return _CompiledExposureGap(_membership_matrix(table, self.attribute_names))

    def signature(self) -> tuple:
        return ("exposure-gap", self.attribute_names)


# ----------------------------------------------------------------------
# Shared array-plane kernels.
#
# The table-path ``evaluate`` methods and the compiled objectives both call
# these functions, so the two planes cannot drift apart: a compiled evaluation
# over ``membership[indices]`` is the same arithmetic as a table evaluation
# over the sliced table.
# ----------------------------------------------------------------------
def _membership_matrix(table: Table, attribute_names: Sequence[str]) -> np.ndarray:
    """Boolean ``(rows, attributes)`` group-membership matrix of ``table``."""
    return np.column_stack(
        [table.numeric(name) > 0.5 for name in attribute_names]
    )


def _disparate_impact_values(membership: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Scaled disparate impact per attribute given membership and selection mask."""
    values = np.zeros(membership.shape[1], dtype=float)
    for i in range(membership.shape[1]):
        member = membership[:, i]
        in_group = member.sum()
        out_group = (~member).sum()
        if in_group == 0 or out_group == 0:
            values[i] = 0.0
            continue
        rate_in = mask[member].mean()
        rate_out = mask[~member].mean()
        if rate_in == 0.0 and rate_out == 0.0:
            values[i] = 0.0
            continue
        high = max(rate_in, rate_out)
        low = min(rate_in, rate_out)
        ratio = low / high if high > 0 else 1.0
        magnitude = 1.0 - ratio
        values[i] = magnitude if rate_in > rate_out else -magnitude
    return values


def _false_positive_rate_values(
    membership: np.ndarray, labels: np.ndarray, selected: np.ndarray
) -> np.ndarray:
    """Per-group ``FPR_overall − FPR_group`` given membership, labels, selection."""
    flagged = ~selected  # not selected for release == predicted positive
    actual_negative = ~labels
    values = np.zeros(membership.shape[1], dtype=float)
    total_negatives = actual_negative.sum()
    overall_fpr = float(flagged[actual_negative].mean()) if total_negatives > 0 else 0.0
    for i in range(membership.shape[1]):
        group_negatives = membership[:, i] & actual_negative
        if group_negatives.sum() == 0:
            values[i] = 0.0
            continue
        group_fpr = float(flagged[group_negatives].mean())
        values[i] = overall_fpr - group_fpr
    return values


def _exposure_gap_values(membership: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """Per-group exposure gaps with logarithmic position discounting."""
    n = scores.shape[0]
    if n == 0:
        raise ValueError("cannot compute exposure over an empty table")
    order = np.lexsort((np.arange(n), -scores))
    ranks = np.empty(n, dtype=float)
    ranks[order] = np.arange(1, n + 1, dtype=float)
    exposure = 1.0 / np.log2(ranks + 1.0)
    values = np.zeros(membership.shape[1], dtype=float)
    for i in range(membership.shape[1]):
        member = membership[:, i]
        if member.sum() == 0 or (~member).sum() == 0:
            values[i] = 0.0
            continue
        gap = exposure[member].mean() - exposure[~member].mean()
        values[i] = float(np.clip(gap, -1.0, 1.0))
    return values


class _CompiledGroupObjective(CompiledObjective):
    """Compiled selection-mask objective over a precomputed membership matrix."""

    __slots__ = ("_membership", "_kernel")

    def __init__(self, membership: np.ndarray, kernel) -> None:
        self._membership = membership
        self._kernel = kernel

    def evaluate(self, indices: np.ndarray | None, scores: np.ndarray, k: float) -> np.ndarray:
        membership = self._membership if indices is None else self._membership[indices]
        return self._kernel(membership, selection_mask(scores, k))

    def shard_fields(self) -> dict[str, tuple[str, int]]:
        return {"membership": (self._membership.dtype.str, int(self._membership.shape[1]))}

    def topk_fraction(self, k: float) -> float:
        # merge() applies one selection mask at fraction k; the sharded
        # plane may precompute it via the distributed top-k merge.
        return float(k)

    def partial(self, indices: np.ndarray, scores: np.ndarray, k: float) -> dict[str, np.ndarray]:
        return {"scores": scores, "membership": self._membership[indices]}

    def merge(
        self,
        accumulators: Sequence[dict],
        k: float,
        selection: np.ndarray | None = None,
    ) -> np.ndarray:
        arrays = _merged_arrays(accumulators)
        mask = selection if selection is not None else selection_mask(arrays["scores"], k)
        return self._kernel(arrays["membership"], mask)

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        # The kernel is a module-level function, so it travels by reference
        # (both through the in-process cache and through pickle to workers).
        return {"membership": self._membership}, {"kernel": self._kernel}

    @classmethod
    def from_state(cls, arrays: dict[str, np.ndarray], metadata: dict) -> "_CompiledGroupObjective":
        return cls(arrays["membership"], metadata["kernel"])


class _CompiledFalsePositiveRate(CompiledObjective):
    """Compiled equalized-odds FPR gaps over precomputed membership and labels."""

    __slots__ = ("_membership", "_labels")

    def __init__(self, membership: np.ndarray, labels: np.ndarray) -> None:
        self._membership = membership
        self._labels = labels

    def evaluate(self, indices: np.ndarray | None, scores: np.ndarray, k: float) -> np.ndarray:
        if indices is None:
            membership, labels = self._membership, self._labels
        else:
            membership, labels = self._membership[indices], self._labels[indices]
        return _false_positive_rate_values(membership, labels, selection_mask(scores, k))

    def shard_fields(self) -> dict[str, tuple[str, int]]:
        return {
            "membership": (self._membership.dtype.str, int(self._membership.shape[1])),
            "labels": (self._labels.dtype.str, 0),
        }

    def partial(self, indices: np.ndarray, scores: np.ndarray, k: float) -> dict[str, np.ndarray]:
        return {
            "scores": scores,
            "membership": self._membership[indices],
            "labels": self._labels[indices],
        }

    def topk_fraction(self, k: float) -> float:
        # merge() applies one selection mask at fraction k; the sharded
        # plane may precompute it via the distributed top-k merge.
        return float(k)

    def merge(
        self,
        accumulators: Sequence[dict],
        k: float,
        selection: np.ndarray | None = None,
    ) -> np.ndarray:
        arrays = _merged_arrays(accumulators)
        mask = selection if selection is not None else selection_mask(arrays["scores"], k)
        return _false_positive_rate_values(arrays["membership"], arrays["labels"], mask)

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        return {"membership": self._membership, "labels": self._labels}, {}

    @classmethod
    def from_state(cls, arrays: dict[str, np.ndarray], metadata: dict) -> "_CompiledFalsePositiveRate":
        return cls(arrays["membership"], arrays["labels"])


class _CompiledExposureGap(CompiledObjective):
    """Compiled exposure gaps over a precomputed membership matrix."""

    __slots__ = ("_membership",)

    def __init__(self, membership: np.ndarray) -> None:
        self._membership = membership

    def evaluate(self, indices: np.ndarray | None, scores: np.ndarray, k: float) -> np.ndarray:
        membership = self._membership if indices is None else self._membership[indices]
        return _exposure_gap_values(membership, scores)

    def shard_fields(self) -> dict[str, tuple[str, int]]:
        return {"membership": (self._membership.dtype.str, int(self._membership.shape[1]))}

    def partial(self, indices: np.ndarray, scores: np.ndarray, k: float) -> dict[str, np.ndarray]:
        return {"scores": scores, "membership": self._membership[indices]}

    def merge(
        self,
        accumulators: Sequence[dict],
        k: float,
        selection: np.ndarray | None = None,
    ) -> np.ndarray:
        # topk_fraction() stays None: exposure weights every rank, so there
        # is no top-k mask to distribute.
        arrays = _merged_arrays(accumulators)
        return _exposure_gap_values(arrays["membership"], arrays["scores"])

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        return {"membership": self._membership}, {}

    @classmethod
    def from_state(cls, arrays: dict[str, np.ndarray], metadata: dict) -> "_CompiledExposureGap":
        return cls(arrays["membership"])
