"""Pluggable optimization objectives for DCA.

DCA's update rule moves the bonus vector *against* a per-attribute fairness
signal: ``B ← B − L · D``.  Any metric can drive the search as long as it
(Section VI-C5):

* is a vector with one independently computed dimension per fairness
  attribute,
* lies in [-1, 1] with **negative values meaning the group needs more bonus
  points** (under-representation / disadvantage), positive values meaning the
  group is over-compensated, and zero meaning fairness,
* can be summarized by its norm.

The objectives implemented here are the ones the paper evaluates:

``DisparityObjective``
    The default — Definition 3's centroid difference at a known ``k``.
``LogDiscountedDisparityObjective``
    Section IV-E's discounted average over a grid of ``k`` values.
``DisparateImpactObjective``
    The scaled disparate-impact ratio of Zafar et al. (Section VI-C5).
``FalsePositiveRateObjective``
    Equalized-odds-style FPR differences, used on COMPAS (Figure 10b).
``ExposureGapObjective``
    Per-group average exposure differences (the DDP building block of
    Section VI-C4), usable as a direct optimization target.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..ranking import selection_mask
from ..tabular import Table
from .disparity import (
    AttributeNormalizer,
    DisparityCalculator,
    DisparityResult,
    LogDiscountedDisparity,
)

__all__ = [
    "FairnessObjective",
    "DisparityObjective",
    "LogDiscountedDisparityObjective",
    "DisparateImpactObjective",
    "FalsePositiveRateObjective",
    "ExposureGapObjective",
]


class FairnessObjective(abc.ABC):
    """Base class for the vector-valued fairness signals DCA can minimize."""

    def __init__(self, attribute_names: Sequence[str]) -> None:
        if not attribute_names:
            raise ValueError("at least one fairness attribute is required")
        self.attribute_names = tuple(attribute_names)

    @abc.abstractmethod
    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        """Per-attribute fairness signal for selecting the top ``k`` by ``scores``."""

    def fit(self, table: Table) -> "FairnessObjective":
        """Fit any normalization state on a reference population (no-op by default)."""
        return self

    def norm(self, table: Table, scores: np.ndarray, k: float) -> float:
        return self.evaluate(table, scores, k).norm


class DisparityObjective(FairnessObjective):
    """The paper's default objective: Definition 3 disparity at a known ``k``."""

    def __init__(
        self,
        attribute_names: Sequence[str],
        normalizer: AttributeNormalizer | None = None,
    ) -> None:
        super().__init__(attribute_names)
        self.calculator = DisparityCalculator(self.attribute_names, normalizer=normalizer)

    def fit(self, table: Table) -> "DisparityObjective":
        self.calculator.fit(table)
        return self

    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        return self.calculator.disparity(table, scores, k)


class LogDiscountedDisparityObjective(FairnessObjective):
    """Section IV-E: discounted disparity over many selection fractions."""

    def __init__(
        self,
        attribute_names: Sequence[str],
        k_grid: Sequence[float] | None = None,
        normalizer: AttributeNormalizer | None = None,
    ) -> None:
        super().__init__(attribute_names)
        self.calculator = DisparityCalculator(self.attribute_names, normalizer=normalizer)
        self.discounted = LogDiscountedDisparity(self.calculator, k_grid=k_grid)

    def fit(self, table: Table) -> "LogDiscountedDisparityObjective":
        self.calculator.fit(table)
        return self

    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        # ``k`` caps the grid: "the disparity outside that section of the
        # ranking can be ignored" when only part of the ranking matters.
        return self.discounted.disparity(table, scores, k=k)


class DisparateImpactObjective(FairnessObjective):
    """Scaled disparate impact (Zafar et al.) adapted to DCA's conventions.

    For a binary attribute F, disparate impact is
    ``min(P(O=1|F=0)/P(O=1|F=1), P(O=1|F=1)/P(O=1|F=0))`` — a ratio in [0, 1]
    where 1 means equal selection rates.  To drive DCA it is rescaled to
    [-1, 1]: the magnitude is ``1 − DI`` and the sign is negative when the
    protected group (F=1) is selected at a *lower* rate than the rest, so that
    the standard update ``B ← B − L·D`` adds points to the disadvantaged group.
    """

    def __init__(self, attribute_names: Sequence[str]) -> None:
        super().__init__(attribute_names)

    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        scores = np.asarray(scores, dtype=float)
        mask = selection_mask(scores, k)
        values = np.zeros(len(self.attribute_names), dtype=float)
        for i, name in enumerate(self.attribute_names):
            membership = table.numeric(name) > 0.5
            in_group = membership.sum()
            out_group = (~membership).sum()
            if in_group == 0 or out_group == 0:
                values[i] = 0.0
                continue
            rate_in = mask[membership].mean()
            rate_out = mask[~membership].mean()
            if rate_in == 0.0 and rate_out == 0.0:
                values[i] = 0.0
                continue
            high = max(rate_in, rate_out)
            low = min(rate_in, rate_out)
            ratio = low / high if high > 0 else 1.0
            magnitude = 1.0 - ratio
            values[i] = magnitude if rate_in > rate_out else -magnitude
        return DisparityResult(self.attribute_names, values)


class FalsePositiveRateObjective(FairnessObjective):
    """Equalized-odds-style objective: per-group false-positive-rate gaps.

    The COMPAS setting flags defendants predicted to re-offend; a *false
    positive* is a defendant who did **not** re-offend but was flagged (i.e.
    was not in the selected low-risk set).  For each group the objective
    reports ``FPR_overall − FPR_group``: negative when the group's FPR exceeds
    the overall rate (the group is over-flagged and needs compensation), zero
    when the rates match.  The paper phrases the same quantity as "subtract
    the overall FPR from the per-group FPR"; the sign here is flipped so that
    the uniform DCA update ``B ← B − L·D`` raises bonuses for over-flagged
    groups.

    Parameters
    ----------
    attribute_names:
        Binary group-membership columns (e.g. one-hot race indicators).
    label_column:
        Column holding the true outcome; 1 means the positive event (e.g.
        recidivism within two years) actually occurred.
    """

    def __init__(self, attribute_names: Sequence[str], label_column: str) -> None:
        super().__init__(attribute_names)
        self.label_column = str(label_column)

    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        scores = np.asarray(scores, dtype=float)
        selected = selection_mask(scores, k)
        flagged = ~selected  # not selected for release == predicted positive
        labels = table.numeric(self.label_column) > 0.5
        actual_negative = ~labels
        values = np.zeros(len(self.attribute_names), dtype=float)
        total_negatives = actual_negative.sum()
        overall_fpr = (
            float(flagged[actual_negative].mean()) if total_negatives > 0 else 0.0
        )
        for i, name in enumerate(self.attribute_names):
            membership = table.numeric(name) > 0.5
            group_negatives = membership & actual_negative
            if group_negatives.sum() == 0:
                values[i] = 0.0
                continue
            group_fpr = float(flagged[group_negatives].mean())
            values[i] = overall_fpr - group_fpr
        return DisparityResult(self.attribute_names, values)


class ExposureGapObjective(FairnessObjective):
    """Per-group exposure gaps with logarithmic position discounting.

    Exposure of a ranked object at (1-based) rank ``r`` is ``1 / log2(r + 1)``
    (Gupta et al., 2021).  For each fairness attribute the objective reports
    the difference between the group's average exposure and the complement
    group's average exposure, scaled by the maximum attainable exposure so the
    value stays in [-1, 1].  Negative means the group is ranked systematically
    lower (needs compensation).
    """

    def __init__(self, attribute_names: Sequence[str]) -> None:
        super().__init__(attribute_names)

    def evaluate(self, table: Table, scores: np.ndarray, k: float) -> DisparityResult:
        scores = np.asarray(scores, dtype=float)
        n = scores.shape[0]
        if n == 0:
            raise ValueError("cannot compute exposure over an empty table")
        order = np.lexsort((np.arange(n), -scores))
        ranks = np.empty(n, dtype=float)
        ranks[order] = np.arange(1, n + 1, dtype=float)
        exposure = 1.0 / np.log2(ranks + 1.0)
        values = np.zeros(len(self.attribute_names), dtype=float)
        for i, name in enumerate(self.attribute_names):
            membership = table.numeric(name) > 0.5
            if membership.sum() == 0 or (~membership).sum() == 0:
                values[i] = 0.0
                continue
            gap = exposure[membership].mean() - exposure[~membership].mean()
            values[i] = float(np.clip(gap, -1.0, 1.0))
        return DisparityResult(self.attribute_names, values)
