"""Result objects returned by DCA runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bonus import BonusVector

__all__ = ["DCATrace", "DCAResult"]


@dataclass(frozen=True)
class DCATrace:
    """Per-iteration diagnostics of one DCA phase (core pass or refinement).

    Attributes
    ----------
    phase:
        Human-readable phase label, e.g. ``"core lr=1.0"`` or ``"refinement"``.
    bonus_history:
        Bonus vector after each iteration, shape ``(iterations, num_attributes)``.
    objective_norms:
        Norm of the sampled objective vector at each iteration.
    """

    phase: str
    bonus_history: np.ndarray
    objective_norms: np.ndarray

    def __post_init__(self) -> None:
        history = np.asarray(self.bonus_history, dtype=float)
        norms = np.asarray(self.objective_norms, dtype=float)
        if history.ndim != 2:
            raise ValueError(f"bonus_history must be 2-D, got shape {history.shape}")
        if norms.shape != (history.shape[0],):
            raise ValueError(
                f"objective_norms has shape {norms.shape}, expected ({history.shape[0]},)"
            )
        object.__setattr__(self, "bonus_history", history)
        object.__setattr__(self, "objective_norms", norms)

    @property
    def iterations(self) -> int:
        return int(self.bonus_history.shape[0])

    @property
    def final_norm(self) -> float:
        return float(self.objective_norms[-1]) if self.iterations else float("nan")


@dataclass(frozen=True)
class DCAResult:
    """Everything a DCA run produces.

    Attributes
    ----------
    bonus:
        The final (rounded, constrained) bonus vector — the published artefact.
    raw_bonus:
        The bonus vector before rounding to the stakeholder granularity.
    core_bonus:
        The bonus vector after Core DCA but before refinement (when the
        refinement step ran; otherwise equal to ``raw_bonus``).
    traces:
        Per-phase iteration diagnostics.
    sample_size:
        The per-step sample size actually used.
    elapsed_seconds:
        Wall-clock time of the fit.
    """

    bonus: BonusVector
    raw_bonus: BonusVector
    core_bonus: BonusVector
    traces: tuple[DCATrace, ...] = field(default_factory=tuple)
    sample_size: int = 0
    elapsed_seconds: float = 0.0

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self.bonus.attribute_names

    def as_dict(self) -> dict[str, float]:
        """The final bonus points keyed by attribute name."""
        return self.bonus.as_dict()

    def summary(self) -> str:
        """A short human-readable description of the fitted bonus points."""
        pairs = ", ".join(f"{name}: {value:g} pts" for name, value in self.as_dict().items())
        return (
            f"DCA bonus points ({pairs}); sample_size={self.sample_size}, "
            f"fit in {self.elapsed_seconds:.2f}s"
        )
