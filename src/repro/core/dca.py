"""The Disparity Compensation Algorithm (DCA).

This module implements the paper's primary contribution:

* :class:`CoreDCA` — Algorithm 1: iterate over decreasing learning rates; at
  every step draw a small random sample, evaluate the fairness objective for
  the current bonus vector, and move the bonus vector against it, projecting
  back onto the feasible box (non-negative, optionally capped) after every
  step.
* :class:`DCARefinement` — Algorithm 2: continue from Core DCA's output with
  an Adam-driven pass over fresh samples, average the iterates to damp the
  sampling noise, and round to the stakeholder granularity.
* :class:`DCA` — the user-facing facade that runs both phases and returns a
  :class:`~repro.core.result.DCAResult`; :meth:`DCA.fit_many` batches fits
  across seeds, selection fractions, and objectives.
* :class:`FullDCA` — the deterministic variant that evaluates the objective
  on the entire dataset at every step (the object of Theorem 4.1); it is much
  slower but useful as an accuracy reference and in tests.

The objective is pluggable (:mod:`repro.core.objectives`): the default is the
Definition 3 disparity at a known selection fraction ``k``, but the same
machinery optimizes the log-discounted disparity, disparate impact, false
positive rate gaps, or exposure gaps.

Array-plane engine
------------------

The optimization loop runs thousands of sampled steps, so the per-step cost
dominates the fit time.  The default ``engine="array"`` keeps the hot loop
entirely on NumPy arrays:

1. at ``fit`` time the base scores, the raw fairness-attribute matrix
   ``A_f``, and the objective's compiled population state (normalized
   matrix, group masks, labels — see
   :meth:`repro.core.objectives.FairnessObjective.compile`) are gathered
   **once**;
2. every step draws an ``int64`` index array from the
   :class:`~repro.core.sampling.SampleStream`, computes compensated scores
   as ``base[idx] + A_f[idx] @ B``, and evaluates the compiled objective on
   those rows — no per-step :class:`~repro.tabular.Table` materialization,
   no shadow index column, no :class:`~repro.core.bonus.BonusVector`
   boxing.

``engine="table"`` (:class:`~repro.core.config.DCAConfig`) preserves the
legacy reference path that slices a table per step; both engines consume the
RNG identically and produce bitwise identical results for the same seed,
which the equivalence tests pin.  Custom objectives that only implement the
table-path ``evaluate`` are handled transparently through the compiled
fallback wrapper.

Batched execution
-----------------

:meth:`DCA.fit_many` runs seed/k/objective grids (or explicit
:class:`FitSpec` lists) over one population through three interchangeable
backends selected by ``executor``:

* ``"serial"`` — one job after another in the calling thread;
* ``"thread"`` — a thread pool (the NumPy kernels release the GIL for part
  of each step, so this helps mildly);
* ``"process"`` — a process pool whose workers map the population out of
  ``multiprocessing.shared_memory`` (see :mod:`repro.core.parallel`): the
  base scores, attribute matrices, and each objective's compiled state are
  placed in a shared segment once, and each job ships only a tiny shard
  descriptor.  This is the backend that actually parallelizes the
  Python-level step loop across cores.

All three produce bitwise identical results for the same specs: every job
owns its own seeded generator, and the shared arrays are exactly the ones a
serial fit would compute.  A per-population
:class:`~repro.core.parallel.CompiledObjectiveCache` additionally lets jobs
(and repeated ``fit_many`` calls) that share a population and an objective
signature skip recompiling the objective, on every backend.
"""

from __future__ import annotations

import concurrent.futures
import copy
import os
import time
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from ..ranking import ScoreFunction
from ..tabular import Table
from .adam import Adam
from .bonus import BonusVector, compensate_scores
from .config import DCAConfig
from .objectives import CompiledObjective, DisparityObjective, FairnessObjective
from .parallel import (
    CompiledObjectiveCache,
    PlaneCache,
    PlaneJob,
    PlanePayload,
    ShardedFitPlane,
    SharedPopulationPlane,
    default_objective_cache,
    execute_process_jobs,
    matrix_key,
    validate_worker_count,
)
from .result import DCAResult, DCATrace
from .sampling import SampleStream, rarest_group_frequency, recommended_sample_size

__all__ = [
    "CoreDCA",
    "DCARefinement",
    "DCA",
    "FullDCA",
    "FitSpec",
    "BatchFitResult",
    "fit_bonus_points",
]

#: Executor names accepted by :meth:`DCA.fit_many`.
_EXECUTORS = ("serial", "thread", "process")


def _project(values: np.ndarray, config: DCAConfig) -> np.ndarray:
    """Project a bonus vector onto the feasible box [min_bonus, max_bonus]."""
    values = np.maximum(values, config.min_bonus)
    if config.max_bonus is not None:
        values = np.minimum(values, config.max_bonus)
    return values


def _signal_norm(signal: np.ndarray) -> float:
    """L2 norm of a small signal vector (same value as ``np.linalg.norm``)."""
    return float(np.sqrt(signal @ signal))


def _resolve_sample_size(
    config: DCAConfig, k: float, num_rows: int, rarest_frequency: Callable[[], float]
) -> int:
    """Per-step sample size for a population of ``num_rows`` rows.

    Single source of truth for the table-backed :class:`_BonusSearch` and
    the parent-side planner of the process backend — the two must agree
    exactly or the backends stop being bitwise identical.
    ``rarest_frequency`` is a thunk so callers only pay for the group scan
    when ``config.sample_size`` is unset.
    """
    if config.sample_size is not None:
        return int(min(config.sample_size, num_rows))
    return recommended_sample_size(
        k, rarest_frequency(), min_group_count=config.min_group_count, maximum=num_rows
    )


class _BonusSearch:
    """Shared state and helpers for the Core DCA and refinement phases.

    The search owns everything both engines need: the per-fit precomputed
    arrays (base scores, raw attribute matrix, the objective compiled against
    the population), the sample stream, and the RNG.  ``step_signal`` is the
    hot path — one sampled objective evaluation per call.
    """

    def __init__(
        self,
        table: Table,
        score_function: ScoreFunction,
        objective: FairnessObjective,
        k: float,
        config: DCAConfig,
        objective_cache: CompiledObjectiveCache | None = None,
    ) -> None:
        if not 0.0 < k <= 1.0:
            raise ValueError(f"selection fraction k must be in (0, 1], got {k}")
        config.validate()
        if table.num_rows == 0:
            raise ValueError("cannot fit bonus points on an empty table")
        self.table = table
        self.score_function = score_function
        self.objective = objective
        self.k = float(k)
        self.config = config
        self.attribute_names = tuple(objective.attribute_names)
        self.rng = config.rng()

        # Per-fit precomputation: base scores over the full table and, for
        # the array engine, the raw fairness-attribute matrix A_f plus the
        # objective compiled against this population (through the cache when
        # one is provided, so batched jobs share one compilation).
        self._base_scores = np.asarray(score_function.scores(table), dtype=float)
        if config.engine == "array":
            self._attribute_matrix = table.matrix(list(self.attribute_names))
            if objective_cache is not None:
                self._compiled = objective_cache.compile(objective, table)
            else:
                self._compiled = objective.compile(table)
        else:
            self._attribute_matrix = None
            self._compiled = None

        self.sample_size = _resolve_sample_size(
            config,
            self.k,
            table.num_rows,
            lambda: rarest_group_frequency(table, self.attribute_names),
        )
        self._stream = SampleStream(
            table,
            self.sample_size,
            rng=self.rng,
            stratify=self.attribute_names if config.stratified_sampling else None,
        )
        self._phase_indices: np.ndarray | None = None
        self._phase_cursor = 0

    @classmethod
    def from_arrays(
        cls,
        *,
        base_scores: np.ndarray,
        attribute_matrix: np.ndarray,
        compiled: CompiledObjective,
        num_rows: int,
        sample_size: int,
        attribute_names: Sequence[str],
        k: float,
        config: DCAConfig,
    ) -> "_BonusSearch":
        """Assemble a search from precomputed arrays — no table required.

        This is the shared-memory worker path of the process backend: the
        parent computed ``base_scores``, the raw attribute matrix, the
        compiled objective state, and the sample size once, and the worker
        maps them out of shared memory.  The search consumes the RNG exactly
        like the table-backed constructor, so the resulting fit is bitwise
        identical to a serial :meth:`DCA.fit` with the same seed.
        """
        if compiled is None:
            raise ValueError("from_arrays requires a compiled objective")
        if config.stratified_sampling:
            raise ValueError(
                "stratified sampling needs the population table for its group "
                "masks; table-less searches cannot stratify"
            )
        search = cls.__new__(cls)
        search.table = None
        search.score_function = None
        search.objective = None
        search.k = float(k)
        search.config = config
        search.attribute_names = tuple(attribute_names)
        search.rng = config.rng()
        search._base_scores = base_scores
        search._attribute_matrix = attribute_matrix
        search._compiled = compiled
        search.sample_size = int(sample_size)
        search._stream = SampleStream(int(num_rows), search.sample_size, rng=search.rng)
        search._phase_indices = None
        search._phase_cursor = 0
        return search

    # ------------------------------------------------------------------
    def initial_bonus(self) -> np.ndarray:
        """Random non-negative initialization (Algorithm 1's ``B`` init)."""
        scale = self.config.initial_bonus_scale
        values = self.rng.uniform(0.0, scale, size=len(self.attribute_names))
        return _project(values, self.config)

    def begin_phase(self, num_steps: int) -> None:
        """Pre-draw a phase's samples under ``rng_batching="per_phase"``.

        A no-op in the default ``"per_step"`` mode, so the historical
        seed-for-seed stream is untouched.  In ``"per_phase"`` mode the
        phase's ``num_steps`` samples come from one generator call
        (:meth:`~repro.core.sampling.SampleStream.draw_phase_indices`) and
        :meth:`step_signal` consumes them row by row.
        """
        if self.config.rng_batching != "per_phase":
            return
        self._phase_indices = self._stream.draw_phase_indices(num_steps)
        self._phase_cursor = 0

    def _next_indices(self) -> np.ndarray:
        """The next step's sample indices, honoring the RNG batching mode."""
        if self._phase_indices is None:
            return self._stream.draw_indices()
        indices = self._phase_indices[self._phase_cursor]
        self._phase_cursor += 1
        return indices

    def step_signal(self, bonus_values: np.ndarray) -> np.ndarray:
        """Draw the next sample and evaluate the objective under ``bonus_values``."""
        indices = self._next_indices()
        base = self._base_scores[indices]
        if self._compiled is not None:
            scores = compensate_scores(self._attribute_matrix[indices], base, bonus_values)
            return np.asarray(self._compiled.evaluate(indices, scores, self.k), dtype=float)
        if indices.shape[0] == self.table.num_rows:
            sample = self.table  # sample covers the table: no per-step copy
        else:
            sample = self.table.take(indices)
        bonus = BonusVector(attribute_names=self.attribute_names, values=bonus_values)
        scores = bonus.apply(sample, base)
        return self.objective.evaluate(sample, scores, self.k).vector

    def objective_on_full(self, bonus_values: np.ndarray) -> np.ndarray:
        """Evaluate the objective on the entire table (Full DCA / reporting)."""
        if self._compiled is not None:
            scores = compensate_scores(self._attribute_matrix, self._base_scores, bonus_values)
            return np.asarray(self._compiled.evaluate(None, scores, self.k), dtype=float)
        bonus = BonusVector(attribute_names=self.attribute_names, values=bonus_values)
        scores = bonus.apply(self.table, self._base_scores)
        return self.objective.evaluate(self.table, scores, self.k).vector


class _ShardedBonusSearch:
    """A :class:`_BonusSearch` whose step signals come from a row-sharded plane.

    The parent-side search keeps everything sequential a fit owns — the
    seeded RNG, the sample stream, the phase-batching cursor — so the RNG is
    consumed exactly as a serial fit would consume it.  Only the per-step
    objective evaluation is delegated: the drawn sample and current bonus
    vector go to the :class:`~repro.core.parallel.ShardedFitPlane`, whose
    map-reduce protocol returns the bitwise-identical signal.
    """

    def __init__(self, search: _BonusSearch, plane: ShardedFitPlane) -> None:
        self._search = search
        self._plane = plane
        self.k = search.k
        self.config = search.config
        self.attribute_names = search.attribute_names
        self.sample_size = search.sample_size
        self.rng = search.rng

    def initial_bonus(self) -> np.ndarray:
        return self._search.initial_bonus()

    def begin_phase(self, num_steps: int) -> None:
        self._search.begin_phase(num_steps)

    def step_signal(self, bonus_values: np.ndarray) -> np.ndarray:
        return self._plane.step(bonus_values, self._search._next_indices())


def _finish_fit(
    search: _BonusSearch, attribute_names: Sequence[str], config: DCAConfig, start: float
) -> DCAResult:
    """Run the core and refinement phases on a prepared search and package the result.

    The shared tail of :meth:`DCA.fit` and the process-backend workers: both
    phases reuse the same search (sample stream, cached arrays), and the
    final bonus is clipped and rounded exactly as the facade documents.
    ``start`` is the fit's ``perf_counter`` origin for ``elapsed_seconds``.
    """
    attribute_names = tuple(attribute_names)
    core = CoreDCA(None, None, None, search.k, config, search=search)
    core_values, traces = core.run()
    core_bonus = BonusVector(attribute_names=attribute_names, values=core_values)

    if config.refinement_iterations > 0:
        refinement = DCARefinement(None, None, None, search.k, config, search=search)
        raw_values, refine_trace = refinement.run(core_values)
        traces = traces + [refine_trace]
    else:
        raw_values = core_values

    raw_bonus = BonusVector(attribute_names=attribute_names, values=raw_values)
    final = raw_bonus.clipped(config.min_bonus, config.max_bonus)
    if config.granularity > 0:
        final = final.rounded(config.granularity)
        final = final.clipped(config.min_bonus, config.max_bonus)
    elapsed = time.perf_counter() - start
    return DCAResult(
        bonus=final,
        raw_bonus=raw_bonus,
        core_bonus=core_bonus,
        traces=tuple(traces),
        sample_size=search.sample_size,
        elapsed_seconds=elapsed,
    )


class CoreDCA:
    """Algorithm 1: fixed-learning-rate sampled descent on the bonus vector."""

    def __init__(
        self,
        table: Table,
        score_function: ScoreFunction,
        objective: FairnessObjective,
        k: float,
        config: DCAConfig | None = None,
        search: _BonusSearch | None = None,
    ) -> None:
        self.config = config or DCAConfig()
        self._search = search or _BonusSearch(table, score_function, objective, k, self.config)

    @property
    def sample_size(self) -> int:
        return self._search.sample_size

    def run(self, initial: np.ndarray | None = None) -> tuple[np.ndarray, list[DCATrace]]:
        """Run the core passes and return (bonus values, per-phase traces)."""
        search = self._search
        config = self.config
        bonus = search.initial_bonus() if initial is None else _project(
            np.asarray(initial, dtype=float), config
        )
        traces: list[DCATrace] = []
        for learning_rate in config.learning_rates:
            search.begin_phase(config.iterations)
            history = np.zeros((config.iterations, len(search.attribute_names)))
            norms = np.zeros(config.iterations)
            for step in range(config.iterations):
                signal = search.step_signal(bonus)
                bonus = _project(bonus - learning_rate * signal, config)
                history[step] = bonus
                norms[step] = _signal_norm(signal)
            traces.append(
                DCATrace(phase=f"core lr={learning_rate:g}", bonus_history=history, objective_norms=norms)
            )
        return bonus, traces


class DCARefinement:
    """Algorithm 2: Adam-driven refinement plus iterate averaging and rounding."""

    def __init__(
        self,
        table: Table,
        score_function: ScoreFunction,
        objective: FairnessObjective,
        k: float,
        config: DCAConfig | None = None,
        search: _BonusSearch | None = None,
    ) -> None:
        self.config = config or DCAConfig()
        self._search = search or _BonusSearch(table, score_function, objective, k, self.config)

    def run(self, initial: np.ndarray) -> tuple[np.ndarray, DCATrace]:
        """Refine ``initial`` and return (raw averaged bonus values, trace)."""
        search = self._search
        config = self.config
        bonus = _project(np.asarray(initial, dtype=float), config)
        iterations = config.refinement_iterations
        if iterations == 0:
            empty = DCATrace(
                phase="refinement (skipped)",
                bonus_history=np.zeros((0, len(search.attribute_names))),
                objective_norms=np.zeros(0),
            )
            return bonus, empty
        adam = Adam(learning_rate=config.refinement_learning_rate)
        search.begin_phase(iterations)
        history = np.zeros((iterations, len(search.attribute_names)))
        norms = np.zeros(iterations)
        for step in range(iterations):
            signal = search.step_signal(bonus)
            bonus = _project(adam.step(bonus, signal), config)
            history[step] = bonus
            norms[step] = _signal_norm(signal)
        window = min(config.averaging_window, iterations)
        averaged = history[-window:].mean(axis=0)
        averaged = _project(averaged, config)
        trace = DCATrace(phase="refinement", bonus_history=history, objective_norms=norms)
        return averaged, trace


@dataclass(frozen=True)
class FitSpec:
    """One unit of work for :meth:`DCA.fit_many`.

    Every field defaults to "inherit from the DCA instance": an empty spec
    reproduces a plain :meth:`DCA.fit`.

    Attributes
    ----------
    k:
        Selection fraction for this fit (``None`` → the instance's ``k``).
    seed:
        RNG seed override (``None`` → the config's seed).
    objective:
        Objective override; its attribute names define the fitted bonus
        vector, so a spec may fit over a different attribute subset.
    config:
        Full config override (``None`` → the instance's config).  A ``seed``
        given alongside still wins over the config's seed.
    label:
        Free-form tag carried through to the result (useful for reporting).
    """

    k: float | None = None
    seed: int | None = None
    objective: FairnessObjective | None = None
    config: DCAConfig | None = None
    label: str | None = None


@dataclass(frozen=True)
class BatchFitResult:
    """One fitted entry of a :meth:`DCA.fit_many` batch.

    ``k`` and ``seed`` record the values actually used, after spec defaults
    were resolved against the DCA instance.
    """

    spec: FitSpec
    k: float
    seed: int | None
    result: DCAResult

    @property
    def bonus(self) -> BonusVector:
        return self.result.bonus

    @property
    def label(self) -> str | None:
        return self.spec.label


class DCA:
    """The user-facing Disparity Compensation Algorithm.

    Examples
    --------
    >>> from repro.datasets import load_school_cohorts, school_admission_rubric
    >>> from repro.datasets import SCHOOL_FAIRNESS_ATTRIBUTES
    >>> train, test = load_school_cohorts(num_students=5000)
    >>> dca = DCA(SCHOOL_FAIRNESS_ATTRIBUTES, school_admission_rubric(), k=0.05)
    >>> result = dca.fit(train.table)
    >>> sorted(result.as_dict()) == sorted(SCHOOL_FAIRNESS_ATTRIBUTES)
    True

    Parameters
    ----------
    fairness_attributes:
        Columns to compensate.
    score_function:
        The (uncompensated) ranking function.
    k:
        Selection fraction the bonuses are optimized for.  When using a
        log-discounted objective this is the cap of the evaluated range.
    objective:
        Fairness signal to minimize; defaults to the Definition 3 disparity.
    config:
        Hyper-parameters; defaults follow Section V-B.
    objective_cache:
        Optional :class:`~repro.core.parallel.CompiledObjectiveCache`
        through which :meth:`fit` compiles its objective, so repeated fits
        against the same population reuse one compilation.  :meth:`fit_many`
        always caches (using the process-wide default cache when this is
        unset).
    """

    def __init__(
        self,
        fairness_attributes: Sequence[str],
        score_function: ScoreFunction,
        k: float,
        objective: FairnessObjective | None = None,
        config: DCAConfig | None = None,
        objective_cache: CompiledObjectiveCache | None = None,
    ) -> None:
        self.fairness_attributes = tuple(fairness_attributes)
        if not self.fairness_attributes:
            raise ValueError("at least one fairness attribute is required")
        if not 0.0 < float(k) <= 1.0:
            raise ValueError(f"selection fraction k must be in (0, 1], got {k}")
        self.score_function = score_function
        self.k = float(k)
        self.config = config or DCAConfig()
        self.config.validate()
        if objective is not None and tuple(objective.attribute_names) != self.fairness_attributes:
            raise ValueError(
                "the objective's attributes must match the fairness attributes: "
                f"{objective.attribute_names} vs {self.fairness_attributes}"
            )
        self.objective = objective or DisparityObjective(self.fairness_attributes)
        self.objective_cache = objective_cache

    def fit(
        self,
        table: Table,
        *,
        row_workers: int | None = None,
        shard_rows: int | None = None,
        plane_cache: PlaneCache | None = None,
    ) -> DCAResult:
        """Fit bonus points on ``table`` (the training cohort / distribution sample).

        ``row_workers`` (default: the config's ``row_workers``) row-shards
        THIS fit's sampled objective evaluations across that many
        shared-memory worker processes
        (:class:`~repro.core.parallel.ShardedFitPlane`): the population
        arrays live in one segment, each step broadcasts only the bonus
        vector and the drawn sample, and the parent reduces the workers'
        partial accumulators — **bitwise identical** to the in-process fit
        for any worker count.  ``shard_rows`` sets the contiguous rows per
        shard (default: an even split); it is a granularity knob for the
        sharded plane only, so it has no effect unless ``row_workers`` (here
        or in the config) exceeds 1.  Zero/negative values are rejected
        eagerly.  Fits whose compiled objective cannot shard (``engine=
        "table"``, table-fallback compilations, non-exportable state) fall
        back to in-process execution — same results, no parallelism.

        ``plane_cache`` (a :class:`~repro.core.parallel.PlaneCache`) makes
        plane construction shareable: instead of building and tearing down
        its own plane + worker pool, the fit leases one from the cache, and
        later fits with the same signature on the same population reuse it
        — the pool stays resident across jobs.  The cache owns the leased
        planes; close it when the batch is done.  :meth:`fit_many` passes
        one automatically to every row-sharded job.
        """
        start = time.perf_counter()
        row_workers = validate_worker_count(
            "row_workers", row_workers if row_workers is not None else self.config.row_workers
        )
        shard_rows = validate_worker_count(
            "shard_rows", shard_rows if shard_rows is not None else self.config.shard_rows
        )
        self.objective.fit(table)
        # The search owns the sample stream and cached arrays; both phases
        # (and the result assembly in _finish_fit) share it.
        search = _BonusSearch(
            table,
            self.score_function,
            self.objective,
            self.k,
            self.config,
            objective_cache=self.objective_cache,
        )
        if row_workers is not None and row_workers > 1:
            plane, owned = self._build_sharded_plane(
                search, row_workers, shard_rows, plane_cache
            )
            if plane is not None:
                try:
                    sharded = _ShardedBonusSearch(search, plane)
                    return _finish_fit(sharded, self.fairness_attributes, self.config, start)
                finally:
                    if owned:
                        plane.close()
        return _finish_fit(search, self.fairness_attributes, self.config, start)

    def _build_sharded_plane(
        self,
        search: _BonusSearch,
        row_workers: int,
        shard_rows: int | None,
        plane_cache: PlaneCache | None = None,
    ) -> tuple[ShardedFitPlane | None, bool]:
        """A sharded plane for ``search``, or ``None`` when it cannot shard.

        Returns ``(plane, owned)``: ``owned`` is True when the caller must
        close the plane (no cache, or the objective has no signature to key
        a cache entry on), False when ``plane_cache`` keeps it alive for
        reuse by later same-signature fits.
        """
        compiled = search._compiled
        if compiled is None:  # engine="table": no array plane to shard
            return None, True
        if compiled.shard_fields() is None or compiled.export_state() is None:
            return None, True

        def build() -> ShardedFitPlane:
            return ShardedFitPlane(
                base_scores=search._base_scores,
                attribute_matrix=search._attribute_matrix,
                compiled=compiled,
                sample_size=search.sample_size,
                k=search.k,
                row_workers=row_workers,
                shard_rows=shard_rows,
                step_dispatch=search.config.step_dispatch,
            )

        signature = search.objective.signature()
        if plane_cache is None or signature is None:
            return build(), True
        # Everything the plane bakes in besides the population and scorer:
        # equal keys on the same table get bitwise-identical planes.
        key = (
            signature,
            search.k,
            search.sample_size,
            row_workers,
            shard_rows,
            search.config.step_dispatch,
        )
        return plane_cache.lease(search.table, self.score_function, key, build), False

    def fit_many(
        self,
        table: Table,
        *,
        ks: Sequence[float] | None = None,
        seeds: Sequence[int] | None = None,
        objectives: Sequence[FairnessObjective] | None = None,
        specs: Sequence[FitSpec] | None = None,
        max_workers: int | None = None,
        executor: str | None = None,
        row_workers: int | None = None,
        plane_cache: PlaneCache | None = None,
    ) -> list[BatchFitResult]:
        """Fit a batch of bonus vectors on ``table`` in one call.

        Either pass explicit ``specs`` or any combination of ``ks``,
        ``seeds``, and ``objectives`` — the grid forms their Cartesian
        product, each axis defaulting to the instance's own setting.  Results
        come back in job order.  Each job gets its own deep-copied objective
        and seeded RNG, so a batched fit is reproducible and **bitwise
        identical to the corresponding sequence of** :meth:`fit` **calls on
        every backend**.

        ``executor`` picks the backend:

        * ``"serial"`` — jobs run one after another in the calling thread;
        * ``"thread"`` — a thread pool; the NumPy kernels release the GIL
          for part of each step, so speedups are modest;
        * ``"process"`` — a process pool over a shared-memory population
          plane (:mod:`repro.core.parallel`): base scores, attribute
          matrices, and compiled objective state are placed in
          ``multiprocessing.shared_memory`` once, and workers receive only
          tiny shard descriptors — the cohort is never pickled per job.
          Jobs that cannot run on the plane (``engine="table"`` configs, or
          custom objectives without a
          :meth:`~repro.core.objectives.FairnessObjective.signature`) fall
          back to in-parent serial execution, preserving result order and
          values.
        * ``None`` (default) — ``"thread"`` when ``max_workers`` asks for
          parallelism, else ``"serial"`` (the pre-``executor`` behaviour).

        ``max_workers`` sizes the pool; for the parallel backends it
        defaults to ``min(len(jobs), os.cpu_count())``.  Zero or negative
        ``max_workers``/``row_workers`` are rejected eagerly, before any
        pool or shared-memory segment is created.  Compiled objectives
        are cached per population (see
        :func:`repro.core.parallel.default_objective_cache`), so sweeps that
        share a cohort and an objective signature — within one call or
        across calls — compile it once.

        ``row_workers`` applies row sharding (see :meth:`fit`) to every job
        in the batch; job sharding and row sharding compose.  With the
        serial executor each job simply runs its own sharded plane, one
        after another.  Under ``executor="thread"`` row-sharded jobs run
        after the thread pool has drained, in the calling thread (forking
        a worker pool while sibling threads hold locks would deadlock the
        children); under ``executor="process"`` they run in the parent
        rather than nesting pools inside pool workers.  Results are
        identical on every path.  Row-sharded jobs share planes through a
        :class:`~repro.core.parallel.PlaneCache`: same-signature jobs reuse
        one plane + resident worker pool instead of each building (and
        tearing down) its own.  Pass ``plane_cache`` to extend that reuse
        across ``fit_many`` calls (the caller then owns the cache and must
        close it); by default an internal cache lives for exactly this
        call.

        Examples
        --------
        One fit per selection fraction (the Figure 4a sweep)::

            results = dca.fit_many(train, ks=(0.05, 0.1, 0.2))
            bonuses = {r.k: r.bonus for r in results}

        Seed sensitivity of a single setting, across processes::

            spread = dca.fit_many(train, seeds=range(10), executor="process")
        """
        if specs is not None:
            if ks is not None or seeds is not None or objectives is not None:
                raise ValueError("pass either specs or a ks/seeds/objectives grid, not both")
            jobs = [spec if isinstance(spec, FitSpec) else FitSpec(**spec) for spec in specs]
        else:
            jobs = [
                FitSpec(k=k, seed=seed, objective=objective)
                for k in (ks if ks is not None else (None,))
                for seed in (seeds if seeds is not None else (None,))
                for objective in (objectives if objectives is not None else (None,))
            ]
        if not jobs:
            return []

        max_workers = validate_worker_count("max_workers", max_workers)
        row_workers = validate_worker_count("row_workers", row_workers)
        if executor is None:
            executor = "thread" if (max_workers is not None and max_workers > 1) else "serial"
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        if max_workers is None:
            workers = min(len(jobs), os.cpu_count() or 1)
        else:
            workers = int(max_workers)
        # Explicit None check: an empty cache is falsy (it has __len__).
        cache = (
            self.objective_cache
            if self.objective_cache is not None
            else default_objective_cache()
        )
        # Same pattern for the plane cache: when the caller passed one, they
        # own its lifetime (reuse across fit_many calls); otherwise this
        # call owns an internal cache and closes it — and with it every
        # leased plane + worker pool — on the way out.
        owns_planes = plane_cache is None
        planes = PlaneCache() if plane_cache is None else plane_cache

        try:
            if executor == "process":
                return self._fit_many_process(
                    table, jobs, cache, workers, row_workers, planes
                )

            def run_one(spec: FitSpec) -> BatchFitResult:
                return self._run_single_spec(table, spec, cache, row_workers, planes)

            if executor == "thread" and workers > 1 and len(jobs) > 1:
                # Row-sharded jobs fork a process pool of their own; forking
                # while sibling pool threads run (and hold locks) deadlocks the
                # children, so those jobs wait for the thread pool to drain and
                # then run in the calling thread — same results, same ordering.
                pooled: list[int] = []
                deferred: list[int] = []
                for index, spec in enumerate(jobs):
                    config, _, _ = self._resolve_spec(spec, row_workers)
                    (deferred if (config.row_workers or 0) > 1 else pooled).append(index)
                results: dict[int, BatchFitResult] = {}
                if pooled:
                    with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
                        for index, result in zip(
                            pooled, pool.map(run_one, [jobs[index] for index in pooled])
                        ):
                            results[index] = result
                for index in deferred:
                    results[index] = run_one(jobs[index])
                return [results[index] for index in range(len(jobs))]
            return [run_one(job) for job in jobs]
        finally:
            if owns_planes:
                planes.close()

    # ------------------------------------------------------------------
    # fit_many internals
    # ------------------------------------------------------------------
    def _resolve_spec(
        self, spec: FitSpec, row_workers: int | None = None
    ) -> tuple[DCAConfig, FairnessObjective, float]:
        """Resolve a spec's config/objective/k against this instance's defaults.

        ``row_workers`` is the batch-level override: it lands in the
        resolved config only, never in the caller's spec, so
        :attr:`BatchFitResult.spec` always echoes exactly what was passed
        in.
        """
        config = spec.config if spec.config is not None else self.config
        if spec.seed is not None:
            config = replace(config, seed=spec.seed)
        if row_workers is not None:
            config = replace(config, row_workers=row_workers)
        objective = spec.objective if spec.objective is not None else self.objective
        k = self.k if spec.k is None else float(spec.k)
        return config, objective, k

    def _run_single_spec(
        self,
        table: Table,
        spec: FitSpec,
        cache: CompiledObjectiveCache,
        row_workers: int | None = None,
        plane_cache: PlaneCache | None = None,
    ) -> BatchFitResult:
        """Run one batch job in this process (the serial/thread backends)."""
        config, objective_template, k = self._resolve_spec(spec, row_workers)
        # Fresh objective per job: fit() mutates normalizer state, and
        # concurrent jobs must not share it.
        objective = copy.deepcopy(objective_template)
        job_dca = DCA(
            objective.attribute_names,
            self.score_function,
            k,
            objective=objective,
            config=config,
            objective_cache=cache,
        )
        return BatchFitResult(
            spec=spec,
            k=k,
            seed=config.seed,
            result=job_dca.fit(table, plane_cache=plane_cache),
        )

    def _fit_many_process(
        self,
        table: Table,
        jobs: Sequence[FitSpec],
        cache: CompiledObjectiveCache,
        max_workers: int,
        row_workers: int | None = None,
        plane_cache: PlaneCache | None = None,
    ) -> list[BatchFitResult]:
        """The shared-memory process backend of :meth:`fit_many`.

        The parent assembles the population plane — base scores, one raw
        attribute matrix per distinct attribute set, one compiled state per
        distinct objective signature — inside a single shared-memory
        segment, then dispatches :class:`~repro.core.parallel.PlaneJob`
        shard descriptors to the pool.  Jobs the plane cannot serve (table
        engine, signature-less objectives) run in the parent instead.
        """
        num_rows = table.num_rows
        arrays: dict[str, np.ndarray] = {}
        objective_states: dict[int, tuple[type, dict[str, str], dict]] = {}
        signature_keys: dict[tuple, int] = {}
        rarest: dict[tuple[str, ...], float] = {}
        plane_jobs: list[PlaneJob] = []
        parent_jobs: list[tuple[int, FitSpec]] = []
        job_meta: dict[int, tuple[FitSpec, float, int | None]] = {}

        for index, spec in enumerate(jobs):
            config, objective_template, k = self._resolve_spec(spec, row_workers)
            signature = objective_template.signature()
            # Jobs the plane cannot serve run in the parent: the table
            # engine has no array state to share, signature-less objectives
            # cannot be cached or exported, stratified sampling needs the
            # table's group masks, and row-sharded jobs own a worker pool of
            # their own (pools must not nest inside pool workers).
            if (
                config.engine != "array"
                or signature is None
                or config.stratified_sampling
                or (config.row_workers or 0) > 1
            ):
                parent_jobs.append((index, spec))
                continue
            if signature not in signature_keys:
                objective = copy.deepcopy(objective_template)
                objective.fit(table)
                compiled = cache.compile(objective, table)
                exported = compiled.export_state()
                if exported is None:
                    signature_keys[signature] = -1
                else:
                    state_arrays, metadata = exported
                    key = len(objective_states)
                    array_keys: dict[str, str] = {}
                    for name, value in state_arrays.items():
                        plane_key = f"objective:{key}:{name}"
                        arrays[plane_key] = value
                        array_keys[name] = plane_key
                    objective_states[key] = (type(compiled), array_keys, metadata)
                    signature_keys[signature] = key
            key = signature_keys[signature]
            if key < 0:
                parent_jobs.append((index, spec))
                continue
            attributes = tuple(objective_template.attribute_names)
            attr_key = matrix_key(attributes)
            if attr_key not in arrays:
                arrays[attr_key] = table.matrix(list(attributes))
            def rarest_for(attrs: tuple[str, ...] = attributes) -> float:
                # Not setdefault: its default argument evaluates eagerly,
                # which would re-run the full group scan per job.
                if attrs not in rarest:
                    rarest[attrs] = rarest_group_frequency(table, attrs)
                return rarest[attrs]

            sample_size = _resolve_sample_size(config, k, num_rows, rarest_for)
            plane_jobs.append(PlaneJob(index, attributes, k, config, sample_size, key))
            job_meta[index] = (spec, k, config.seed)

        results: dict[int, BatchFitResult] = {}
        if plane_jobs:
            arrays["base"] = np.asarray(self.score_function.scores(table), dtype=float)
            plane = SharedPopulationPlane(arrays)
            try:
                # Pool workers inherit the parent's resource tracker (under
                # fork and spawn alike), so the parent's registration is the
                # one canonical one and workers must not unregister it.
                payload = PlanePayload(
                    plane.name, num_rows, plane.refs, objective_states, untrack_on_attach=False
                )
                for index, result in execute_process_jobs(payload, plane_jobs, max_workers):
                    spec, k, seed = job_meta[index]
                    results[index] = BatchFitResult(spec=spec, k=k, seed=seed, result=result)
            finally:
                plane.close()
        for index, spec in parent_jobs:
            results[index] = self._run_single_spec(
                table, spec, cache, row_workers, plane_cache
            )
        return [results[index] for index in range(len(jobs))]

    def compensated_scores(self, table: Table, bonus: BonusVector) -> np.ndarray:
        """Convenience: apply a fitted bonus vector to new data."""
        return bonus.apply(table, self.score_function.scores(table))


class FullDCA:
    """The no-sampling variant: every step evaluates the full dataset.

    Theorem 4.1 is stated for this variant.  It is deterministic given the
    initialization and is used in tests to check the descent property and as
    an accuracy reference in the ablation benchmarks.  Under the array engine
    the per-step full-population evaluation also runs on the precomputed
    matrices, which removes the per-step normalization pass the table path
    performs.
    """

    def __init__(
        self,
        fairness_attributes: Sequence[str],
        score_function: ScoreFunction,
        k: float,
        objective: FairnessObjective | None = None,
        config: DCAConfig | None = None,
    ) -> None:
        self.fairness_attributes = tuple(fairness_attributes)
        if not self.fairness_attributes:
            raise ValueError("at least one fairness attribute is required")
        if not 0.0 < float(k) <= 1.0:
            raise ValueError(f"selection fraction k must be in (0, 1], got {k}")
        self.score_function = score_function
        self.k = float(k)
        base = config or DCAConfig()
        # Full DCA ignores the sampling machinery entirely.
        self.config = base
        self.objective = objective or DisparityObjective(self.fairness_attributes)

    def fit(self, table: Table) -> DCAResult:
        start = time.perf_counter()
        self.objective.fit(table)
        config = self.config
        config.validate()
        search = _BonusSearch(table, self.score_function, self.objective, self.k, config)
        bonus = search.initial_bonus()
        traces: list[DCATrace] = []
        for learning_rate in config.learning_rates:
            history = np.zeros((config.iterations, len(self.fairness_attributes)))
            norms = np.zeros(config.iterations)
            for step in range(config.iterations):
                signal = search.objective_on_full(bonus)
                bonus = _project(bonus - learning_rate * signal, config)
                history[step] = bonus
                norms[step] = _signal_norm(signal)
            traces.append(
                DCATrace(
                    phase=f"full lr={learning_rate:g}", bonus_history=history, objective_norms=norms
                )
            )
        raw = BonusVector(attribute_names=self.fairness_attributes, values=bonus)
        final = raw.clipped(config.min_bonus, config.max_bonus)
        if config.granularity > 0:
            final = final.rounded(config.granularity).clipped(config.min_bonus, config.max_bonus)
        elapsed = time.perf_counter() - start
        return DCAResult(
            bonus=final,
            raw_bonus=raw,
            core_bonus=raw,
            traces=tuple(traces),
            sample_size=table.num_rows,
            elapsed_seconds=elapsed,
        )


def fit_bonus_points(
    table: Table,
    fairness_attributes: Sequence[str],
    score_function: ScoreFunction,
    k: float,
    objective: FairnessObjective | None = None,
    config: DCAConfig | None = None,
) -> DCAResult:
    """One-call convenience wrapper around :class:`DCA`."""
    dca = DCA(fairness_attributes, score_function, k, objective=objective, config=config)
    return dca.fit(table)
