"""Trading fairness against utility by scaling the bonus vector.

Section VI-A2 of the paper observes that applying a *fraction* of the
recommended bonus points yields roughly that fraction of the disparity
reduction, and that "the correct proportion of bonus points to apply can be
selected through a binary search" to hit a desired utility (nDCG) or fairness
threshold.  This module implements both the sweep (Figures 2, 3, and 7) and
the binary searches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from ..metrics.ndcg import ndcg_at_k
from ..ranking import ScoreFunction
from ..tabular import Table
from .bonus import BonusVector
from .objectives import FairnessObjective

__all__ = [
    "TradeoffPoint",
    "proportion_sweep",
    "proportion_for_utility",
    "proportion_for_disparity",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the utility/fairness trade-off curve."""

    proportion: float
    bonus: BonusVector
    disparity: dict[str, float]
    disparity_norm: float
    ndcg: float


def _evaluate_proportion(
    proportion: float,
    table: Table,
    score_function: ScoreFunction,
    bonus: BonusVector,
    objective: FairnessObjective,
    k: float,
    granularity: float,
) -> TradeoffPoint:
    scaled = bonus.scaled(proportion)
    if granularity > 0:
        scaled = scaled.rounded(granularity)
    base_scores = score_function.scores(table)
    compensated = scaled.apply(table, base_scores)
    result = objective.evaluate(table, compensated, k)
    utility = ndcg_at_k(base_scores, compensated, k)
    return TradeoffPoint(
        proportion=float(proportion),
        bonus=scaled,
        disparity=result.as_dict(include_norm=False),
        disparity_norm=result.norm,
        ndcg=utility,
    )


def proportion_sweep(
    table: Table,
    score_function: ScoreFunction,
    bonus: BonusVector,
    objective: FairnessObjective,
    k: float,
    proportions: Sequence[float] | None = None,
    granularity: float = 0.5,
) -> list[TradeoffPoint]:
    """Evaluate disparity and nDCG for a grid of bonus proportions.

    This regenerates the data behind Figures 2 and 3: the disparity norm
    decreases (near linearly, with steps caused by the rounding granularity)
    while nDCG decreases slightly as the proportion grows from 0 to 1.
    """
    objective.fit(table)
    if proportions is None:
        proportions = [round(0.1 * i, 10) for i in range(0, 11)]
    return [
        _evaluate_proportion(p, table, score_function, bonus, objective, k, granularity)
        for p in proportions
    ]


def _binary_search(
    predicate,
    low: float = 0.0,
    high: float = 1.0,
    tolerance: float = 1e-3,
    max_iterations: int = 40,
) -> float:
    """Largest value in [low, high] for which ``predicate`` holds (assumes monotonicity)."""
    if predicate(high):
        return high
    if not predicate(low):
        return low
    for _ in range(max_iterations):
        middle = (low + high) / 2.0
        if predicate(middle):
            low = middle
        else:
            high = middle
        if high - low < tolerance:
            break
    return low


def proportion_for_utility(
    table: Table,
    score_function: ScoreFunction,
    bonus: BonusVector,
    objective: FairnessObjective,
    k: float,
    min_ndcg: float,
    granularity: float = 0.5,
) -> TradeoffPoint:
    """The largest bonus proportion whose nDCG@k stays at or above ``min_ndcg``."""
    if not 0.0 < min_ndcg <= 1.0:
        raise ValueError(f"min_ndcg must be in (0, 1], got {min_ndcg}")
    objective.fit(table)

    def acceptable(proportion: float) -> bool:
        point = _evaluate_proportion(
            proportion, table, score_function, bonus, objective, k, granularity
        )
        return point.ndcg >= min_ndcg

    best = _binary_search(acceptable)
    return _evaluate_proportion(best, table, score_function, bonus, objective, k, granularity)


def proportion_for_disparity(
    table: Table,
    score_function: ScoreFunction,
    bonus: BonusVector,
    objective: FairnessObjective,
    k: float,
    max_disparity_norm: float,
    granularity: float = 0.5,
) -> TradeoffPoint:
    """The smallest bonus proportion whose disparity norm is at most ``max_disparity_norm``.

    Returns the full-proportion point if even the complete bonus vector cannot
    reach the requested norm.
    """
    if max_disparity_norm < 0:
        raise ValueError(f"max_disparity_norm must be non-negative, got {max_disparity_norm}")
    objective.fit(table)

    def too_large(proportion: float) -> bool:
        point = _evaluate_proportion(
            proportion, table, score_function, bonus, objective, k, granularity
        )
        return point.disparity_norm > max_disparity_norm

    # Find the largest proportion that is still *too large*, then step above it.
    if not too_large(0.0):
        return _evaluate_proportion(0.0, table, score_function, bonus, objective, k, granularity)
    if too_large(1.0):
        return _evaluate_proportion(1.0, table, score_function, bonus, objective, k, granularity)
    boundary = _binary_search(too_large)
    chosen = min(1.0, boundary + 1e-3)
    return _evaluate_proportion(chosen, table, score_function, bonus, objective, k, granularity)
