"""Minimal SARIF 2.1.0 rendering of repro-lint findings.

SARIF is the interchange format code-scanning UIs (GitHub's included)
ingest; ``python -m repro.analysis --format=sarif`` emits one run per
invocation.  Only the fields those consumers actually read are produced:
the tool driver with its rule metadata, and one ``result`` per finding with
a physical location.  Stdlib-only, like the rest of the lint half.
"""

from __future__ import annotations

import json
from typing import Sequence

from .lint import Finding, Rule

__all__ = ["to_sarif", "sarif_text"]

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(findings: Sequence[Finding], rules: Sequence[Rule]) -> dict:
    """A SARIF 2.1.0 log dict for one lint run."""
    reported = {finding.rule for finding in findings}
    driver_rules = [
        {
            "id": rule.id,
            "name": rule.__class__.__name__,
            "shortDescription": {"text": rule.title},
        }
        for rule in rules
    ]
    # Parse failures surface under a synthetic rule id.
    for extra in sorted(reported - {rule.id for rule in rules}):
        driver_rules.append(
            {"id": extra, "name": extra, "shortDescription": {"text": extra}}
        )
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {"startLine": finding.line},
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/contracts.md",
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }


def sarif_text(findings: Sequence[Finding], rules: Sequence[Rule]) -> str:
    """The SARIF log serialized for stdout / artifact upload."""
    return json.dumps(to_sarif(findings, rules), indent=2, sort_keys=True)
