"""``python -m repro.analysis`` — the repro-lint command line.

Exit status is 0 when the audited tree is clean and 1 when any finding
survives the disable-comment filter, so CI can gate on it directly::

    PYTHONPATH=src python -m repro.analysis src/repro examples benchmarks
    PYTHONPATH=src python -m repro.analysis src/repro --format=github
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .baseline import filter_baseline, load_baseline, write_baseline
from .lint import run_lint
from .rules import DEFAULT_RULES, rules_by_id
from .sarif import sarif_text


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based contract auditor for the repro codebase: determinism "
            "(R1), shared-memory lifecycle (R2), compiled-objective "
            "map-reduce purity (R3), worker-boundary pickling (R4), "
            "interprocedural RNG lineage (R5), shard disjointness (R6)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to audit (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github", "sarif"),
        default="text",
        help=(
            "finding output style: plain text, GitHub Actions annotations, "
            "or a SARIF 2.1.0 log"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in FILE (see --write-baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the surviving findings to FILE and exit 0",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATH",
        help="path prefix to skip (repeatable), e.g. tests/data/lint_fixtures",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all), e.g. R1,R3",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.id}  {rule.title}")
        return 0

    if args.rules is None:
        rules = DEFAULT_RULES
    else:
        try:
            rules = rules_by_id(
                part.strip() for part in args.rules.split(",") if part.strip()
            )
        except KeyError as error:
            print(f"repro-lint: {error.args[0]}", file=sys.stderr)
            return 2

    findings = run_lint(args.paths, rules=rules, exclude=args.exclude)
    if args.baseline is not None:
        try:
            findings = filter_baseline(findings, load_baseline(args.baseline))
        except (OSError, ValueError, KeyError) as error:
            print(f"repro-lint: cannot read baseline: {error}", file=sys.stderr)
            return 2
    if args.write_baseline is not None:
        write_baseline(findings, args.write_baseline)
        print(
            f"repro-lint: baseline of {len(findings)} finding(s) written to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    if args.format == "sarif":
        print(sarif_text(findings, rules))
        return 1 if findings else 0
    for finding in findings:
        print(finding.format(args.format))
    if findings:
        print(
            f"repro-lint: {len(findings)} finding(s) across "
            f"{len({finding.path for finding in findings})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
