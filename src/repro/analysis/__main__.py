"""``python -m repro.analysis`` — the repro-lint command line.

Exit status is 0 when the audited tree is clean and 1 when any finding
survives the disable-comment filter, so CI can gate on it directly::

    PYTHONPATH=src python -m repro.analysis src/repro examples benchmarks
    PYTHONPATH=src python -m repro.analysis src/repro --format=github
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .lint import run_lint
from .rules import DEFAULT_RULES, rules_by_id


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based contract auditor for the repro codebase: determinism "
            "(R1), shared-memory lifecycle (R2), compiled-objective "
            "map-reduce purity (R3), worker-boundary pickling (R4)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to audit (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output style: plain text or GitHub Actions annotations",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATH",
        help="path prefix to skip (repeatable), e.g. tests/data/lint_fixtures",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all), e.g. R1,R3",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.id}  {rule.title}")
        return 0

    if args.rules is None:
        rules = DEFAULT_RULES
    else:
        try:
            rules = rules_by_id(
                part.strip() for part in args.rules.split(",") if part.strip()
            )
        except KeyError as error:
            print(f"repro-lint: {error.args[0]}", file=sys.stderr)
            return 2

    findings = run_lint(args.paths, rules=rules, exclude=args.exclude)
    for finding in findings:
        print(finding.format(args.format))
    if findings:
        print(
            f"repro-lint: {len(findings)} finding(s) across "
            f"{len({finding.path for finding in findings})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
