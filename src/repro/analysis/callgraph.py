"""A conservative project call graph for the interprocedural lint rules.

R5 (rng-lineage) and R6 (shard-disjointness) need to reason across function
boundaries: a global RNG draw hidden two helpers below ``DCA.fit`` is
invisible to the per-function rules, but trivially reachable here.  The
graph is built from the same parsed :class:`~repro.analysis.lint.LintModule`
trees the per-module rules use, and resolution is deliberately
*conservative*: an edge exists only when the target can be named statically.

Resolution rules (documented limits in ``docs/contracts.md``):

* plain names resolve to same-module ``def``s/classes, then through the
  module's import table (``from .bonus import compensate_scores``) by
  dotted-suffix match against every indexed definition;
* ``self.method()`` / ``cls.method()`` resolve within the enclosing class
  (base classes are not searched);
* ``ClassName(...)`` adds an edge to ``ClassName.__init__`` when one exists;
* local variables and parameters resolve through one level of type
  inference: ``obj = ClassName(...)`` assignments and ``param: ClassName``
  annotations make ``obj.method()`` resolve to ``ClassName.method``;
* anything else — dynamic dispatch, containers of callables, attributes of
  unknown objects — stays *unresolved* and produces no edge.

Calls inside nested functions and lambdas are attributed to the enclosing
top-level function or method (over-approximate: the nested function is
assumed to run), so reachability never misses a draw hidden in a closure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from .lint import LintModule, dotted_name

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "module_name_for_path",
]


def module_name_for_path(path: str | Path) -> str:
    """Dotted module name for a source path, anchored at the package root.

    ``src/repro/core/dca.py`` becomes ``repro.core.dca``; paths outside a
    ``repro`` package (lint fixtures, tests) fall back to their directory
    parts joined from the last recognizable root, or just the file stem.
    """
    parts = list(Path(path).parts)
    if not parts:
        return "<module>"
    stem = Path(parts[-1]).stem
    parts[-1] = stem
    if "repro" in parts[:-1] or stem == "repro":
        anchor = parts.index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    if parts[-1] == "__init__":
        parts = parts[:-1] or ["<module>"]
    return ".".join(parts)


@dataclass(frozen=True)
class CallSite:
    """One resolved call: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int


@dataclass
class FunctionInfo:
    """One indexed ``def``: its qualified name, owning module, and AST node."""

    qualname: str
    module: LintModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    callees: dict[str, int] = field(default_factory=dict)  # qualname -> first line

    @property
    def terminal(self) -> str:
        """The bare function name (last qualname component)."""
        return self.qualname.rsplit(".", 1)[-1]


class CallGraph:
    """Static call graph over a set of parsed modules.

    ``functions`` maps qualified names (``repro.core.dca.DCA.fit``) to
    :class:`FunctionInfo`; ``reachable_from`` walks edges breadth-first and
    returns the shortest call chain to every reachable function, which the
    interprocedural rules embed in their finding messages.
    """

    def __init__(self, modules: Sequence[LintModule]) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, set[str]] = {}  # class qualname -> method names
        self._by_terminal: dict[str, list[str]] = {}
        for module in modules:
            self._index_module(module)
        for info in self.functions.values():
            self._link_function(info)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index_module(self, module: LintModule) -> None:
        module_name = module_name_for_path(module.path)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(f"{module_name}.{node.name}", module, node, None)
            elif isinstance(node, ast.ClassDef):
                class_qual = f"{module_name}.{node.name}"
                methods: set[str] = set()
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods.add(item.name)
                        self._add_function(
                            f"{class_qual}.{item.name}", module, item, node.name
                        )
                self.classes[class_qual] = methods

    def _add_function(
        self,
        qualname: str,
        module: LintModule,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        info = FunctionInfo(qualname, module, node, class_name)
        self.functions[qualname] = info
        self._by_terminal.setdefault(info.terminal, []).append(qualname)

    # ------------------------------------------------------------------
    # Edge building
    # ------------------------------------------------------------------
    def _match(self, dotted: str) -> list[str]:
        """Indexed qualnames matching ``dotted`` exactly or by dotted suffix.

        Import tables built from relative imports carry names without the
        package prefix (``bonus.compensate_scores``), so a suffix match with
        a dot boundary is the correct join against fully qualified names.
        """
        terminal = dotted.rsplit(".", 1)[-1]
        matches: list[str] = []
        for qualname in self._by_terminal.get(terminal, ()):
            if qualname == dotted or qualname.endswith("." + dotted):
                matches.append(qualname)
        for class_qual in self._match_classes(dotted):
            init = f"{class_qual}.__init__"
            if init in self.functions:
                matches.append(init)
        return matches

    def _match_classes(self, dotted: str) -> list[str]:
        return [
            class_qual
            for class_qual in self.classes
            if class_qual == dotted or class_qual.endswith("." + dotted)
        ]

    def _infer_local_types(self, info: FunctionInfo) -> dict[str, str]:
        """Map local names to class qualnames via assignments and annotations."""
        types: dict[str, str] = {}
        arguments = info.node.args
        for arg in [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]:
            if arg.annotation is None:
                continue
            annotation = arg.annotation
            if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
                annotation = _parse_annotation_string(annotation.value)
            name = dotted_name(annotation) if annotation is not None else None
            if name is None:
                continue
            resolved = self._resolve_through_imports(info.module, name)
            for class_qual in self._match_classes(resolved):
                types[arg.arg] = class_qual
                break
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            callee = dotted_name(node.value.func)
            if callee is None:
                continue
            resolved = self._resolve_through_imports(info.module, callee)
            classes = self._match_classes(resolved)
            if not classes:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    types[target.id] = classes[0]
        return types

    @staticmethod
    def _resolve_through_imports(module: LintModule, dotted: str) -> str:
        root, _, rest = dotted.partition(".")
        resolved_root = module.imports.get(root)
        if resolved_root is None:
            return dotted
        return f"{resolved_root}.{rest}" if rest else resolved_root

    def _link_function(self, info: FunctionInfo) -> None:
        module_name = module_name_for_path(info.module.path)
        local_types = self._infer_local_types(info)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in self._resolve_call(info, module_name, local_types, node):
                info.callees.setdefault(callee, node.lineno)

    def _resolve_call(
        self,
        info: FunctionInfo,
        module_name: str,
        local_types: Mapping[str, str],
        call: ast.Call,
    ) -> list[str]:
        name = dotted_name(call.func)
        if name is None:
            return []
        parts = name.split(".")
        # self.method() / cls.method(): resolve within the enclosing class.
        if parts[0] in ("self", "cls") and len(parts) == 2 and info.class_name:
            candidate = f"{module_name}.{info.class_name}.{parts[1]}"
            if candidate in self.functions:
                return [candidate]
            return []
        # obj.method() through one level of local type inference.
        if len(parts) >= 2 and parts[0] in local_types:
            candidate = f"{local_types[parts[0]]}.{'.'.join(parts[1:])}"
            if candidate in self.functions:
                return [candidate]
            return []
        # Same-module definition (function, method on a local class, or class
        # instantiation).
        local = self._match(f"{module_name}.{name}")
        if local:
            return local
        # Through the import table, by dotted-suffix match.
        resolved = self._resolve_through_imports(info.module, name)
        if resolved != name or len(parts) == 1:
            return self._match(resolved)
        return []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def functions_named(self, terminal: str) -> list[FunctionInfo]:
        """Every indexed function whose bare name is ``terminal``."""
        return [self.functions[q] for q in self._by_terminal.get(terminal, ())]

    def callees_of(self, qualname: str) -> Iterator[CallSite]:
        info = self.functions.get(qualname)
        if info is None:
            return
        for callee, line in sorted(info.callees.items()):
            yield CallSite(qualname, callee, line)

    def reachable_from(self, entries: Iterable[str]) -> dict[str, tuple[str, ...]]:
        """Shortest call chain (entry first) to every reachable function.

        Cycle-safe breadth-first walk; each function appears once with the
        first (shortest) chain that reached it.
        """
        chains: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for entry in entries:
            if entry in self.functions and entry not in chains:
                chains[entry] = (entry,)
                queue.append(entry)
        cursor = 0
        while cursor < len(queue):
            current = queue[cursor]
            cursor += 1
            for callee in sorted(self.functions[current].callees):
                if callee not in chains:
                    chains[callee] = chains[current] + (callee,)
                    queue.append(callee)
        return chains


def _parse_annotation_string(text: str) -> ast.AST | None:
    """Parse a string annotation (``"DCAConfig"``) into an expression node."""
    try:
        parsed = ast.parse(text, mode="eval")
    except SyntaxError:
        return None
    return parsed.body
