"""Runtime shared-memory leak sanitizer (the dynamic half of R2).

``repro-lint``'s R2 audits lifecycle statically, but a leak ultimately
manifests at runtime: a ``psm_*`` file left in ``/dev/shm``.  The stdlib
``resource_tracker`` only *warns* about those at interpreter exit — long
after the offending test passed.  :class:`ShmSanitizer` turns the warning
into a hard, attributable error:

* it snapshots the OS-level segment directory (``/dev/shm`` on Linux)
  before and after the guarded region, so leaks are caught **regardless of
  which process created the segment** — including pool workers and
  deliberate subprocess leaks;
* it additionally instruments ``SharedMemory.__init__``/``unlink`` in this
  process to attribute leaks created locally.

The test suite enables it for every test through an autouse fixture in
``tests/conftest.py``::

    sanitizer = ShmSanitizer()
    sanitizer.start()
    ...
    leaked = sanitizer.stop()   # tuple of leaked segment names, () if clean

Only stdlib imports on purpose: the sanitizer must be importable wherever
``multiprocessing.shared_memory`` is.
"""

from __future__ import annotations

import functools
from multiprocessing import shared_memory
from pathlib import Path

__all__ = ["SHM_DIR", "ShmSanitizer"]

#: Where POSIX shared memory appears as files; ``None``-like (missing) on
#: platforms without a world-visible segment directory.
SHM_DIR = Path("/dev/shm")

#: Python names its anonymous segments ``psm_<token>`` (POSIX) or
#: ``wnsm_<token>`` (Windows); we only ever judge those, so unrelated
#: tenants of /dev/shm (semaphores, other software) never false-positive.
_SEGMENT_PREFIXES = ("psm_", "wnsm_")

#: Sanitizers currently between start() and stop(); instrumentation events
#: are broadcast to all of them.
_ACTIVE: list["ShmSanitizer"] = []

_ORIGINALS: dict[str, object] = {}


def _segment_names() -> frozenset[str] | None:
    """Names of OS-visible Python shm segments, or ``None`` if unknowable."""
    if not SHM_DIR.is_dir():
        return None
    try:
        return frozenset(
            entry.name
            for entry in SHM_DIR.iterdir()
            if entry.name.startswith(_SEGMENT_PREFIXES)
        )
    except OSError:
        return None


def _install_instrumentation() -> None:
    if _ORIGINALS:
        return
    original_init = shared_memory.SharedMemory.__init__
    original_unlink = shared_memory.SharedMemory.unlink
    _ORIGINALS["__init__"] = original_init
    _ORIGINALS["unlink"] = original_unlink

    @functools.wraps(original_init)
    def tracked_init(self, *args, **kwargs):  # type: ignore[no-untyped-def]
        original_init(self, *args, **kwargs)
        create = kwargs.get("create", args[1] if len(args) > 1 else False)
        if create:
            for sanitizer in _ACTIVE:
                sanitizer._record_create(self.name)

    @functools.wraps(original_unlink)
    def tracked_unlink(self):  # type: ignore[no-untyped-def]
        for sanitizer in _ACTIVE:
            sanitizer._record_unlink(self.name)
        return original_unlink(self)

    shared_memory.SharedMemory.__init__ = tracked_init  # type: ignore[method-assign]
    shared_memory.SharedMemory.unlink = tracked_unlink  # type: ignore[method-assign]


def _remove_instrumentation() -> None:
    if not _ORIGINALS:
        return
    shared_memory.SharedMemory.__init__ = _ORIGINALS.pop("__init__")  # type: ignore[method-assign]
    shared_memory.SharedMemory.unlink = _ORIGINALS.pop("unlink")  # type: ignore[method-assign]


class ShmSanitizer:
    """Detect shared-memory segments leaked inside a guarded region."""

    def __init__(self) -> None:
        self._baseline: frozenset[str] | None = None
        self._created: dict[str, bool] = {}  # name -> unlinked?
        self._running = False

    # -- instrumentation callbacks -------------------------------------
    def _record_create(self, name: str) -> None:
        self._created[name] = False

    def _record_unlink(self, name: str) -> None:
        if name in self._created:
            self._created[name] = True

    # -- lifecycle ------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._running

    @property
    def filesystem_tracking(self) -> bool:
        """Whether OS-level (cross-process) tracking is available here."""
        return _segment_names() is not None

    def start(self) -> "ShmSanitizer":
        if self._running:
            raise RuntimeError("ShmSanitizer already started")
        self._baseline = _segment_names()
        self._created.clear()
        _install_instrumentation()
        _ACTIVE.append(self)
        self._running = True
        return self

    def stop(self) -> tuple[str, ...]:
        """End the guarded region and return leaked segment names."""
        if not self._running:
            raise RuntimeError("ShmSanitizer not started")
        self._running = False
        _ACTIVE.remove(self)
        if not _ACTIVE:
            _remove_instrumentation()
        current = _segment_names()
        if current is not None and self._baseline is not None:
            # Cross-process truth: anything new and still present leaked —
            # whichever process created it.
            return tuple(sorted(current - self._baseline))
        # Fallback (no /dev/shm): segments this process created and never
        # unlinked.  close() alone is not enough — the backing segment
        # survives until unlink().
        return tuple(
            sorted(name for name, unlinked in self._created.items() if not unlinked)
        )

    # -- context-manager sugar ------------------------------------------
    def __enter__(self) -> "ShmSanitizer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.leaked = self.stop()
