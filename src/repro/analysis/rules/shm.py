"""R2 — shared-memory lifecycle: every allocation is dominated by cleanup.

``SharedMemory`` segments (and the plane/store wrappers built on them) are
kernel objects: a Python-level leak leaves a file in ``/dev/shm`` until
reboot.  The contract is that every allocation must be *dominated* by a
``close()``/``unlink()`` on all paths.  Statically we accept the shapes the
codebase actually uses:

* the allocation is a ``with`` item (directly, or the bound name is later
  used as one);
* the allocation is returned directly (``return SharedColumnStore(...)``) —
  ownership transfers to the caller;
* the allocation is stored on ``self`` inside a class that defines
  ``close`` — the instance owns the segment;
* the bound name has ``close()``/``unlink()``/``shutdown()`` called inside
  a ``finally`` block or ``except`` handler of the enclosing function;
* the bound name is handed to a cleanup registrar (``ExitStack.
  enter_context``/``callback``/``push``, ``contextlib.closing``,
  ``addfinalizer``, ``atexit.register``).

Anything else — including a plain sequential ``x.close()`` with no
``try``/``finally``, which leaks on any exception in between — is flagged.
This is a heuristic, not a data-flow analysis; genuinely safe exotic shapes
can carry ``# repro-lint: disable=R2`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, LintModule, Rule, ancestors, dotted_name

__all__ = ["ShmLifecycleRule"]

#: Constructor terminals that allocate (or wrap) a shared-memory segment.
_ALLOCATORS = frozenset(
    {"SharedMemory", "SharedColumnStore", "SharedPopulationPlane", "ShardedFitPlane"}
)

_CLEANUP_METHODS = frozenset({"close", "unlink", "shutdown"})

#: Call terminals that register a deferred cleanup for an argument.
_REGISTRARS = frozenset(
    {"enter_context", "callback", "push", "register", "closing", "addfinalizer"}
)


def _call_terminal(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_allocation(call: ast.Call) -> bool:
    terminal = _call_terminal(call)
    if terminal in _ALLOCATORS:
        return True
    if terminal == "allocate" and isinstance(call.func, ast.Attribute):
        owner = dotted_name(call.func.value)
        if owner is not None and "Plane" in owner:
            return True
    if terminal in {"generate_school_cohort", "generate_compas_cohort"}:
        for keyword in call.keywords:
            if (
                keyword.arg == "shared"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _assignment_target(call: ast.Call) -> ast.AST | None:
    parent = getattr(call, "parent", None)
    if isinstance(parent, ast.Assign) and parent.value is call and len(parent.targets) == 1:
        return parent.targets[0]
    if isinstance(parent, (ast.AnnAssign, ast.NamedExpr)) and parent.value is call:
        return parent.target
    return None


def _mentions_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def _calls_cleanup_on(statements: list[ast.stmt], name: str) -> bool:
    for statement in statements:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CLEANUP_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
    return False


def _name_is_cleaned(scope: ast.AST, name: str) -> bool:
    """Does ``scope`` guarantee cleanup of ``name`` per the accepted shapes?"""
    for node in ast.walk(scope):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _mentions_name(item.context_expr, name):
                    return True
        elif isinstance(node, ast.Try):
            if _calls_cleanup_on(node.finalbody, name):
                return True
            for handler in node.handlers:
                if _calls_cleanup_on(handler.body, name):
                    return True
        elif isinstance(node, ast.Call):
            # ``stack.enter_context(store)`` / ``stack.callback(store.close)``
            terminal = _call_terminal(node)
            if terminal in _REGISTRARS and any(
                _mentions_name(arg, name) for arg in node.args
            ):
                return True
    return False


def _class_defines_close(class_def: ast.ClassDef) -> bool:
    return any(
        isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        and statement.name in {"close", "__exit__", "__del__"}
        for statement in class_def.body
    )


class ShmLifecycleRule(Rule):
    """Flag shared-memory allocations that can escape without cleanup."""

    id = "R2"
    title = "shared-memory lifecycle: close()/unlink() on all paths"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not _is_allocation(node):
                continue
            finding = self._classify(module, node)
            if finding is not None:
                yield finding

    def _classify(self, module: LintModule, call: ast.Call) -> Finding | None:
        label = _call_terminal(call) or "shared-memory segment"
        # Allocated directly as (or inside) a ``with`` item: the context
        # manager owns the lifetime.
        for ancestor in ancestors(call):
            if isinstance(ancestor, ast.withitem):
                return None
            if isinstance(ancestor, ast.stmt):
                break
        parent = getattr(call, "parent", None)
        # ``return Alloc(...)`` transfers ownership to the caller.
        if isinstance(parent, ast.Return):
            return None
        target = _assignment_target(call)
        if target is None:
            return self.finding(
                module,
                call,
                f"{label} allocation is never bound to a name, so nothing "
                "can close() it; use a context manager",
            )
        if isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and (class_def := module.enclosing_class(call)) is not None
                and _class_defines_close(class_def)
            ):
                return None
            return self.finding(
                module,
                call,
                f"{label} allocation stored on an attribute of a class with "
                "no close()/__exit__; the owning object must expose cleanup",
            )
        if isinstance(target, ast.Name):
            scope = module.enclosing_function(call) or module.tree
            # Ownership transfer: the bound name is returned somewhere in
            # the same function.
            for node in ast.walk(scope):
                if (
                    isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == target.id
                ):
                    return None
            if _name_is_cleaned(scope, target.id):
                return None
            return self.finding(
                module,
                call,
                f"{label} allocation bound to {target.id!r} has no "
                "close()/unlink() on all paths; use a context manager, "
                "try/finally, or a registered cleanup",
            )
        return self.finding(
            module,
            call,
            f"{label} allocation uses a binding shape repro-lint cannot "
            "verify; bind to a plain name with guaranteed cleanup",
        )
