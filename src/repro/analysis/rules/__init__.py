"""The pluggable rule registry for ``repro-lint``.

Each rule audits one of the contracts described in ``docs/contracts.md``:

========  ============================================================
``R1``    Determinism: hot paths draw randomness only from threaded,
          seeded generators — never global RNG state or wall clocks.
``R2``    Shared-memory lifecycle: every segment allocation is
          dominated by ``close()``/``unlink()`` on all paths.
``R3``    Compiled-objective contract: ``partial``/``merge``/
          ``shard_fields`` travel together and order-sensitive FP
          reductions stay out of ``partial``.
``R4``    Worker-boundary pickling: process pools receive module-level
          functions and plain descriptors, never closures or tables.
========  ============================================================
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..lint import Rule
from .contract import CompiledContractRule
from .determinism import DeterminismRule
from .pickling import WorkerPicklingRule
from .shm import ShmLifecycleRule

__all__ = [
    "CompiledContractRule",
    "DEFAULT_RULES",
    "DeterminismRule",
    "ShmLifecycleRule",
    "WorkerPicklingRule",
    "rules_by_id",
]

#: All rules, in rule-id order; instances are stateless and reusable.
DEFAULT_RULES: tuple[Rule, ...] = (
    DeterminismRule(),
    ShmLifecycleRule(),
    CompiledContractRule(),
    WorkerPicklingRule(),
)


def rules_by_id(ids: Iterable[str]) -> Sequence[Rule]:
    """Resolve ``("R1", "R3")`` into rule instances; unknown ids raise."""
    wanted = list(ids)
    known = {rule.id: rule for rule in DEFAULT_RULES}
    missing = [rule_id for rule_id in wanted if rule_id not in known]
    if missing:
        raise KeyError(f"unknown repro-lint rule ids: {missing}; known: {sorted(known)}")
    return tuple(known[rule_id] for rule_id in wanted)
