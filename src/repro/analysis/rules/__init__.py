"""The pluggable rule registry for ``repro-lint``.

Each rule audits one of the contracts described in ``docs/contracts.md``:

========  ============================================================
``R1``    Determinism: hot paths draw randomness only from threaded,
          seeded generators — never global RNG state or wall clocks.
``R2``    Shared-memory lifecycle: every segment allocation is
          dominated by ``close()``/``unlink()`` on all paths.
``R3``    Compiled-objective contract: ``partial``/``merge``/
          ``shard_fields`` travel together and order-sensitive FP
          reductions stay out of ``partial``.
``R4``    Worker-boundary pickling: process pools receive module-level
          functions and plain descriptors, never closures or tables.
``R5``    RNG lineage (interprocedural): every draw reachable from a fit
          entry point traces to a seeded, parent-owned generator.
``R6``    Shard disjointness (interprocedural): worker writes into shared
          scratch are indexed through the worker's own shard descriptor.
========  ============================================================

R1–R4 are module-scoped; R5/R6 are project-scoped and consult the call
graph (:mod:`repro.analysis.callgraph`) built over the whole lint run.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..lint import Rule
from .contract import CompiledContractRule
from .determinism import DeterminismRule
from .pickling import WorkerPicklingRule
from .rng_lineage import RngLineageRule
from .shard_disjoint import ShardDisjointRule
from .shm import ShmLifecycleRule

__all__ = [
    "CompiledContractRule",
    "DEFAULT_RULES",
    "DeterminismRule",
    "RngLineageRule",
    "ShardDisjointRule",
    "ShmLifecycleRule",
    "WorkerPicklingRule",
    "rules_by_id",
]

#: All rules, in rule-id order; instances are stateless and reusable.
DEFAULT_RULES: tuple[Rule, ...] = (
    DeterminismRule(),
    ShmLifecycleRule(),
    CompiledContractRule(),
    WorkerPicklingRule(),
    RngLineageRule(),
    ShardDisjointRule(),
)


def rules_by_id(ids: Iterable[str]) -> Sequence[Rule]:
    """Resolve ``("R1", "R3")`` into rule instances; unknown ids raise."""
    wanted = list(ids)
    known = {rule.id: rule for rule in DEFAULT_RULES}
    missing = [rule_id for rule_id in wanted if rule_id not in known]
    if missing:
        raise KeyError(f"unknown repro-lint rule ids: {missing}; known: {sorted(known)}")
    return tuple(known[rule_id] for rule_id in wanted)
