"""R3 — the compiled-objective map-reduce contract.

``CompiledObjective`` subclasses promise bitwise identity between the
single-process and sharded fit paths.  Two structural invariants make that
promise auditable:

* ``partial``/``merge``/``shard_fields`` travel together: a class defining
  ``partial`` without the other two can be mapped over shards but never
  reduced, and a missing ``shard_fields`` silently falls back to
  whole-table pickling.  Likewise ``export_state`` (producer) requires
  ``from_state`` (worker-side consumer).
* ``partial`` bodies perform *gathers only*.  Floating-point reductions
  (``np.sum``, ``.mean()``, ``@`` …) are order-sensitive, and running them
  per-shard changes the summation order versus the single-fit path — the
  exact bug class the contract exists to prevent.  All reductions belong in
  ``merge``, which sees shard accumulators in deterministic shard order.

The same pairing check also runs at class-definition time via
``CompiledObjective.__init_subclass__``; this rule catches classes that are
never imported by the test suite.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, LintModule, Rule

__all__ = ["CompiledContractRule"]

#: Fully qualified callables that reduce over an axis in FP.
_REDUCTION_CALLS = frozenset(
    {
        "numpy.sum",
        "numpy.nansum",
        "numpy.mean",
        "numpy.nanmean",
        "numpy.average",
        "numpy.dot",
        "numpy.vdot",
        "numpy.inner",
        "numpy.matmul",
        "numpy.tensordot",
        "numpy.einsum",
        "numpy.prod",
        "numpy.cumsum",
        "numpy.add.reduce",
        "numpy.linalg.norm",
    }
)

#: Method terminals that reduce the receiver in FP (``scores.sum()`` …).
_REDUCTION_METHODS = frozenset({"sum", "mean", "dot", "prod", "std", "var"})


def _methods(class_def: ast.ClassDef) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    return {
        statement.name: statement
        for statement in class_def.body
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class CompiledContractRule(Rule):
    """Audit partial/merge/shard_fields pairing and partial-body purity."""

    id = "R3"
    title = "compiled-objective contract: partial gathers, merge reduces"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _methods(node)
            if "partial" in methods:
                missing = [m for m in ("merge", "shard_fields") if m not in methods]
                if missing:
                    yield self.finding(
                        module,
                        node,
                        f"class {node.name} defines partial() without "
                        f"{' and '.join(missing)}; the map-reduce contract "
                        "requires partial/merge/shard_fields together",
                    )
                yield from self._scan_partial(module, node, methods["partial"])
            if "export_state" in methods and "from_state" not in methods:
                yield self.finding(
                    module,
                    node,
                    f"class {node.name} defines export_state() without "
                    "from_state(); workers cannot rebuild the compiled state",
                )

    def _scan_partial(
        self,
        module: LintModule,
        class_def: ast.ClassDef,
        partial: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        for node in ast.walk(partial):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield self.finding(
                    module,
                    node,
                    f"matrix product (@) inside {class_def.name}.partial(); "
                    "order-sensitive FP reductions belong in merge()",
                )
            elif isinstance(node, ast.Call):
                resolved = module.resolve_call(node.func)
                if resolved in _REDUCTION_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"{resolved}() inside {class_def.name}.partial(); "
                        "order-sensitive FP reductions belong in merge()",
                    )
                elif (
                    resolved is None
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _REDUCTION_METHODS
                ):
                    yield self.finding(
                        module,
                        node,
                        f".{node.func.attr}() reduction inside "
                        f"{class_def.name}.partial(); partial must gather "
                        "only — reduce in merge()",
                    )
