"""R5 — rng-lineage: every draw reachable from a fit traces to a seeded root.

R1 audits one function at a time inside the hot directories.  R5 closes the
two gaps that leaves open, using the project call graph
(:mod:`repro.analysis.callgraph`):

* **Reachability beats directory layout.**  Any function reachable from an
  entry point — ``DCA.fit``, ``fit_many``, ``deferred_acceptance``,
  ``fit_bonus_points``, or the process-pool worker paths — is audited for
  the R1 violation set (global-singleton draws, *unseeded*
  ``default_rng()``, the stdlib ``random`` module, wall clocks) no matter
  which directory it lives in.  A helper in ``tabular/`` that quietly pulls
  OS entropy is invisible to R1 and flagged here, with the full call chain
  in the message.
* **The row-shard worker path owns no randomness at all.**  Within
  ``_shard_worker_step`` and its callees, *any* generator construction —
  even a seeded one — is flagged: the parent owns the fit's single sample
  stream, and a generator forked in a shard worker means the worker is
  consuming RNG state the serial path never would.  (The job-grain worker
  ``_plane_worker_fit`` legitimately re-mints each job's seeded generator —
  one fit per job — so the no-mint check applies to the row-shard path
  only.)

Findings anchor at the draw/mint site, so the same-line
``# repro-lint: disable=R5`` escape hatch works exactly like R1's.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, LintProject, ProjectRule
from .determinism import _GENERATOR_FACTORIES, _WALL_CLOCK

__all__ = ["RngLineageRule"]

#: Bare function names treated as audit entry points.  Matching on the
#: terminal name keeps the rule equally effective on the real tree
#: (``repro.core.dca.DCA.fit``) and on single-file fixtures (``fit``).
ENTRY_TERMINALS = (
    "fit",
    "fit_many",
    "fit_bonus_points",
    "deferred_acceptance",
    "_plane_worker_fit",
    "_shard_worker_step",
    "_scheduler_worker_loop",
)

#: Entry points forming the row-shard worker path, where even seeded
#: generator minting is a violation (the parent owns the sample stream).
#: ``_shard_worker_serve`` is the shared step kernel both the legacy
#: ``pool.map`` dispatch and the doorbell scheduler loop call into.
WORKER_ENTRY_TERMINALS = ("_shard_worker_step", "_shard_worker_serve")


def _short(qualname: str) -> str:
    """Trim a qualname for chain display: last two dotted components."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(_short(part) for part in chain)


class RngLineageRule(ProjectRule):
    """Interprocedural determinism audit over the fit-reachable call graph."""

    id = "R5"
    title = "rng-lineage: fits reach only seeded, parent-owned randomness"

    def check_project(self, project: LintProject) -> Iterator[Finding]:
        graph = project.callgraph
        entries = [
            info.qualname
            for terminal in ENTRY_TERMINALS
            for info in graph.functions_named(terminal)
        ]
        worker_entries = [
            info.qualname
            for terminal in WORKER_ENTRY_TERMINALS
            for info in graph.functions_named(terminal)
        ]
        worker_reach = graph.reachable_from(worker_entries)
        for qualname, chain in sorted(graph.reachable_from(entries).items()):
            info = graph.functions[qualname]
            worker_chain = worker_reach.get(qualname)
            yield from self._check_function(info, chain, worker_chain)

    def _check_function(self, info, chain, worker_chain) -> Iterator[Finding]:
        module = info.module
        suffix = f" [reached via {_chain_text(chain)}]"
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call(node.func)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                terminal = name.rsplit(".", 1)[1]
                if terminal in _GENERATOR_FACTORIES:
                    if worker_chain is not None:
                        yield self.finding(
                            module,
                            node,
                            f"np.random.{terminal}() mints a generator on the "
                            "row-shard worker path; the parent owns the fit's "
                            "one sample stream — ship arrays, not RNG state"
                            f" [reached via {_chain_text(worker_chain)}]",
                        )
                    elif terminal == "default_rng" and not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node,
                            "unseeded np.random.default_rng() on a fit-reachable "
                            "path pulls OS entropy; derive the stream from a "
                            "seeded Generator parameter or DCAConfig.rng()"
                            + suffix,
                        )
                else:
                    yield self.finding(
                        module,
                        node,
                        f"np.random.{terminal}() draws from the process-global "
                        "RNG singleton on a fit-reachable path; thread a "
                        "seeded Generator instead" + suffix,
                    )
            elif name == "random" or name.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"stdlib {name}() draws from hidden global state on a "
                    "fit-reachable path; use a seeded np.random.Generator"
                    + suffix,
                )
            elif name in _WALL_CLOCK:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock call {name}() on a fit-reachable path makes "
                    "results depend on when they ran" + suffix,
                )
