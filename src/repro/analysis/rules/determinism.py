"""R1 — determinism: hot paths must not touch global RNG state or clocks.

The reproduction's headline guarantee is that a ``(seed, config)`` pair
fully determines every fit.  That only holds if the hot paths (``core/``,
``matching/``, ``ranking/``) draw randomness exclusively from generators
threaded in by the caller (``np.random.Generator`` / ``SampleStream``) and
never consult process-global state: the legacy ``np.random.*`` singleton,
the stdlib ``random`` module, or wall clocks.  ``np.random.default_rng()``
*with a seed argument* is the sanctioned way to mint a generator;
an argument-less call silently pulls OS entropy and is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, LintModule, Rule

__all__ = ["DeterminismRule"]

#: numpy.random attributes that construct generators rather than draw from
#: the global singleton; calling these (seeded) is the sanctioned pattern.
_GENERATOR_FACTORIES = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: Wall-clock reads that make output depend on when the code ran.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class DeterminismRule(Rule):
    """Flag hidden-global randomness and wall-clock reads in hot paths."""

    id = "R1"
    title = "determinism: seeded generators only in hot paths"

    def check(self, module: LintModule) -> Iterator[Finding]:
        if not module.is_hot_path:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call(node.func)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                terminal = name.rsplit(".", 1)[1]
                if terminal == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node,
                            "unseeded np.random.default_rng() pulls OS entropy; "
                            "thread a seeded Generator/SampleStream instead",
                        )
                elif terminal not in _GENERATOR_FACTORIES:
                    yield self.finding(
                        module,
                        node,
                        f"np.random.{terminal}() draws from the process-global "
                        "RNG singleton; use a threaded, seeded Generator",
                    )
            elif name == "random" or name.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"stdlib {name}() draws from hidden global state; "
                    "use a seeded np.random.Generator",
                )
            elif name in _WALL_CLOCK:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock call {name}() makes hot-path output depend on "
                    "when it ran; keep timing outside hot paths "
                    "(time.perf_counter is fine for durations)",
                )
