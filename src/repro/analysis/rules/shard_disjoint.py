"""R6 — shard-disjointness: worker writes go through the shard descriptor.

The row-sharded fit's correctness argument is that every worker writes a
*disjoint* slice of the shared scratch: each ``_shard_worker_step`` call
filters the sample to its own ``(lo, hi)`` row range and scatters results at
the matching sample positions.  An out-of-shard write silently corrupts a
sibling's output and is the single hardest class of bug to reproduce.

This rule runs a symbolic taint pass over every *worker function* (any
``def`` whose name contains ``worker``) and its scratch-handling callees:

* **taint sources** — names unpacked from a subscript of a ``*bounds*``
  attribute (``lo, hi = state.bounds[shard]``) and results of the nameable
  helper ``shard_sample_positions(...)``;
* **propagation** — through arithmetic, comparisons, subscripts, and calls
  whose arguments carry taint (``positions = np.flatnonzero((idx >= lo) &
  (idx < hi))`` taints ``positions``);
* **checks** — every subscript-store into a scratch-rooted shared view
  (a target whose object chain mentions ``scratch``) must be indexed by a
  tainted expression, every ``scatter_fields(...)`` call must receive a
  tainted position argument, and workers must never write population
  arrays (``state.base`` / ``state.matrix`` / ``state.indices`` /
  ``state.arrays``) at all.

Calls that pass a scratch view to another project function are followed one
level through the call graph, with the call-site taint mapped onto the
callee's parameters; findings from a callee carry the call chain.

The static proof is "indexed through the worker's own shard descriptor".
*Numeric* disjointness of the descriptors themselves (e.g. a widened-by-one
shard) is undecidable here and belongs to the runtime half,
:mod:`repro.analysis.race_sanitizer` — see ``docs/contracts.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, LintModule, LintProject, ProjectRule
from ..callgraph import FunctionInfo

__all__ = ["ShardDisjointRule"]

#: Terminal attribute names that identify read-only population arrays a
#: worker must never store into (only chains like ``state.base`` match —
#: a bare local ``base`` array is someone else's business).
_POPULATION_TERMINALS = frozenset({"base", "matrix", "indices", "arrays"})

#: The nameable scatter helper: its position argument must carry taint.
_SCATTER_HELPERS = frozenset({"scatter_fields"})

#: The nameable shard-filter helper: its result is taint-source.
_POSITION_HELPERS = frozenset({"shard_sample_positions"})


def _peel_subscripts(node: ast.AST) -> tuple[ast.AST, ast.AST | None]:
    """Peel nested subscripts: return (root object node, outermost index)."""
    index = None
    while isinstance(node, ast.Subscript):
        if index is None:
            index = node.slice
        node = node.value
    return node, index


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _names_in(node: ast.AST | None) -> set[str]:
    if node is None:
        return set()
    return {child.id for child in ast.walk(node) if isinstance(child, ast.Name)}


def _assign_targets(node: ast.AST) -> list[str]:
    """Plain names bound by an Assign/AnnAssign target (tuples unpacked)."""
    names: list[str] = []
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                element.id for element in target.elts if isinstance(element, ast.Name)
            )
    return names


def _is_bounds_subscript(node: ast.AST) -> bool:
    """``<chain ending in *bounds*>[...]`` — the canonical shard descriptor."""
    if not isinstance(node, ast.Subscript):
        return False
    dotted = _dotted(node.value)
    return dotted is not None and "bounds" in dotted.rsplit(".", 1)[-1]


def _call_terminal(node: ast.Call) -> str | None:
    dotted = _dotted(node.func)
    return dotted.rsplit(".", 1)[-1] if dotted else None


class _TaintPass:
    """Fixed-point taint over one function body."""

    def __init__(self, node: ast.AST, seeds: frozenset[str] = frozenset()) -> None:
        self.tainted: set[str] = set(seeds)
        changed = True
        while changed:
            changed = False
            for statement in ast.walk(node):
                if isinstance(statement, (ast.Assign, ast.AnnAssign)):
                    value = statement.value
                    if value is not None and self.expression_tainted(value):
                        for name in _assign_targets(statement):
                            if name not in self.tainted:
                                self.tainted.add(name)
                                changed = True

    def expression_tainted(self, node: ast.AST | None) -> bool:
        if node is None:
            return False
        for child in ast.walk(node):
            if _is_bounds_subscript(child):
                return True
            if isinstance(child, ast.Call) and _call_terminal(child) in _POSITION_HELPERS:
                return True
            if isinstance(child, ast.Name) and child.id in self.tainted:
                return True
        return False


class ShardDisjointRule(ProjectRule):
    """Prove every worker's shared-memory write is shard-descriptor indexed."""

    id = "R6"
    title = "shard-disjointness: worker writes indexed by the shard descriptor"

    def check_project(self, project: LintProject) -> Iterator[Finding]:
        graph = project.callgraph
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if "worker" not in info.terminal:
                continue
            taint = _TaintPass(info.node)
            yield from self._check_body(info, taint, chain=(info.terminal,))
            yield from self._check_scratch_callees(graph, info, taint)

    # ------------------------------------------------------------------
    def _check_body(
        self, info: FunctionInfo, taint: _TaintPass, chain: tuple[str, ...]
    ) -> Iterator[Finding]:
        module = info.module
        via = f" [write path: {' -> '.join(chain)}]"
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    yield from self._check_store(module, node, target, taint, via)
            elif isinstance(node, ast.Call) and _call_terminal(node) in _SCATTER_HELPERS:
                if len(node.args) >= 2 and not taint.expression_tainted(node.args[1]):
                    yield self.finding(
                        module,
                        node,
                        "scatter_fields() called with positions not derived "
                        "from this worker's shard descriptor; out-of-shard "
                        "scatters race with sibling workers" + via,
                    )

    def _check_store(
        self,
        module: LintModule,
        statement: ast.AST,
        target: ast.Subscript,
        taint: _TaintPass,
        via: str,
    ) -> Iterator[Finding]:
        root, index = _peel_subscripts(target)
        dotted = _dotted(root)
        if dotted is None:
            return
        if "scratch" in dotted:
            if not taint.expression_tainted(index):
                yield self.finding(
                    module,
                    statement,
                    f"write into shared scratch `{dotted}` is not indexed "
                    "through the worker's shard descriptor (bounds slice or "
                    "sample-position scatter); overlapping writes between "
                    "workers are silent corruption" + via,
                )
        elif "." in dotted and dotted.rsplit(".", 1)[-1] in _POPULATION_TERMINALS:
            yield self.finding(
                module,
                statement,
                f"worker writes population array `{dotted}`; workers own "
                "only their scratch slice — population arrays are read-only "
                "parent state" + via,
            )

    def _check_scratch_callees(
        self, graph, info: FunctionInfo, taint: _TaintPass
    ) -> Iterator[Finding]:
        """Follow scratch views one call level down, mapping taint to params."""
        callees_by_terminal = {
            graph.functions[site.callee].terminal: graph.functions[site.callee]
            for site in graph.callees_of(info.qualname)
        }
        analyzed: set[tuple[str, frozenset[str]]] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            passes_scratch = any(
                (dotted := _dotted(arg)) is not None and "scratch" in dotted
                for arg in node.args
            )
            if not passes_scratch:
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            callee = callees_by_terminal.get(name.rsplit(".", 1)[-1])
            if callee is None or callee.terminal in _SCATTER_HELPERS:
                continue  # unresolved, or the trusted scatter anchor itself
            seeds = self._seed_params(callee, node, taint)
            if (callee.qualname, seeds) in analyzed:
                continue
            analyzed.add((callee.qualname, seeds))
            callee_taint = _TaintPass(callee.node, seeds=seeds)
            yield from self._check_body(
                callee, callee_taint, chain=(info.terminal, callee.terminal)
            )

    @staticmethod
    def _seed_params(
        callee: FunctionInfo, call: ast.Call, taint: _TaintPass
    ) -> frozenset[str]:
        """Callee parameters bound to tainted call-site arguments."""
        parameters = [arg.arg for arg in callee.node.args.args]
        if parameters and parameters[0] in ("self", "cls"):
            parameters = parameters[1:]
        seeds: set[str] = set()
        for position, arg in enumerate(call.args):
            if position < len(parameters) and taint.expression_tainted(arg):
                seeds.add(parameters[position])
        for keyword in call.keywords:
            if keyword.arg and taint.expression_tainted(keyword.value):
                seeds.add(keyword.arg)
        return frozenset(seeds)
