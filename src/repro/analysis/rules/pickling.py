"""R4 — worker-boundary pickling: process pools take descriptors only.

Work submitted to a *process* pool crosses a pickle boundary.  Lambdas and
nested functions do not pickle at all; bound methods drag their whole
instance across; and passing a ``Table``/cohort as an argument re-pickles
megabytes per task, defeating the shared-memory planes entirely.  The
contract is: module-level functions plus plain shard *descriptors* (names,
slices, segment handles).

Thread pools share an address space, so closures over tables are legal
there — ``ThreadPoolExecutor`` is deliberately exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..lint import Finding, LintModule, Rule, ancestors

__all__ = ["WorkerPicklingRule"]

#: Constructor terminals that create a *process* pool.
_POOL_CTORS = frozenset({"ProcessPoolExecutor", "Pool"})

#: Pool methods whose first argument is a callable shipped to workers.
_SUBMIT_METHODS = frozenset(
    {
        "submit",
        "map",
        "apply",
        "apply_async",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
    }
)

#: Argument names that indicate a whole table/cohort crossing the boundary.
_HEAVY_NAMES = frozenset({"table", "cohort"})


def _pool_ctor(call: ast.Call) -> bool:
    if isinstance(call.func, ast.Name):
        return call.func.id in _POOL_CTORS
    if isinstance(call.func, ast.Attribute):
        return call.func.attr in _POOL_CTORS
    return False


@dataclass(frozen=True)
class _Binding:
    kind: str  # "name" (local/with-as) or "attr" (self.<attr>)
    ident: str
    scope: ast.AST  # node within which the binding is authoritative


def _within(node: ast.AST, scope: ast.AST) -> bool:
    return scope is node or any(ancestor is scope for ancestor in ancestors(node))


class WorkerPicklingRule(Rule):
    """Flag unpicklable or heavyweight submissions to process pools."""

    id = "R4"
    title = "worker boundary: module-level functions + descriptors only"

    def check(self, module: LintModule) -> Iterator[Finding]:
        bindings = self._pool_bindings(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _pool_ctor(node):
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        yield from self._check_callable(module, node, keyword.value)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and self._is_bound_pool(module, node, node.func.value, bindings)
            ):
                if node.args:
                    yield from self._check_callable(module, node, node.args[0])
                for argument in node.args[1:]:
                    yield from self._check_payload(module, node, argument)
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        yield from self._check_payload(module, node, keyword.value)

    # -- pool discovery ------------------------------------------------
    def _pool_bindings(self, module: LintModule) -> list[_Binding]:
        bindings: list[_Binding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and _pool_ctor(item.context_expr)
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        bindings.append(_Binding("name", item.optional_vars.id, node))
            elif (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and _pool_ctor(node.value)
                and len(node.targets) == 1
            ):
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    scope = module.enclosing_function(node) or module.tree
                    bindings.append(_Binding("name", target.id, scope))
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    scope = module.enclosing_class(node) or module.tree
                    bindings.append(_Binding("attr", target.attr, scope))
        return bindings

    def _is_bound_pool(
        self,
        module: LintModule,
        call: ast.Call,
        receiver: ast.AST,
        bindings: list[_Binding],
    ) -> bool:
        if isinstance(receiver, ast.Name):
            return any(
                binding.kind == "name"
                and binding.ident == receiver.id
                and _within(call, binding.scope)
                for binding in bindings
            )
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            return any(
                binding.kind == "attr"
                and binding.ident == receiver.attr
                and _within(call, binding.scope)
                for binding in bindings
            )
        return False

    # -- submission checks ---------------------------------------------
    def _check_callable(
        self, module: LintModule, site: ast.Call, fn: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(fn, ast.Lambda):
            yield self.finding(
                module,
                site,
                "lambda submitted to a process pool cannot pickle; "
                "use a module-level function",
            )
        elif isinstance(fn, ast.Name):
            enclosing = module.enclosing_function(site)
            if enclosing is not None:
                for node in ast.walk(enclosing):
                    if (
                        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and node is not enclosing
                        and node.name == fn.id
                    ):
                        yield self.finding(
                            module,
                            site,
                            f"nested function {fn.id!r} submitted to a process "
                            "pool closes over local state and cannot pickle; "
                            "hoist it to module level and pass descriptors",
                        )
                        break
        elif (
            isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name)
            and fn.value.id == "self"
        ):
            yield self.finding(
                module,
                site,
                f"bound method self.{fn.attr} submitted to a process pool "
                "pickles the whole instance; use a module-level function",
            )
        elif isinstance(fn, ast.Call) and module.resolve_call(fn.func) == "functools.partial":
            if fn.args:
                yield from self._check_callable(module, site, fn.args[0])

    def _check_payload(
        self, module: LintModule, site: ast.Call, argument: ast.AST
    ) -> Iterator[Finding]:
        heavy: str | None = None
        if isinstance(argument, ast.Name) and argument.id in _HEAVY_NAMES:
            heavy = argument.id
        elif isinstance(argument, ast.Attribute) and argument.attr in _HEAVY_NAMES:
            heavy = argument.attr
        if heavy is not None:
            yield self.finding(
                module,
                site,
                f"{heavy!r} passed across a process-pool boundary re-pickles "
                "the whole object per task; pass a shard descriptor and "
                "attach via shared memory",
            )
