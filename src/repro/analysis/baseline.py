"""Finding baselines: land strict rules without grandfathering noise inline.

A baseline file records the findings present at some commit; later runs
with ``--baseline FILE`` suppress exactly those, so only *new* violations
fail the build.  Fingerprints are ``(path, rule, message)`` — the line
number is deliberately excluded so unrelated edits above a grandfathered
finding do not resurrect it.  Stdlib-only.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .lint import Finding

__all__ = ["filter_baseline", "fingerprint", "load_baseline", "write_baseline"]

_SCHEMA = 1


def fingerprint(finding: Finding) -> tuple[str, str, str]:
    """Line-independent identity of a finding."""
    return (finding.path, finding.rule, finding.message)


def write_baseline(findings: Sequence[Finding], path: str | Path) -> None:
    """Record ``findings`` as the suppression baseline at ``path``."""
    entries = [
        {"path": file, "rule": rule, "message": message}
        for file, rule, message in sorted({fingerprint(f) for f in findings})
    ]
    payload = {"schema": _SCHEMA, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """The fingerprints recorded in a baseline file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != _SCHEMA:
        raise ValueError(
            f"unsupported baseline schema {payload.get('schema')!r} in {path}"
        )
    return {
        (entry["path"], entry["rule"], entry["message"])
        for entry in payload["findings"]
    }


def filter_baseline(
    findings: Sequence[Finding], baseline: set[tuple[str, str, str]]
) -> list[Finding]:
    """Findings not covered by ``baseline`` (the ones that fail the build)."""
    return [finding for finding in findings if fingerprint(finding) not in baseline]
