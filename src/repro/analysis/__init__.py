"""``repro.analysis`` — static contract auditing + runtime shm sanitizing.

Two complementary halves:

* **repro-lint** (this module's public API and ``python -m repro.analysis``):
  an ``ast``-based auditor enforcing the six repo contracts — R1
  determinism, R2 shared-memory lifecycle, R3 compiled-objective
  map-reduce purity, R4 worker-boundary pickling, and the interprocedural
  pair R5 rng-lineage / R6 shard-disjointness, which follow the project
  call graph (:mod:`repro.analysis.callgraph`) across files.  Findings can
  render as text, GitHub annotations, or SARIF, and can be suppressed
  against a recorded baseline (:mod:`repro.analysis.baseline`).  See
  ``docs/contracts.md`` for the contracts and the
  ``# repro-lint: disable=RULE`` escape hatch.
* **runtime sanitizers**: :mod:`repro.analysis.shm_sanitizer` snapshots
  shared-memory segments around each test and fails the suite on anything
  left behind — including segments leaked by *subprocesses* — and
  :mod:`repro.analysis.race_sanitizer` (opt-in via
  ``REPRO_RACE_SANITIZER=1``) proves every row-sharded fit step's worker
  writes disjoint and covering, settling what R6 cannot decide statically.

The lint half is intentionally dependency-free (stdlib ``ast`` only) so CI
can audit the tree without installing numpy first.
"""

from __future__ import annotations

from .baseline import filter_baseline, load_baseline, write_baseline
from .callgraph import CallGraph, FunctionInfo, module_name_for_path
from .lint import (
    Finding,
    HOT_PATH_DIRS,
    LintModule,
    LintProject,
    ProjectRule,
    Rule,
    iter_python_files,
    lint_file,
    lint_project,
    lint_source,
    run_lint,
)
from .rules import (
    DEFAULT_RULES,
    CompiledContractRule,
    DeterminismRule,
    RngLineageRule,
    ShardDisjointRule,
    ShmLifecycleRule,
    WorkerPicklingRule,
    rules_by_id,
)
from .sarif import to_sarif

__all__ = [
    "CallGraph",
    "CompiledContractRule",
    "DEFAULT_RULES",
    "DeterminismRule",
    "Finding",
    "FunctionInfo",
    "HOT_PATH_DIRS",
    "LintModule",
    "LintProject",
    "ProjectRule",
    "RngLineageRule",
    "Rule",
    "ShardDisjointRule",
    "ShmLifecycleRule",
    "WorkerPicklingRule",
    "filter_baseline",
    "iter_python_files",
    "lint_file",
    "lint_project",
    "lint_source",
    "load_baseline",
    "module_name_for_path",
    "rules_by_id",
    "run_lint",
    "to_sarif",
    "write_baseline",
]
