"""``repro.analysis`` — static contract auditing + runtime shm sanitizing.

Two complementary halves:

* **repro-lint** (this module's public API and ``python -m repro.analysis``):
  an ``ast``-based auditor enforcing the four repo contracts — R1
  determinism, R2 shared-memory lifecycle, R3 compiled-objective
  map-reduce purity, R4 worker-boundary pickling.  See
  ``docs/contracts.md`` for the contracts and the
  ``# repro-lint: disable=RULE`` escape hatch.
* **:mod:`repro.analysis.shm_sanitizer`**: a runtime leak detector that
  snapshots shared-memory segments around each test and fails the suite on
  anything left behind — including segments leaked by *subprocesses*.

The lint half is intentionally dependency-free (stdlib ``ast`` only) so CI
can audit the tree without installing numpy first.
"""

from __future__ import annotations

from .lint import (
    Finding,
    HOT_PATH_DIRS,
    LintModule,
    Rule,
    iter_python_files,
    lint_file,
    lint_source,
    run_lint,
)
from .rules import (
    DEFAULT_RULES,
    CompiledContractRule,
    DeterminismRule,
    ShmLifecycleRule,
    WorkerPicklingRule,
    rules_by_id,
)

__all__ = [
    "CompiledContractRule",
    "DEFAULT_RULES",
    "DeterminismRule",
    "Finding",
    "HOT_PATH_DIRS",
    "LintModule",
    "Rule",
    "ShmLifecycleRule",
    "WorkerPicklingRule",
    "iter_python_files",
    "lint_file",
    "lint_source",
    "rules_by_id",
    "run_lint",
]
