"""Runtime write-race sanitizer for the row-sharded fit plane.

The static half (repro-lint R6) proves every worker write is *indexed
through the worker's own shard descriptor*.  What it cannot prove is that
the descriptors themselves are numerically disjoint — a shard widened by a
single row produces writes that are perfectly descriptor-indexed and still
race.  This module is the runtime counterpart: an opt-in write ledger that
turns any overlap, and any parent read of a region no worker wrote, into a
hard :class:`WriteRaceError` at the exact step it happens.

Design
------

When ``REPRO_RACE_SANITIZER=1`` is set, :class:`~repro.core.parallel.
ShardedFitPlane` allocates two extra arrays *inside the plane's own
shared-memory segment*:

* ``sanitizer:positions`` — ``(num_shards, sample_size) int64``: each
  worker's scatter positions for the current step;
* ``sanitizer:counts`` — ``(num_shards,) int64``: how many positions each
  worker logged (``-1`` = shard not served this step).

Each worker writes **only its own row** of the ledger, so the ledger itself
is race-free by construction.  After every step the parent calls
:func:`verify_step` *before* consuming the scratch: a position covered by
two shards raises (overlap), as does a sample position covered by none
(the parent would read garbage).

The ledger also covers the distributed top-k region: each worker's top-k
candidate rows live in its own shard row of the ``topk:*`` arrays, and
:func:`verify_topk` cross-checks them against the scatter ledger — a shard
publishing more candidates than the merge limit allows, or candidates at
positions it never scattered, is flagged before the parent merges.

The knob is read once per plane construction, so enabling it mid-suite via
``monkeypatch.setenv`` affects exactly the planes built afterwards.  The
ledger adds one extra sample-sized scatter per worker per step — cheap
next to the objective math, but not free, hence opt-in.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np

__all__ = [
    "ENV_FLAG",
    "WriteRaceError",
    "enabled",
    "ledger_specs",
    "record_shard_write",
    "reset_step",
    "verify_step",
    "verify_topk",
]

#: Environment variable arming the sanitizer (``"1"`` = on).
ENV_FLAG = "REPRO_RACE_SANITIZER"

#: Ledger sentinel: a count of -1 means "this shard logged nothing".
_UNSERVED = -1


class WriteRaceError(RuntimeError):
    """Two shards wrote one sample position, or a position went unwritten."""


def enabled() -> bool:
    """Whether the environment arms the sanitizer for new planes."""
    return os.environ.get(ENV_FLAG, "") == "1"


def ledger_specs(
    num_shards: int, sample_size: int
) -> dict[str, tuple[str, tuple[int, ...]]]:
    """Plane specs for the ledger arrays (same format as the scratch specs)."""
    return {
        "sanitizer:positions": ("<i8", (num_shards, sample_size)),
        "sanitizer:counts": ("<i8", (num_shards,)),
    }


def reset_step(counts: np.ndarray) -> None:
    """Parent-side: mark every shard unserved before dispatching a step."""
    counts[...] = _UNSERVED


def record_shard_write(
    positions_log: np.ndarray,
    counts: np.ndarray,
    shard: int,
    positions: np.ndarray,
) -> None:
    """Worker-side: log this shard's scatter positions for the current step.

    Writes touch only row ``shard`` of each ledger array, so concurrent
    workers never contend.
    """
    count = int(positions.shape[0])
    positions_log[shard, :count] = positions
    counts[shard] = count


def verify_step(
    positions_log: np.ndarray,
    counts: np.ndarray,
    num_sampled: int,
    bounds: Mapping[int, tuple[int, int]] | tuple[tuple[int, int], ...],
) -> None:
    """Parent-side: prove this step's writes were disjoint and complete.

    Must run *before* the parent consumes the scratch: a failure means the
    scratch contents are untrustworthy.  Raises :class:`WriteRaceError`
    naming the offending shards and their row ranges.
    """
    num_shards = counts.shape[0]
    coverage = np.zeros(num_sampled, dtype=np.int64)
    for shard in range(num_shards):
        count = int(counts[shard])
        if count == _UNSERVED:
            raise WriteRaceError(
                f"shard {shard} {tuple(bounds[shard])} recorded no write ledger "
                "for this step; its scratch contribution is unaccounted for"
            )
        positions = positions_log[shard, :count]
        if count and (positions.min() < 0 or positions.max() >= num_sampled):
            raise WriteRaceError(
                f"shard {shard} {tuple(bounds[shard])} scattered outside the "
                f"sample: positions span [{positions.min()}, {positions.max()}] "
                f"but the step sampled {num_sampled} rows"
            )
        np.add.at(coverage, positions, 1)
    overlapped = np.flatnonzero(coverage > 1)
    if overlapped.size:
        position = int(overlapped[0])
        writers = [
            shard
            for shard in range(num_shards)
            if position in positions_log[shard, : int(counts[shard])]
        ]
        raise WriteRaceError(
            f"write race: sample position {position} was written by shards "
            f"{writers} (row ranges {[tuple(bounds[s]) for s in writers]}); "
            f"{overlapped.size} overlapping position(s) in total — shard "
            "bounds are not disjoint"
        )
    missing = np.flatnonzero(coverage == 0)
    if missing.size:
        raise WriteRaceError(
            f"parent would read {missing.size} sample position(s) no worker "
            f"wrote (first: {int(missing[0])}); shard bounds do not cover "
            "the population"
        )


def verify_topk(
    positions_log: np.ndarray,
    counts: np.ndarray,
    topk_positions: np.ndarray,
    topk_counts: np.ndarray,
    limit: int,
) -> None:
    """Parent-side: prove the distributed top-k region is shard-consistent.

    Runs after :func:`verify_step` (so the scatter ledger itself is already
    proven disjoint and complete) and before the parent merges candidates.
    For each shard, the published candidate count must be exactly
    ``min(rows the shard scattered, limit)`` — where ``limit`` is the
    global selection size the merge keeps per shard — and every candidate
    position must be one the shard actually scattered this step.  A foreign
    position means a worker read (and ranked) another shard's rows; a wrong
    count means the parent would merge stale candidates from a previous
    step.  Raises :class:`WriteRaceError` naming the offending shard.
    """
    num_shards = counts.shape[0]
    for shard in range(num_shards):
        written = int(counts[shard])
        candidate_count = int(topk_counts[shard])
        expected = min(written, int(limit))
        if candidate_count != expected:
            raise WriteRaceError(
                f"top-k race: shard {shard} published {candidate_count} "
                f"candidate(s) but scattered {written} row(s) under merge "
                f"limit {limit} (expected {expected}); the parent would "
                "merge stale or truncated candidates"
            )
        candidates = topk_positions[shard, :candidate_count]
        scattered = positions_log[shard, :written]
        foreign = candidates[~np.isin(candidates, scattered)]
        if foreign.size:
            raise WriteRaceError(
                f"top-k race: shard {shard} published candidate position(s) "
                f"{foreign.tolist()} it never scattered this step — a worker "
                "ranked rows outside its own shard"
            )
