"""The ``repro-lint`` engine: parse files, run rules, filter disables.

The contracts this package audits are *repo-specific* — they encode the
bitwise-identity and shared-memory discipline documented in
``docs/contracts.md`` rather than general style.  The engine is therefore
deliberately small: a :class:`LintModule` wraps one parsed source file with
the cross-rule conveniences every rule needs (parent links, an import table
for resolving dotted call names, the disable-comment map, hot-path
classification), and a :class:`Rule` yields :class:`Finding` objects.

Nothing here imports numpy or the rest of :mod:`repro`; the auditor must be
runnable in a bare interpreter so CI can lint before heavier dependencies
are even importable.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "HOT_PATH_DIRS",
    "LintModule",
    "Rule",
    "ancestors",
    "dotted_name",
    "iter_python_files",
    "lint_file",
    "lint_source",
    "run_lint",
]

#: ``# repro-lint: disable=R1,R2`` (or ``disable=all``) suppresses findings
#: reported on the same source line.
_DISABLE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Directories whose files count as determinism-critical hot paths (R1).
HOT_PATH_DIRS = frozenset({"core", "matching", "ranking"})


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    def format(self, style: str = "text") -> str:
        """Render for the terminal (``text``) or as a CI annotation (``github``)."""
        if style == "github":
            return (
                f"::error file={self.path},line={self.line},"
                f"title=repro-lint {self.rule}::{self.message}"
            )
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Walk parent links (installed by :class:`LintModule`) to the module."""
    current = getattr(node, "parent", None)
    while current is not None:
        yield current
        current = getattr(current, "parent", None)


def _build_import_table(tree: ast.Module) -> dict[str, str]:
    """Map local names to the fully dotted import they refer to.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random import
    default_rng`` maps ``default_rng -> numpy.random.default_rng``.  Relative
    imports keep their module path without the package prefix, which is
    enough for rules matching on suffixes.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the root name ``a`` only.
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _disabled_lines(source: str) -> dict[int, frozenset[str]]:
    disabled: dict[int, frozenset[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE.search(line)
        if match:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                disabled[number] = ids
    return disabled


class LintModule:
    """One parsed source file plus the shared context rules operate on."""

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = str(path)
        self.source = source
        self.tree = ast.parse(source, filename=self.path)
        self.tree.parent = None  # type: ignore[attr-defined]
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child.parent = node  # type: ignore[attr-defined]
        self.imports = _build_import_table(self.tree)
        self.disabled = _disabled_lines(source)
        #: R1 only fires on determinism-critical directories.
        self.is_hot_path = any(part in HOT_PATH_DIRS for part in Path(self.path).parts)

    def resolve_call(self, func: ast.AST) -> str | None:
        """Fully qualified dotted name of a call target, via the import table.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; names rooted in local variables resolve to
        ``None`` (we cannot know what they are, so rules must not guess).
        """
        name = dotted_name(func)
        if name is None:
            return None
        root, _, rest = name.partition(".")
        resolved_root = self.imports.get(root)
        if resolved_root is None:
            return None
        return f"{resolved_root}.{rest}" if rest else resolved_root

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for ancestor in ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def is_disabled(self, finding: Finding) -> bool:
        ids = self.disabled.get(finding.line)
        return bool(ids) and (finding.rule in ids or "all" in ids)


class Rule(abc.ABC):
    """A pluggable contract check.  Subclasses set ``id`` and ``title``."""

    id: str = ""
    title: str = ""

    @abc.abstractmethod
    def check(self, module: LintModule) -> Iterator[Finding]:
        """Yield findings for one parsed module."""

    def finding(self, module: LintModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            rule=self.id,
            message=message,
        )


def iter_python_files(
    paths: Iterable[str | Path], exclude: Iterable[str | Path] = ()
) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    ``exclude`` entries are path prefixes (files or directories) pruned
    from the expansion — e.g. the deliberately-bad lint fixture corpus.
    """
    pruned = [Path(entry) for entry in exclude]
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = path.rglob("*.py")
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if any(prefix == candidate or prefix in candidate.parents for prefix in pruned):
                continue
            seen.add(candidate)
    return sorted(seen)


def lint_source(
    source: str,
    path: str | Path = "<string>",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint a source string as if it lived at ``path`` (drives hot-path R1)."""
    if rules is None:
        from .rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    module = LintModule(path, source)
    findings = [
        finding
        for rule in rules
        for finding in rule.check(module)
        if not module.is_disabled(finding)
    ]
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    source = Path(path).read_text()
    try:
        return lint_source(source, path=path, rules=rules)
    except SyntaxError as error:
        return [
            Finding(
                path=str(path),
                line=error.lineno or 1,
                rule="parse",
                message=f"could not parse file: {error.msg}",
            )
        ]


def run_lint(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    exclude: Iterable[str | Path] = (),
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` and return sorted findings."""
    findings: list[Finding] = []
    for path in iter_python_files(paths, exclude=exclude):
        findings.extend(lint_file(path, rules=rules))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
