"""The ``repro-lint`` engine: parse files, run rules, filter disables.

The contracts this package audits are *repo-specific* — they encode the
bitwise-identity and shared-memory discipline documented in
``docs/contracts.md`` rather than general style.  The engine is therefore
deliberately small: a :class:`LintModule` wraps one parsed source file with
the cross-rule conveniences every rule needs (parent links, an import table
for resolving dotted call names, the disable-comment map, hot-path
classification), and a :class:`Rule` yields :class:`Finding` objects.

Nothing here imports numpy or the rest of :mod:`repro`; the auditor must be
runnable in a bare interpreter so CI can lint before heavier dependencies
are even importable.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Finding",
    "HOT_PATH_DIRS",
    "LintModule",
    "LintProject",
    "ProjectRule",
    "Rule",
    "ancestors",
    "dotted_name",
    "iter_python_files",
    "lint_file",
    "lint_project",
    "lint_source",
    "run_lint",
]

#: ``# repro-lint: disable=R1,R2`` (or ``disable=all``) suppresses findings
#: reported on the same source line.
_DISABLE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Directories whose files count as determinism-critical hot paths (R1).
#: ``baselines`` and ``experiments`` joined in PR 7: their outputs feed the
#: paper's comparison tables, so hidden-global draws there corrupt results
#: just as silently as in the optimizer itself.  ``scenarios`` joined with
#: the Monte-Carlo stress harness: its markets seed the golden differential
#: corpus, so an unseeded draw there silently invalidates replay.
HOT_PATH_DIRS = frozenset(
    {"core", "matching", "ranking", "baselines", "experiments", "scenarios"}
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    def format(self, style: str = "text") -> str:
        """Render for the terminal (``text``) or as a CI annotation (``github``)."""
        if style == "github":
            return (
                f"::error file={self.path},line={self.line},"
                f"title=repro-lint {self.rule}::{self.message}"
            )
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Walk parent links (installed by :class:`LintModule`) to the module."""
    current = getattr(node, "parent", None)
    while current is not None:
        yield current
        current = getattr(current, "parent", None)


def _build_import_table(tree: ast.Module) -> dict[str, str]:
    """Map local names to the fully dotted import they refer to.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random import
    default_rng`` maps ``default_rng -> numpy.random.default_rng``.  Relative
    imports keep their module path without the package prefix, which is
    enough for rules matching on suffixes.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the root name ``a`` only.
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            # ``from . import bonus as b`` has no module; the bare name is
            # still a usable suffix for the call graph's dotted-suffix join.
            prefix = f"{node.module}." if node.module else ""
            for alias in node.names:
                table[alias.asname or alias.name] = f"{prefix}{alias.name}"
    return table


def _disabled_lines(source: str) -> dict[int, frozenset[str]]:
    disabled: dict[int, frozenset[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE.search(line)
        if match:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                disabled[number] = ids
    return disabled


class LintModule:
    """One parsed source file plus the shared context rules operate on."""

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = str(path)
        self.source = source
        self.tree = ast.parse(source, filename=self.path)
        self.tree.parent = None  # type: ignore[attr-defined]
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child.parent = node  # type: ignore[attr-defined]
        self.imports = _build_import_table(self.tree)
        self.disabled = _disabled_lines(source)
        #: R1 only fires on determinism-critical directories.
        self.is_hot_path = any(part in HOT_PATH_DIRS for part in Path(self.path).parts)

    def resolve_call(self, func: ast.AST) -> str | None:
        """Fully qualified dotted name of a call target, via the import table.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; names rooted in local variables resolve to
        ``None`` (we cannot know what they are, so rules must not guess).
        """
        name = dotted_name(func)
        if name is None:
            return None
        root, _, rest = name.partition(".")
        resolved_root = self.imports.get(root)
        if resolved_root is None:
            return None
        return f"{resolved_root}.{rest}" if rest else resolved_root

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for ancestor in ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def is_disabled(self, finding: Finding) -> bool:
        ids = self.disabled.get(finding.line)
        return bool(ids) and (finding.rule in ids or "all" in ids)


class LintProject:
    """Every parsed module of one lint run, plus the lazily built call graph.

    Module-scoped rules (R1–R4) see one :class:`LintModule` at a time;
    project-scoped rules (R5, R6) see the whole project so they can follow
    calls across files.  A single-file lint (``lint_source``) is simply a
    one-module project, which is what lets the interprocedural rules run on
    the fixture corpus unchanged.
    """

    def __init__(self, modules: Sequence[LintModule]) -> None:
        self.modules = list(modules)
        self.by_path = {module.path: module for module in self.modules}
        self._callgraph = None

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "LintProject":
        """Build a project straight from ``{path: source}`` (test-friendly)."""
        return cls([LintModule(path, source) for path, source in sources.items()])

    @property
    def callgraph(self):
        """The project call graph, built on first use and cached."""
        if self._callgraph is None:
            from .callgraph import CallGraph  # deferred: callgraph imports lint

            self._callgraph = CallGraph(self.modules)
        return self._callgraph


class Rule(abc.ABC):
    """A pluggable contract check.  Subclasses set ``id`` and ``title``."""

    id: str = ""
    title: str = ""
    #: ``"module"`` rules see one file at a time through :meth:`check`;
    #: ``"project"`` rules see every file at once through ``check_project``.
    scope: str = "module"

    @abc.abstractmethod
    def check(self, module: LintModule) -> Iterator[Finding]:
        """Yield findings for one parsed module."""

    def finding(self, module: LintModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            rule=self.id,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that audits the whole project at once (interprocedural)."""

    scope = "project"

    def check(self, module: LintModule) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError("project-scoped rules run through check_project")

    @abc.abstractmethod
    def check_project(self, project: LintProject) -> Iterator[Finding]:
        """Yield findings across the project's modules."""


def iter_python_files(
    paths: Iterable[str | Path], exclude: Iterable[str | Path] = ()
) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    ``exclude`` entries are path prefixes (files or directories) pruned
    from the expansion — e.g. the deliberately-bad lint fixture corpus.
    """
    pruned = [Path(entry) for entry in exclude]
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = path.rglob("*.py")
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if any(prefix == candidate or prefix in candidate.parents for prefix in pruned):
                continue
            seen.add(candidate)
    return sorted(seen)


def _default_rules() -> Sequence[Rule]:
    from .rules import DEFAULT_RULES

    return DEFAULT_RULES


def lint_project(project: LintProject, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Run module- and project-scoped rules over a parsed project."""
    if rules is None:
        rules = _default_rules()
    module_rules = [rule for rule in rules if rule.scope == "module"]
    project_rules = [rule for rule in rules if rule.scope == "project"]
    findings: list[Finding] = []
    for module in project.modules:
        for rule in module_rules:
            findings.extend(
                finding
                for finding in rule.check(module)
                if not module.is_disabled(finding)
            )
    for rule in project_rules:
        for finding in rule.check_project(project):
            owner = project.by_path.get(finding.path)
            if owner is None or not owner.is_disabled(finding):
                findings.append(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def lint_source(
    source: str,
    path: str | Path = "<string>",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint a source string as if it lived at ``path`` (drives hot-path R1).

    The string forms a one-module project, so the interprocedural rules see
    whatever call graph the single file defines.
    """
    return lint_project(LintProject([LintModule(path, source)]), rules=rules)


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    source = Path(path).read_text()
    try:
        return lint_source(source, path=path, rules=rules)
    except SyntaxError as error:
        return [_parse_finding(path, error)]


def _parse_finding(path: str | Path, error: SyntaxError) -> Finding:
    return Finding(
        path=str(path),
        line=error.lineno or 1,
        rule="parse",
        message=f"could not parse file: {error.msg}",
    )


def run_lint(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    exclude: Iterable[str | Path] = (),
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` and return sorted findings.

    All parseable files form **one** project, so the interprocedural rules
    (R5/R6) follow calls across every file in the run.
    """
    findings: list[Finding] = []
    modules: list[LintModule] = []
    for path in iter_python_files(paths, exclude=exclude):
        try:
            modules.append(LintModule(path, Path(path).read_text()))
        except SyntaxError as error:
            findings.append(_parse_finding(path, error))
    findings.extend(lint_project(LintProject(modules), rules=rules))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
