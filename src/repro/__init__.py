"""repro — reproduction of *Explainable Disparity Compensation for Efficient Fair Ranking*.

The package is organized as:

* :mod:`repro.core` — the paper's contribution: bonus-point vectors, the
  Disparity metric (plain and log-discounted), the DCA optimizer, pluggable
  fairness objectives, the utility/fairness calibration helpers, and the
  batched/parallel fitting backends (:mod:`repro.core.parallel`).
* :mod:`repro.tabular` — a small columnar-table substrate (pandas stand-in).
* :mod:`repro.ranking` — score-based ranking functions and top-k selection.
* :mod:`repro.datasets` — calibrated synthetic NYC-schools and COMPAS data.
* :mod:`repro.matching` — deferred-acceptance matching (school admissions).
* :mod:`repro.metrics` — nDCG, exposure/DDP, disparate impact, FPR gaps.
* :mod:`repro.baselines` — quota set-asides, FA*IR, Multinomial FA*IR, (Δ+2).
* :mod:`repro.experiments` — one module per paper table/figure plus a CLI.

Quickstart::

    from repro import DCA, DCAConfig
    from repro.datasets import (
        SCHOOL_FAIRNESS_ATTRIBUTES,
        load_school_cohorts,
        school_admission_rubric,
    )

    train, test = load_school_cohorts()
    dca = DCA(SCHOOL_FAIRNESS_ATTRIBUTES, school_admission_rubric(), k=0.05)
    result = dca.fit(train.table)
    print(result.summary())
"""

from .core import (
    DCA,
    Adam,
    BonusVector,
    CoreDCA,
    DCAConfig,
    DCARefinement,
    DCAResult,
    DisparateImpactObjective,
    DisparityCalculator,
    DisparityObjective,
    DisparityResult,
    ExposureGapObjective,
    FairnessObjective,
    FalsePositiveRateObjective,
    FullDCA,
    LogDiscountedDisparity,
    LogDiscountedDisparityObjective,
    fit_bonus_points,
)
from .ranking import Ranking, ScoreFunction, WeightedSumScore, rank_table
from .tabular import Table

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Table",
    "Ranking",
    "rank_table",
    "ScoreFunction",
    "WeightedSumScore",
    "DCA",
    "CoreDCA",
    "DCARefinement",
    "FullDCA",
    "DCAConfig",
    "DCAResult",
    "BonusVector",
    "Adam",
    "DisparityCalculator",
    "DisparityResult",
    "LogDiscountedDisparity",
    "FairnessObjective",
    "DisparityObjective",
    "LogDiscountedDisparityObjective",
    "DisparateImpactObjective",
    "FalsePositiveRateObjective",
    "ExposureGapObjective",
    "fit_bonus_points",
]
