"""Ranking utility: normalized discounted cumulative gain (nDCG).

In fair-ranking applications utility measures how far the *compensated*
ranking moves away from the original one.  Following the paper (and Zehlike
et al.), the gain of an object is its original (uncompensated) score and the
ideal DCG is the DCG of the original ranking itself, so an nDCG of 1 means
the fairness intervention did not change the top of the ranking at all.
"""

from __future__ import annotations

import numpy as np

from ..ranking import selection_size

__all__ = ["dcg", "ndcg_at_k", "ndcg_curve"]


def _log_discounts(count: int) -> np.ndarray:
    positions = np.arange(1, count + 1, dtype=float)
    return 1.0 / np.log2(positions + 1.0)


def dcg(gains_in_rank_order: np.ndarray) -> float:
    """Discounted cumulative gain of a gain sequence already in rank order."""
    gains = np.asarray(gains_in_rank_order, dtype=float)
    if gains.size == 0:
        return 0.0
    return float(np.sum(gains * _log_discounts(gains.size)))


def ndcg_at_k(base_scores: np.ndarray, new_scores: np.ndarray, k: float) -> float:
    """nDCG of the top-k ranking induced by ``new_scores``.

    Gains are defined as ``base_scores - base_scores.min()`` and the ideal
    ordering is the original ranking.  The shift makes the gains non-negative
    so that lower-is-better scores negated upstream (e.g. the COMPAS decile
    path) produce meaningful gains, and it makes the metric invariant to
    translating ``base_scores``.  Note that the shift is part of the metric's
    *definition*, not a no-op: the nDCG **ratio** is not shift-invariant, so
    the value returned here generally differs from an nDCG computed on the
    raw (unshifted) gains — only the ranking of candidate orderings by DCG is
    preserved, with the worst-scored object pinned to gain 0.

    Parameters
    ----------
    base_scores:
        Uncompensated scores; these define both the gains and the ideal order.
    new_scores:
        Compensated scores; these define the evaluated order.
    k:
        Selection fraction in (0, 1].
    """
    base_scores = np.asarray(base_scores, dtype=float)
    new_scores = np.asarray(new_scores, dtype=float)
    if base_scores.shape != new_scores.shape:
        raise ValueError(
            f"score arrays have different shapes: {base_scores.shape} vs {new_scores.shape}"
        )
    n = base_scores.shape[0]
    if n == 0:
        raise ValueError("cannot compute nDCG over zero objects")
    size = selection_size(n, k)
    gains = base_scores - base_scores.min()

    new_order = np.lexsort((np.arange(n), -new_scores))[:size]
    ideal_order = np.lexsort((np.arange(n), -base_scores))[:size]
    ideal = dcg(gains[ideal_order])
    if ideal == 0.0:
        return 1.0
    return float(dcg(gains[new_order]) / ideal)


def ndcg_curve(
    base_scores: np.ndarray, new_scores: np.ndarray, k_values: list[float] | tuple[float, ...]
) -> dict[float, float]:
    """nDCG@k for each selection fraction in ``k_values`` (Figure 1)."""
    return {float(k): ndcg_at_k(base_scores, new_scores, float(k)) for k in k_values}
