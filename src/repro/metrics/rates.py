"""Error-rate metrics: false positive / false negative rates and equalized-odds gaps.

The COMPAS experiments (Figure 10b) measure how unevenly the tool's *false
positive rate* — the share of defendants who did **not** re-offend but were
still flagged high-risk — is distributed across racial groups, and show that
DCA can be pointed at that gap directly.  These helpers compute the rates and
gaps given a selection mask and a ground-truth label column.

Conventions: ``selected`` marks the favourable outcome (e.g. judged low-risk
and released); a *predicted positive* is therefore an unselected object, and a
*false positive* is an unselected object whose true label is negative.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ranking import selection_mask
from ..tabular import Table

__all__ = [
    "false_positive_rate",
    "false_negative_rate",
    "group_false_positive_rates",
    "fpr_gaps",
    "equalized_odds_gap",
]


def _validate(selected: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    selected = np.asarray(selected, dtype=bool)
    labels = np.asarray(labels, dtype=bool)
    if selected.shape != labels.shape:
        raise ValueError(f"selected has shape {selected.shape}, labels {labels.shape}")
    return selected, labels


def false_positive_rate(selected: np.ndarray, labels: np.ndarray) -> float:
    """P(flagged | true negative): share of actual negatives that were not selected."""
    selected, labels = _validate(selected, labels)
    negatives = ~labels
    if negatives.sum() == 0:
        return 0.0
    flagged = ~selected
    return float(flagged[negatives].mean())


def false_negative_rate(selected: np.ndarray, labels: np.ndarray) -> float:
    """P(not flagged | true positive): share of actual positives that were selected."""
    selected, labels = _validate(selected, labels)
    positives = labels
    if positives.sum() == 0:
        return 0.0
    return float(selected[positives].mean())


def group_false_positive_rates(
    table: Table,
    scores: np.ndarray,
    attribute_names: Sequence[str],
    label_column: str,
    k: float,
) -> dict[str, float]:
    """FPR of the top-k selection for each binary group column (Figure 10b's series)."""
    selected = selection_mask(np.asarray(scores, dtype=float), k)
    labels = table.numeric(label_column) > 0.5
    rates: dict[str, float] = {}
    for name in attribute_names:
        membership = table.numeric(name) > 0.5
        group_negatives = membership & ~labels
        if group_negatives.sum() == 0:
            rates[name] = 0.0
            continue
        rates[name] = float((~selected)[group_negatives].mean())
    return rates


def fpr_gaps(
    table: Table,
    scores: np.ndarray,
    attribute_names: Sequence[str],
    label_column: str,
    k: float,
) -> dict[str, float]:
    """Per-group FPR minus the overall FPR (positive = the group is over-flagged)."""
    selected = selection_mask(np.asarray(scores, dtype=float), k)
    labels = table.numeric(label_column) > 0.5
    overall = false_positive_rate(selected, labels)
    per_group = group_false_positive_rates(table, scores, attribute_names, label_column, k)
    return {name: rate - overall for name, rate in per_group.items()}


def equalized_odds_gap(
    table: Table,
    scores: np.ndarray,
    attribute_names: Sequence[str],
    label_column: str,
    k: float,
) -> float:
    """Largest absolute per-group FPR deviation from the overall FPR."""
    gaps = fpr_gaps(table, scores, attribute_names, label_column, k)
    return float(max(abs(v) for v in gaps.values())) if gaps else 0.0
