"""Fairness and utility metrics used across the evaluation."""

from .disparate_impact import (
    disparate_impact,
    disparate_impact_by_attribute,
    selection_rates,
)
from .exposure import average_group_exposure, ddp, group_exposure, position_values
from .ndcg import dcg, ndcg_at_k, ndcg_curve
from .parity import parity_report, representation, representation_gap, selection_rate
from .rates import (
    equalized_odds_gap,
    false_negative_rate,
    false_positive_rate,
    fpr_gaps,
    group_false_positive_rates,
)

__all__ = [
    "dcg",
    "ndcg_at_k",
    "ndcg_curve",
    "position_values",
    "group_exposure",
    "average_group_exposure",
    "ddp",
    "disparate_impact",
    "disparate_impact_by_attribute",
    "selection_rates",
    "false_positive_rate",
    "false_negative_rate",
    "group_false_positive_rates",
    "fpr_gaps",
    "equalized_odds_gap",
    "selection_rate",
    "representation",
    "representation_gap",
    "parity_report",
]
