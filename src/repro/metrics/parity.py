"""Statistical-parity helpers: selection rates and representation gaps.

The disparity metric (Definition 3) measures distance from statistical
parity.  These small helpers report the underlying quantities in the units
stakeholders reason about — "the population is 30% low income but the
selected set is only 20% low income" — and are used by the examples and the
experiment tables.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ranking import selection_mask
from ..tabular import Table

__all__ = [
    "selection_rate",
    "representation",
    "representation_gap",
    "parity_report",
]


def selection_rate(membership: np.ndarray, selected: np.ndarray) -> float:
    """Share of the group that is selected."""
    membership = np.asarray(membership, dtype=bool)
    selected = np.asarray(selected, dtype=bool)
    if membership.sum() == 0:
        return 0.0
    return float(selected[membership].mean())


def representation(
    table: Table, scores: np.ndarray, attribute: str, k: float
) -> tuple[float, float]:
    """(population share, selected-set share) of one binary attribute."""
    selected = selection_mask(np.asarray(scores, dtype=float), k)
    values = table.numeric(attribute)
    population_share = float(np.mean(values > 0.5))
    selected_share = float(np.mean(values[selected] > 0.5)) if selected.any() else 0.0
    return population_share, selected_share


def representation_gap(table: Table, scores: np.ndarray, attribute: str, k: float) -> float:
    """Selected-set share minus population share (the binary-attribute disparity)."""
    population_share, selected_share = representation(table, scores, attribute, k)
    return selected_share - population_share


def parity_report(
    table: Table, scores: np.ndarray, attribute_names: Sequence[str], k: float
) -> dict[str, dict[str, float]]:
    """Population vs selected representation for every binary fairness attribute."""
    report: dict[str, dict[str, float]] = {}
    for name in attribute_names:
        population_share, selected_share = representation(table, scores, name, k)
        report[name] = {
            "population": population_share,
            "selected": selected_share,
            "gap": selected_share - population_share,
        }
    return report
