"""Exposure-based fairness metrics (Section VI-C4).

Exposure of a group in a ranking is the sum, over the group's members, of the
position value ``1 / log2(rank + 1)`` (Gupta et al., 2021).  The demographic
disparity constraint (DDP) is the largest pairwise difference between the
groups' *average* exposures; zero means every group receives the same average
exposure and the ranking is considered fair under this metric.  DDP values
are not comparable across datasets of different sizes, which is why the paper
reports only the before/after ratio.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..tabular import Table

__all__ = ["position_values", "group_exposure", "average_group_exposure", "ddp"]


def position_values(num_objects: int) -> np.ndarray:
    """The value of each 1-based rank position: ``1 / log2(rank + 1)``."""
    if num_objects <= 0:
        raise ValueError(f"num_objects must be positive, got {num_objects}")
    ranks = np.arange(1, num_objects + 1, dtype=float)
    return 1.0 / np.log2(ranks + 1.0)


def _ranks_from_scores(scores: np.ndarray) -> np.ndarray:
    scores = np.asarray(scores, dtype=float)
    n = scores.shape[0]
    order = np.lexsort((np.arange(n), -scores))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(1, n + 1)
    return ranks


def group_exposure(scores: np.ndarray, membership: np.ndarray) -> float:
    """Total exposure of the group whose ``membership`` mask is True."""
    membership = np.asarray(membership, dtype=bool)
    scores = np.asarray(scores, dtype=float)
    if membership.shape != scores.shape:
        raise ValueError(
            f"membership has shape {membership.shape}, expected {scores.shape}"
        )
    ranks = _ranks_from_scores(scores)
    values = 1.0 / np.log2(ranks + 1.0)
    return float(values[membership].sum())


def average_group_exposure(scores: np.ndarray, membership: np.ndarray) -> float:
    """Exposure of the group divided by the group size (``exposure(G|R) / |G|``)."""
    membership = np.asarray(membership, dtype=bool)
    size = int(membership.sum())
    if size == 0:
        raise ValueError("the group is empty; average exposure is undefined")
    return group_exposure(scores, membership) / size


def ddp(
    table: Table,
    scores: np.ndarray,
    group_columns: Sequence[str],
    include_complements: bool = False,
) -> float:
    """Demographic disparity (DDP): max pairwise average-exposure difference.

    ``group_columns`` are binary membership columns; each defines one group
    (objects may belong to several).  Groups with no members are skipped.

    With ``include_complements=True`` every column additionally contributes
    its complement group (the objects *outside* the protected group), built
    on the fly from the membership mask.  This is the protected-vs-complement
    comparison of the exposure experiment: a ranking that under-exposes a
    protected group relative to everyone else registers a disparity even when
    the protected groups happen to have similar average exposures among
    themselves.  Since DDP is a max–min over group averages, adding the
    complements can only keep or increase the value.
    """
    if len(group_columns) < 2 and not include_complements:
        raise ValueError("DDP needs at least two groups to compare")
    memberships: list[np.ndarray] = []
    for name in group_columns:
        membership = table.numeric(name) > 0.5
        memberships.append(membership)
        if include_complements:
            memberships.append(~membership)
    averages: list[float] = []
    for membership in memberships:
        if membership.sum() == 0:
            continue
        averages.append(average_group_exposure(scores, membership))
    if len(averages) < 2:
        raise ValueError("fewer than two non-empty groups; DDP is undefined")
    return float(max(averages) - min(averages))
