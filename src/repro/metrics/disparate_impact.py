"""Disparate impact: selection-rate ratios between protected and unprotected groups.

Disparate impact (Zafar et al., as used in Section VI-C5) for one binary
fairness attribute F is::

    DI = min( P(O=1 | F=0) / P(O=1 | F=1),  P(O=1 | F=1) / P(O=1 | F=0) )

where O=1 means the object is selected.  DI lies in [0, 1]; 1 means the
groups are selected at identical rates (the classic "80% rule" flags DI below
0.8).  The scaled-to-[-1, 1] version used to drive DCA lives in
:class:`repro.core.objectives.DisparateImpactObjective`; this module provides
the plain reporting metric.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ranking import selection_mask
from ..tabular import Table

__all__ = ["selection_rates", "disparate_impact", "disparate_impact_by_attribute"]


def selection_rates(membership: np.ndarray, selected: np.ndarray) -> tuple[float, float]:
    """Selection rates (in-group, out-of-group) for one binary attribute."""
    membership = np.asarray(membership, dtype=bool)
    selected = np.asarray(selected, dtype=bool)
    if membership.shape != selected.shape:
        raise ValueError(
            f"membership has shape {membership.shape}, expected {selected.shape}"
        )
    if membership.sum() == 0 or (~membership).sum() == 0:
        raise ValueError("both the protected and unprotected groups must be non-empty")
    return float(selected[membership].mean()), float(selected[~membership].mean())


def disparate_impact(membership: np.ndarray, selected: np.ndarray) -> float:
    """The DI ratio in [0, 1] for one binary attribute (1 = parity)."""
    rate_in, rate_out = selection_rates(membership, selected)
    if rate_in == 0.0 and rate_out == 0.0:
        return 1.0
    high, low = max(rate_in, rate_out), min(rate_in, rate_out)
    if high == 0.0:
        return 1.0
    return float(low / high)


def disparate_impact_by_attribute(
    table: Table,
    scores: np.ndarray,
    attribute_names: Sequence[str],
    k: float,
) -> dict[str, float]:
    """DI of the top-k selection for each binary fairness attribute."""
    selected = selection_mask(np.asarray(scores, dtype=float), k)
    result: dict[str, float] = {}
    for name in attribute_names:
        membership = table.numeric(name) > 0.5
        if membership.sum() == 0 or (~membership).sum() == 0:
            result[name] = 1.0
            continue
        result[name] = disparate_impact(membership, selected)
    return result
