"""Quota / set-aside baselines (Section VI-C1).

Real-world school systems mostly address disparity with *set-asides*: a fixed
share of the seats is reserved for members of one protected group (NYC's
low-income set-aside being the canonical example).  The paper compares DCA
against "a simple quota system" in which one single quota is applied for all
the different fairness dimensions, and notes that quotas become cumbersome as
soon as several dimensions overlap.

Two selection procedures are provided:

* :func:`quota_selection` — a single-attribute set-aside: a share of the
  selection is reserved for the highest-scoring members of one group, the
  remaining seats go to the highest-scoring objects overall.
* :func:`multi_quota_selection` — the "one quota per dimension" extension:
  each attribute gets its own reserved share, processed in order of the
  largest shortfall first; objects satisfying several dimensions count toward
  every quota they satisfy (the overlapping-reserves policy question the
  paper highlights).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..ranking import selection_size
from ..tabular import Table

__all__ = ["quota_selection", "multi_quota_selection"]


def _order_by_score(scores: np.ndarray) -> np.ndarray:
    return np.lexsort((np.arange(scores.shape[0]), -scores))


def quota_selection(
    table: Table,
    scores: np.ndarray,
    k: float,
    attribute: str,
    reserved_share: float | None = None,
) -> np.ndarray:
    """Top-k selection with a set-aside for one binary attribute.

    Parameters
    ----------
    table, scores, k:
        The population, its ranking scores, and the selection fraction.
    attribute:
        Binary fairness attribute benefiting from the set-aside.
    reserved_share:
        Share of the selection reserved for the group.  Defaults to the
        group's population share, i.e. the statistical-parity target.

    Returns
    -------
    numpy.ndarray
        Boolean selection mask over the rows of ``table``.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.shape != (table.num_rows,):
        raise ValueError(f"scores have shape {scores.shape}, expected ({table.num_rows},)")
    membership = table.numeric(attribute) > 0.5
    if reserved_share is None:
        reserved_share = float(membership.mean())
    if not 0.0 <= reserved_share <= 1.0:
        raise ValueError(f"reserved_share must be in [0, 1], got {reserved_share}")

    total_seats = selection_size(table.num_rows, k)
    reserved_seats = min(int(round(reserved_share * total_seats)), int(membership.sum()))

    order = _order_by_score(scores)
    selected = np.zeros(table.num_rows, dtype=bool)

    # Fill the reserved seats with the group's best-ranked members.
    group_order = order[membership[order]]
    selected[group_order[:reserved_seats]] = True

    # Fill the remaining seats with the best-ranked objects not yet selected.
    remaining = total_seats - int(selected.sum())
    for index in order:
        if remaining == 0:
            break
        if not selected[index]:
            selected[index] = True
            remaining -= 1
    return selected


def multi_quota_selection(
    table: Table,
    scores: np.ndarray,
    k: float,
    reserved_shares: Mapping[str, float] | Sequence[str],
) -> np.ndarray:
    """Top-k selection with one set-aside per fairness dimension.

    ``reserved_shares`` maps each attribute to its reserved share; passing a
    plain sequence of attribute names reserves each group's population share.
    Objects belonging to several protected groups count toward *all* of them
    (the overlapping-reserves interpretation), which is what makes the policy
    hard to reason about and motivates the bonus-point approach.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.shape != (table.num_rows,):
        raise ValueError(f"scores have shape {scores.shape}, expected ({table.num_rows},)")
    if not isinstance(reserved_shares, Mapping):
        reserved_shares = {
            name: float(np.mean(table.numeric(name) > 0.5)) for name in reserved_shares
        }
    if not reserved_shares:
        raise ValueError("at least one quota attribute is required")

    total_seats = selection_size(table.num_rows, k)
    order = _order_by_score(scores)
    memberships = {
        name: table.numeric(name) > 0.5 for name in reserved_shares
    }
    targets = {
        name: min(int(round(share * total_seats)), int(memberships[name].sum()))
        for name, share in reserved_shares.items()
    }

    selected = np.zeros(table.num_rows, dtype=bool)
    counts = {name: 0 for name in reserved_shares}

    def seats_taken() -> int:
        return int(selected.sum())

    # Repeatedly serve the dimension with the largest remaining shortfall,
    # admitting its best unselected member; stop when no shortfall remains.
    while seats_taken() < total_seats:
        shortfalls = {
            name: targets[name] - counts[name] for name in reserved_shares
        }
        name, shortfall = max(shortfalls.items(), key=lambda item: item[1])
        if shortfall <= 0:
            break
        candidate = next(
            (index for index in order if memberships[name][index] and not selected[index]),
            None,
        )
        if candidate is None:
            targets[name] = counts[name]  # group exhausted
            continue
        selected[candidate] = True
        for other, membership in memberships.items():
            if membership[candidate]:
                counts[other] += 1

    # Fill whatever is left by pure merit order.
    remaining = total_seats - seats_taken()
    for index in order:
        if remaining == 0:
            break
        if not selected[index]:
            selected[index] = True
            remaining -= 1
    return selected
