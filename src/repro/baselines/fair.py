"""FA*IR (Zehlike et al., 2017): binomial fair top-k re-ranking.

FA*IR guarantees that, for every prefix of the ranking, the number of
protected candidates is at least the number that would make the prefix pass a
statistical test against a target proportion ``p`` at significance ``alpha``.
The per-prefix minima form the *mtable*; re-ranking then greedily merges the
protected and non-protected candidate queues while honouring the mtable.

The binomial (single protected group) variant implemented here is the
building block of the multinomial comparison algorithm in
:mod:`repro.baselines.multinomial_fair`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..tabular import Table

__all__ = ["mtable", "adjusted_alpha", "FairRanker", "fair_topk_mask"]


def mtable(k: int, p: float, alpha: float) -> np.ndarray:
    """Minimum number of protected candidates required at every prefix 1..k.

    ``mtable[i - 1]`` is the smallest integer m such that the probability of
    seeing fewer than m protected candidates in an unbiased draw of size i
    with protected proportion ``p`` is below ``alpha`` — i.e. the binomial
    ``alpha``-quantile.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not 0.0 < p < 1.0:
        raise ValueError(f"target proportion p must be in (0, 1), got {p}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    prefixes = np.arange(1, k + 1)
    return stats.binom.ppf(alpha, prefixes, p).astype(int)


def adjusted_alpha(k: int, p: float, alpha: float, trials: int = 2_000, seed: int = 0) -> float:
    """Monte-Carlo multiple-testing correction for the mtable significance.

    Testing every prefix of a length-k ranking inflates the probability of
    rejecting a fair ranking.  The corrected significance ``alpha_c`` is the
    largest value whose mtable rejects an unbiased ranking with probability at
    most ``alpha``; it is estimated by simulating unbiased rankings.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    draws = rng.uniform(size=(trials, k)) < p
    cumulative = np.cumsum(draws, axis=1)

    def rejection_rate(candidate_alpha: float) -> float:
        table = mtable(k, p, candidate_alpha)
        return float(np.mean(np.any(cumulative < table, axis=1)))

    low, high = 1e-6, alpha
    if rejection_rate(high) <= alpha:
        return high
    for _ in range(30):
        middle = (low + high) / 2.0
        if rejection_rate(middle) <= alpha:
            low = middle
        else:
            high = middle
    return low


@dataclass(frozen=True)
class FairRanker:
    """Binomial FA*IR re-ranker for one protected group.

    Parameters
    ----------
    target_proportion:
        Required protected share ``p`` (typically the population share).
    alpha:
        Statistical-test significance; lower values enforce the quota less
        strictly on short prefixes.
    correct_alpha:
        Apply the Monte-Carlo multiple-testing correction before building the
        mtable.
    """

    target_proportion: float
    alpha: float = 0.1
    correct_alpha: bool = False

    def rerank(self, scores: np.ndarray, protected: np.ndarray, k: int) -> np.ndarray:
        """Return the indices of the fair top-k, best first."""
        scores = np.asarray(scores, dtype=float)
        protected = np.asarray(protected, dtype=bool)
        if scores.shape != protected.shape:
            raise ValueError(
                f"scores shape {scores.shape} does not match protected shape {protected.shape}"
            )
        if k <= 0 or k > scores.shape[0]:
            raise ValueError(f"k must be in [1, {scores.shape[0]}], got {k}")
        alpha = self.alpha
        if self.correct_alpha:
            alpha = adjusted_alpha(k, self.target_proportion, self.alpha)
        minima = mtable(k, self.target_proportion, alpha)

        order = np.lexsort((np.arange(scores.shape[0]), -scores))
        protected_queue = [i for i in order if protected[i]]
        open_queue = [i for i in order if not protected[i]]
        result: list[int] = []
        protected_count = 0
        p_index = o_index = 0
        for position in range(k):
            need_protected = protected_count < minima[position]
            take_protected: bool
            if need_protected and p_index < len(protected_queue):
                take_protected = True
            elif p_index >= len(protected_queue):
                take_protected = False
            elif o_index >= len(open_queue):
                take_protected = True
            else:
                # No constraint pressure: take whoever scores higher.
                take_protected = scores[protected_queue[p_index]] >= scores[open_queue[o_index]]
            if take_protected:
                result.append(protected_queue[p_index])
                p_index += 1
                protected_count += 1
            else:
                result.append(open_queue[o_index])
                o_index += 1
        return np.asarray(result, dtype=np.int64)


def fair_topk_mask(
    table: Table,
    scores: np.ndarray,
    attribute: str,
    k: int,
    target_proportion: float | None = None,
    alpha: float = 0.1,
) -> np.ndarray:
    """Boolean mask of the FA*IR top-k for one binary attribute."""
    membership = table.numeric(attribute) > 0.5
    if target_proportion is None:
        target_proportion = float(membership.mean())
    ranker = FairRanker(target_proportion=target_proportion, alpha=alpha)
    chosen = ranker.rerank(np.asarray(scores, dtype=float), membership, k)
    mask = np.zeros(table.num_rows, dtype=bool)
    mask[chosen] = True
    return mask
