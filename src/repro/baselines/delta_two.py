"""(Δ+2)-approximation re-ranking (Celis, Straszak, Vishnoi 2017), Section VI-C3.

The comparison algorithm "works by looking at all (position, item) pairs and
greedily selecting the one that most improves the utility (in our case
measured by nDCG) without violating a preset (input) fairness constraint on
the maximum number of items of each type".  Δ is the number of properties an
item can have; the greedy algorithm is a (Δ+2)-approximation of the
constrained ranking problem.

In the paper's protocol the fairness constraints are derived from DCA's own
result — the selection produced by DCA defines, for every group, the maximum
number of its members allowed in every prefix — which makes the two methods
directly comparable on utility.  :func:`constraints_from_selection` builds
exactly those constraints.

Because the utility gain of placing item ``i`` at position ``p`` is
``gain(i) / log2(p + 1)`` and the discount is the same for every item at a
given position, the greedy "best (position, item) pair" rule reduces to
filling positions from the top with the highest-gain item whose group
memberships still fit the prefix constraints — which is how it is implemented
here (and why it runs in near-linear time for small k but degrades as the
number of selected items grows, matching the runtime behaviour reported in
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..ranking import selection_mask, selection_size
from ..tabular import Table

__all__ = [
    "PrefixConstraints",
    "constraints_from_selection",
    "augment_with_complements",
    "DeltaTwoReranker",
    "delta_two_from_dca",
]


def augment_with_complements(
    table: Table, group_names: Sequence[str]
) -> tuple[Table, tuple[str, ...]]:
    """Add a ``not_<name>`` indicator for every binary group and return both.

    (Δ+2) constraints are *upper bounds* on group counts; bounding only the
    protected groups cannot force their inclusion, so the constraint set used
    for the DCA comparison also bounds each complement (the privileged group),
    which is what pushes protected candidates into the selection.
    """
    augmented = table
    names: list[str] = []
    for name in group_names:
        names.append(name)
        complement = f"not_{name}"
        augmented = augmented.with_column(complement, 1.0 - (augmented.numeric(name) > 0.5))
        names.append(complement)
    return augmented, tuple(names)


@dataclass(frozen=True)
class PrefixConstraints:
    """Per-group maximum counts allowed in every ranking prefix.

    Attributes
    ----------
    group_names:
        Binary attribute names the constraints apply to.
    maxima:
        Integer array of shape ``(k, num_groups)``; ``maxima[i - 1, g]`` is
        the maximum number of group-``g`` members allowed in a prefix of
        length ``i``.
    """

    group_names: tuple[str, ...]
    maxima: np.ndarray

    def __post_init__(self) -> None:
        maxima = np.asarray(self.maxima, dtype=int)
        if maxima.ndim != 2 or maxima.shape[1] != len(self.group_names):
            raise ValueError(
                f"maxima must have shape (k, {len(self.group_names)}), got {maxima.shape}"
            )
        object.__setattr__(self, "maxima", maxima)

    @property
    def k(self) -> int:
        return int(self.maxima.shape[0])

    def allows(self, prefix_length: int, counts: Mapping[str, int]) -> bool:
        row = self.maxima[prefix_length - 1]
        return all(counts[name] <= row[i] for i, name in enumerate(self.group_names))


def constraints_from_selection(
    table: Table,
    selected: np.ndarray,
    group_names: Sequence[str],
    k: int,
    slack: int = 0,
) -> PrefixConstraints:
    """Build prefix constraints matching the composition of an existing selection.

    The final-prefix maximum of each group is its count in ``selected`` (plus
    ``slack``); earlier prefixes are scaled proportionally, rounded up, so a
    ranking that front-loads a group slightly is still feasible.
    """
    selected = np.asarray(selected, dtype=bool)
    if selected.shape != (table.num_rows,):
        raise ValueError(f"selected has shape {selected.shape}, expected ({table.num_rows},)")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    names = tuple(group_names)
    final_counts = np.asarray(
        [int(np.sum((table.numeric(name) > 0.5) & selected)) + slack for name in names],
        dtype=float,
    )
    prefixes = np.arange(1, k + 1, dtype=float)[:, None]
    maxima = np.ceil(final_counts[None, :] * prefixes / float(k)).astype(int)
    return PrefixConstraints(group_names=names, maxima=maxima)


@dataclass(frozen=True)
class DeltaTwoReranker:
    """Greedy constrained re-ranking under per-group prefix maxima."""

    constraints: PrefixConstraints

    def rerank(self, table: Table, scores: np.ndarray) -> np.ndarray:
        """Return the indices of the constrained top-k, best first.

        Items are considered in decreasing score order; an item is placed at
        the next open position if doing so keeps every group within its
        prefix maximum.  If no remaining item fits the constraints (possible
        when groups overlap heavily), the constraint is relaxed for that
        position by taking the best remaining item — mirroring the "best
        effort" behaviour of the original implementation.
        """
        scores = np.asarray(scores, dtype=float)
        n = table.num_rows
        if scores.shape != (n,):
            raise ValueError(f"scores have shape {scores.shape}, expected ({n},)")
        k = min(self.constraints.k, n)
        names = self.constraints.group_names
        memberships = {name: table.numeric(name) > 0.5 for name in names}
        order = list(np.lexsort((np.arange(n), -scores)))
        used = np.zeros(n, dtype=bool)
        counts = {name: 0 for name in names}
        result: list[int] = []
        # ``frontier`` is the position in ``order`` before which every item is
        # already used, so each greedy pass resumes from there instead of
        # rescanning the whole order (keeps the loop near-linear in practice).
        frontier = 0

        for position in range(1, k + 1):
            while frontier < n and used[order[frontier]]:
                frontier += 1
            placed = False
            for cursor in range(frontier, n):
                index = order[cursor]
                if used[index]:
                    continue
                tentative = {
                    name: counts[name] + (1 if memberships[name][index] else 0) for name in names
                }
                if self.constraints.allows(position, tentative):
                    used[index] = True
                    counts = tentative
                    result.append(index)
                    placed = True
                    break
            if not placed:
                for cursor in range(frontier, n):
                    index = order[cursor]
                    if not used[index]:
                        used[index] = True
                        for name in names:
                            if memberships[name][index]:
                                counts[name] += 1
                        result.append(index)
                        break
        return np.asarray(result, dtype=np.int64)

    def rerank_mask(self, table: Table, scores: np.ndarray) -> np.ndarray:
        """Boolean mask version of :meth:`rerank`."""
        chosen = self.rerank(table, scores)
        mask = np.zeros(table.num_rows, dtype=bool)
        mask[chosen] = True
        return mask


def delta_two_from_dca(
    table: Table,
    base_scores: np.ndarray,
    compensated_scores: np.ndarray,
    group_names: Sequence[str],
    k: float,
    slack: int = 0,
) -> np.ndarray:
    """Run (Δ+2) with constraints copied from a DCA-compensated selection.

    The constraints bound each protected group *and its complement* at the
    composition of DCA's selection, so the greedy re-ranking of the base
    scores is steered toward the same demographic mix.  Returns the boolean
    selection mask.
    """
    size = selection_size(table.num_rows, k)
    dca_mask = selection_mask(np.asarray(compensated_scores, dtype=float), k)
    augmented, names = augment_with_complements(table, group_names)
    constraints = constraints_from_selection(augmented, dca_mask, names, size, slack=slack)
    reranker = DeltaTwoReranker(constraints)
    mask = reranker.rerank_mask(augmented, np.asarray(base_scores, dtype=float))
    return mask
