"""Comparison algorithms: quotas, FA*IR, Multinomial FA*IR, and (Δ+2)-approximation."""

from .delta_two import (
    DeltaTwoReranker,
    PrefixConstraints,
    augment_with_complements,
    constraints_from_selection,
    delta_two_from_dca,
)
from .fair import FairRanker, adjusted_alpha, fair_topk_mask, mtable
from .multinomial_fair import (
    MultinomialFairRanker,
    MultinomialMTable,
    cartesian_subgroups,
)
from .quota import multi_quota_selection, quota_selection

__all__ = [
    "quota_selection",
    "multi_quota_selection",
    "mtable",
    "adjusted_alpha",
    "FairRanker",
    "fair_topk_mask",
    "MultinomialMTable",
    "MultinomialFairRanker",
    "cartesian_subgroups",
    "PrefixConstraints",
    "constraints_from_selection",
    "augment_with_complements",
    "DeltaTwoReranker",
    "delta_two_from_dca",
]
