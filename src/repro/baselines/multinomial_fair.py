"""Multinomial FA*IR (Zehlike et al., 2022): fair top-k with multiple protected groups.

The paper compares DCA against the authors' Java implementation of
Multinomial FA*IR on one NYC district (Table II).  This module is a Python
re-implementation of the method's core idea:

* the protected groups must be **non-overlapping** (the paper works around
  this by taking the Cartesian product of its overlapping attributes and
  keeping the most-discriminated-against subgroups);
* for every ranking prefix of length ``i`` the count of each protected group
  must be at least the count below which a multinomial draw with the target
  proportions would be *too unlikely* (significance ``alpha``);
* re-ranking greedily walks down the positions, preferring the
  highest-scoring candidate from any group currently in deficit and otherwise
  the overall highest-scoring remaining candidate.

The exact multinomial mtable of the original paper is computed by dynamic
programming over the multinomial CDF and is expensive; here the per-prefix
minimum counts are estimated by Monte-Carlo simulation of multinomial draws,
which preserves the guarantee up to simulation error while keeping the
baseline fast enough to run inside the benchmark suite.  This substitution is
documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..tabular import Table

__all__ = ["MultinomialMTable", "MultinomialFairRanker", "cartesian_subgroups"]


def cartesian_subgroups(
    table: Table, attribute_names: Sequence[str], top: int = 3, by: str = "rarest-disadvantaged"
) -> dict[str, np.ndarray]:
    """Build non-overlapping subgroups from overlapping binary attributes.

    Multinomial FA*IR requires disjoint groups, so — following the paper's
    protocol — the Cartesian product of the binary fairness attributes is
    enumerated and the ``top`` most-disadvantaged non-empty combinations are
    kept as the protected subgroups ("we looked at the Cartesian product of
    all our parameters and picked the 3 most-discriminated against
    subgroups").  Disadvantage is proxied by the number of protected
    attributes the combination exhibits, breaking ties toward rarer groups.

    Returns a mapping from a subgroup label such as ``"low_income&ell"`` to
    its boolean membership mask.
    """
    if not attribute_names:
        raise ValueError("at least one attribute is required")
    memberships = {name: table.numeric(name) > 0.5 for name in attribute_names}
    combinations: dict[str, np.ndarray] = {}
    num_attributes = len(attribute_names)
    for bits in range(1, 2**num_attributes):
        included = [attribute_names[i] for i in range(num_attributes) if bits >> i & 1]
        mask = np.ones(table.num_rows, dtype=bool)
        for name in attribute_names:
            if name in included:
                mask &= memberships[name]
            else:
                mask &= ~memberships[name]
        if mask.any():
            combinations["&".join(included)] = mask
    ranked = sorted(
        combinations.items(),
        key=lambda item: (item[0].count("&") + 1, -item[1].mean()),
        reverse=True,
    )
    return dict(ranked[:top])


@dataclass(frozen=True)
class MultinomialMTable:
    """Per-prefix minimum counts for each protected group.

    Attributes
    ----------
    group_names:
        Protected group labels (non-overlapping).
    minima:
        Integer array of shape ``(k, num_groups)``; ``minima[i - 1, g]`` is
        the minimum acceptable count of group ``g`` in any prefix of length
        ``i``.
    """

    group_names: tuple[str, ...]
    minima: np.ndarray

    @classmethod
    def estimate(
        cls,
        k: int,
        proportions: Mapping[str, float],
        alpha: float = 0.1,
        trials: int = 4_000,
        seed: int = 0,
    ) -> "MultinomialMTable":
        """Monte-Carlo estimate of the multinomial mtable.

        For each group the minimum count at prefix ``i`` is the empirical
        ``alpha``-quantile of the group's count among ``i`` draws from the
        target multinomial distribution.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        names = tuple(proportions.keys())
        shares = np.asarray([proportions[name] for name in names], dtype=float)
        if np.any(shares <= 0) or shares.sum() >= 1.0 + 1e-9:
            raise ValueError(
                "group proportions must be positive and sum to less than 1 "
                f"(the remainder is the unprotected share); got {dict(proportions)}"
            )
        rng = np.random.default_rng(seed)
        # Sample group membership of each of the k positions across trials.
        unprotected = 1.0 - shares.sum()
        full = np.concatenate([shares, [unprotected]])
        draws = rng.choice(len(full), size=(trials, k), p=full)
        minima = np.zeros((k, len(names)), dtype=int)
        for g in range(len(names)):
            counts = np.cumsum(draws == g, axis=1)
            minima[:, g] = np.quantile(counts, alpha, axis=0, method="lower")
        minima = cls._make_greedy_feasible(minima)
        return cls(group_names=names, minima=minima)

    @staticmethod
    def _make_greedy_feasible(minima: np.ndarray) -> np.ndarray:
        """Pull requirements forward so the total never grows by more than one per position.

        The per-group quantiles are estimated independently, so two groups'
        minimum counts can jump at the same prefix length — which a re-ranker
        that places one object per position cannot satisfy.  Moving the excess
        requirement to an earlier prefix keeps the constraint at least as
        strict while making it satisfiable by the greedy merge.
        """
        minima = minima.copy()
        k = minima.shape[0]
        # Only one object exists at prefix 1.
        while minima[0].sum() > 1:
            minima[0, int(np.argmax(minima[0]))] -= 1
        for i in range(k - 1, 0, -1):
            while minima[i].sum() - minima[i - 1].sum() > 1:
                jumps = minima[i] - minima[i - 1]
                minima[i - 1, int(np.argmax(jumps))] += 1
        return minima

    def required(self, prefix_length: int) -> dict[str, int]:
        """Minimum counts required for a prefix of the given length."""
        if prefix_length <= 0 or prefix_length > self.minima.shape[0]:
            raise ValueError(
                f"prefix_length must be in [1, {self.minima.shape[0]}], got {prefix_length}"
            )
        row = self.minima[prefix_length - 1]
        return {name: int(row[i]) for i, name in enumerate(self.group_names)}


@dataclass
class MultinomialFairRanker:
    """Greedy multinomial-FA*IR-style re-ranker.

    Parameters
    ----------
    proportions:
        Target share of each (disjoint) protected group.
    alpha:
        Statistical significance of the per-prefix test.
    trials, seed:
        Monte-Carlo parameters for the mtable estimate.
    """

    proportions: Mapping[str, float]
    alpha: float = 0.1
    trials: int = 4_000
    seed: int = 0
    _mtable_cache: dict[int, MultinomialMTable] = field(default_factory=dict, repr=False)

    def _mtable(self, k: int) -> MultinomialMTable:
        if k not in self._mtable_cache:
            self._mtable_cache[k] = MultinomialMTable.estimate(
                k, self.proportions, alpha=self.alpha, trials=self.trials, seed=self.seed
            )
        return self._mtable_cache[k]

    def rerank(
        self,
        scores: np.ndarray,
        group_masks: Mapping[str, np.ndarray],
        k: int,
    ) -> np.ndarray:
        """Return the indices of the fair top-k, best first.

        ``group_masks`` maps each protected group name to its boolean
        membership mask; masks must be disjoint.  Objects in no protected
        group form the unprotected pool.
        """
        scores = np.asarray(scores, dtype=float)
        n = scores.shape[0]
        if k <= 0 or k > n:
            raise ValueError(f"k must be in [1, {n}], got {k}")
        names = tuple(self.proportions.keys())
        missing = [name for name in names if name not in group_masks]
        if missing:
            raise ValueError(f"group_masks is missing groups {missing}")
        masks = {name: np.asarray(group_masks[name], dtype=bool) for name in names}
        overlap = np.zeros(n, dtype=int)
        for mask in masks.values():
            overlap += mask.astype(int)
        if np.any(overlap > 1):
            raise ValueError("protected groups must be non-overlapping")

        mtable = self._mtable(k)
        order = np.lexsort((np.arange(n), -scores))
        queues: dict[str, list[int]] = {
            name: [i for i in order if masks[name][i]] for name in names
        }
        unprotected_queue = [i for i in order if overlap[i] == 0]
        pointers = {name: 0 for name in names}
        unprotected_pointer = 0
        counts = {name: 0 for name in names}
        result: list[int] = []

        for position in range(1, k + 1):
            required = mtable.required(position)
            deficits = {
                name: required[name] - counts[name]
                for name in names
                if pointers[name] < len(queues[name])
            }
            pressing = [name for name, deficit in deficits.items() if deficit > 0]
            if pressing:
                # Serve the group with the largest deficit; tie-break by the
                # score of its best remaining candidate.
                chosen_group = max(
                    pressing,
                    key=lambda name: (deficits[name], scores[queues[name][pointers[name]]]),
                )
                index = queues[chosen_group][pointers[chosen_group]]
                pointers[chosen_group] += 1
                counts[chosen_group] += 1
                result.append(index)
                continue
            # No deficit: take the best remaining candidate overall.
            candidates: list[tuple[float, int, str | None]] = []
            if unprotected_pointer < len(unprotected_queue):
                index = unprotected_queue[unprotected_pointer]
                candidates.append((scores[index], -index, None))
            for name in names:
                if pointers[name] < len(queues[name]):
                    index = queues[name][pointers[name]]
                    candidates.append((scores[index], -index, name))
            if not candidates:
                break
            _, negative_index, source = max(candidates)
            index = -negative_index
            if source is None:
                unprotected_pointer += 1
            else:
                pointers[source] += 1
                counts[source] += 1
            result.append(index)
        return np.asarray(result, dtype=np.int64)

    def rerank_mask(
        self, scores: np.ndarray, group_masks: Mapping[str, np.ndarray], k: int
    ) -> np.ndarray:
        """Boolean mask version of :meth:`rerank`."""
        chosen = self.rerank(scores, group_masks, k)
        mask = np.zeros(np.asarray(scores).shape[0], dtype=bool)
        mask[chosen] = True
        return mask
