"""Figure 7: accuracy vs disparity for DCA and the (Δ+2)-approximation algorithm.

The (Δ+2) greedy re-ranker takes fairness constraints as *input*; to compare
it with DCA on equal footing, the constraints are derived from the selection
DCA produces at each bonus proportion.  The figure then reports, for both
methods, the disparity norm and the nDCG at each proportion (training cohort,
as in the paper, because (Δ+2) is a post-processing step applied to a single
known dataset).
"""

from __future__ import annotations

import time
from typing import Sequence

from ..baselines import DeltaTwoReranker, augment_with_complements, constraints_from_selection
from ..core import DisparityObjective
from ..core.calibration import proportion_sweep
from ..metrics import ndcg_at_k
from ..ranking import selection_mask, selection_size
from .harness import ExperimentResult
from .setting import DEFAULT_K, SchoolSetting

__all__ = ["run"]


def run(
    num_students: int | None = None,
    k: float = DEFAULT_K,
    proportions: Sequence[float] | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 7 series (both methods, disparity norm and nDCG)."""
    setting = SchoolSetting(num_students=num_students)
    fitted = setting.fit_dca(k)
    objective = DisparityObjective(setting.fairness_attributes)
    if proportions is None:
        proportions = [round(0.2 * i, 10) for i in range(1, 6)]

    table = setting.train.table
    base_scores = setting.base_scores("train")
    calculator = setting.calculator("train")
    size = selection_size(table.num_rows, k)
    # The (Δ+2) constraints cap each binary group AND its complement at DCA's
    # composition; without the complement caps an upper-bound-only constraint
    # could never force under-represented groups into the selection.
    binary_attributes = tuple(
        name for name in setting.fairness_attributes if name != "eni"
    )
    augmented_table, constraint_groups = augment_with_complements(table, binary_attributes)

    dca_points = proportion_sweep(
        table,
        setting.rubric,
        fitted.bonus,
        objective,
        k,
        proportions=proportions,
        granularity=setting.dca_config.granularity,
    )

    rows: list[dict[str, object]] = []
    delta2_seconds = 0.0
    for point in dca_points:
        rows.append(
            {
                "method": "DCA",
                "proportion": point.proportion,
                "disparity_norm": point.disparity_norm,
                "ndcg": point.ndcg,
            }
        )
        # Derive (Δ+2) constraints from DCA's selection at this proportion.
        compensated = point.bonus.apply(table, base_scores)
        dca_mask = selection_mask(compensated, k)
        constraints = constraints_from_selection(
            augmented_table, dca_mask, constraint_groups, size
        )
        start = time.perf_counter()
        delta_mask = DeltaTwoReranker(constraints).rerank_mask(augmented_table, base_scores)
        delta2_seconds += time.perf_counter() - start
        delta_disparity = calculator.disparity_from_mask(table, delta_mask)
        # nDCG of an explicit selection: score the selected set against the ideal top-k.
        delta_scores = base_scores + delta_mask * (base_scores.max() - base_scores.min() + 1.0)
        rows.append(
            {
                "method": "(Δ+2)",
                "proportion": point.proportion,
                "disparity_norm": delta_disparity.norm,
                "ndcg": ndcg_at_k(base_scores, delta_scores, k),
            }
        )
    result = ExperimentResult(
        name="fig7",
        description="Accuracy vs disparity for DCA and the (Δ+2)-approximation algorithm",
    )
    result.add_table("fig 7: DCA vs (Δ+2)", rows)
    result.add_note(f"(Δ+2) re-ranking time over the sweep: {delta2_seconds:.2f}s")
    result.add_note(
        "Paper reference: the two methods achieve very similar disparity/utility trade-offs; "
        "(Δ+2) matches DCA's runtime at small k but becomes much slower for large k."
    )
    return result
