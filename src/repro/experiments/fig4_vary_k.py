"""Figure 4: disparity across selection fractions under three bonus-assignment regimes.

(a) **k known in advance** — bonus points are re-optimized for every k; DCA
    essentially eliminates disparity at each point.
(b) **k assumed to be 5%** — the bonus vector optimized for k = 5% is applied
    at every k; disparity is small near 5% and degrades away from it.
(c) **k unknown** — the log-discounted objective optimizes a weighted average
    over all k < 0.5; disparity is moderately low across the whole range.

The dashed "before" series of the paper's plot corresponds to the baseline
rows also produced here.
"""

from __future__ import annotations

from typing import Sequence

from ..core import LogDiscountedDisparityObjective
from .harness import ExperimentResult
from .setting import DEFAULT_K, DEFAULT_K_SWEEP, SchoolSetting

__all__ = ["run"]


def _disparity_rows(setting: SchoolSetting, scores_by_k, k_values, label: str):
    rows = []
    for k in k_values:
        scores = scores_by_k(k)
        values = setting.disparity("test", scores, k)
        row: dict[str, object] = {"series": label, "k": float(k)}
        row.update({name: values[name] for name in setting.fairness_attributes})
        row["norm"] = values["norm"]
        rows.append(row)
    return rows


def run(
    num_students: int | None = None,
    k_values: Sequence[float] = DEFAULT_K_SWEEP,
    assumed_k: float = DEFAULT_K,
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
    step_dispatch: str | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 4a/4b/4c series on the test cohort."""
    setting = SchoolSetting(num_students=num_students)
    result = ExperimentResult(
        name="fig4",
        description="Disparity across selection fractions: per-k, fixed-k, and log-discounted bonuses",
    )

    base_test = setting.base_scores("test")
    result.add_table(
        "baseline (no bonus)",
        _disparity_rows(setting, lambda k: base_test, k_values, "baseline"),
    )

    # (a) k known in advance: one batched fit per k.
    per_k = setting.fit_dca_sweep(
        k_values,
        max_workers=max_workers,
        executor=executor,
        row_workers=row_workers,
        step_dispatch=step_dispatch,
    )
    per_k_bonus = {k: per_k[float(k)].bonus for k in k_values}
    result.add_table(
        "fig 4a: k known in advance",
        _disparity_rows(
            setting,
            lambda k: setting.compensated_scores("test", per_k_bonus[k]),
            k_values,
            "per-k bonus",
        ),
    )

    # (b) bonus optimized for the assumed k only.
    assumed_bonus = setting.fit_dca(assumed_k).bonus
    assumed_scores = setting.compensated_scores("test", assumed_bonus)
    result.add_table(
        f"fig 4b: bonus optimized for k={assumed_k:.0%}",
        _disparity_rows(setting, lambda k: assumed_scores, k_values, f"k={assumed_k:.0%} bonus"),
    )
    result.add_note(f"fig 4b bonus vector: {assumed_bonus.as_dict()}")

    # (c) log-discounted objective over k < max(k_values).
    objective = LogDiscountedDisparityObjective(setting.fairness_attributes)
    discounted = setting.fit_dca(max(k_values), objective=objective)
    discounted_scores = setting.compensated_scores("test", discounted.bonus)
    result.add_table(
        "fig 4c: log-discounted bonus",
        _disparity_rows(setting, lambda k: discounted_scores, k_values, "log-discounted bonus"),
    )
    result.add_note(f"fig 4c bonus vector: {discounted.as_dict()}")
    result.add_note(
        "Paper reference: (a) near-zero disparity at every k; (b) best near the assumed k; "
        "(c) moderately low everywhere, slightly worse than (b) exactly at the assumed k."
    )
    return result
