"""Ablation experiments for the design choices DESIGN.md calls out.

These are not paper figures but sanity checks on the knobs the paper sets
empirically:

* ``sample_size`` — the max(1/k, 1/r) rule vs fixed sample sizes;
* ``schedule`` — the two-learning-rate schedule (1.0 then 0.1) vs a single
  learning rate;
* ``granularity`` — bonus rounding at 0.1 / 0.5 / 1.0 points.

Each ablation reports the residual test-cohort disparity norm and the fit
time so the trade-offs are visible at a glance.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..core import FitSpec
from .harness import ExperimentResult
from .setting import DEFAULT_K, SchoolSetting

__all__ = ["run_sample_size", "run_schedule", "run_granularity", "run"]


def _evaluate_batch(
    setting: SchoolSetting,
    specs: list[FitSpec],
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
) -> list[tuple[float, float, int, dict]]:
    """Fit every spec in one batch; report (norm, seconds, sample size, bonus) per spec.

    Per-fit wall-clock comes from ``DCAResult.elapsed_seconds``, so the
    timings stay meaningful even when the batch itself runs on a pool.
    """
    results = []
    for fit in setting.fit_dca_batch(
        specs, max_workers=max_workers, executor=executor, row_workers=row_workers
    ):
        scores = setting.compensated_scores("test", fit.result.bonus)
        norm = setting.disparity("test", scores, fit.k)["norm"]
        results.append(
            (norm, fit.result.elapsed_seconds, fit.result.sample_size, fit.result.as_dict())
        )
    return results


def run_sample_size(
    num_students: int | None = None,
    k: float = DEFAULT_K,
    sample_sizes: Sequence[int | None] = (100, 250, 500, 1000, 2000, None),
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
) -> ExperimentResult:
    """Residual disparity and runtime for different per-step sample sizes."""
    setting = SchoolSetting(num_students=num_students)
    result = ExperimentResult(
        name="ablation_sample_size",
        description="Effect of the per-step sample size on DCA accuracy and runtime",
    )
    specs = [
        FitSpec(k=k, config=replace(setting.dca_config, sample_size=sample_size))
        for sample_size in sample_sizes
    ]
    rows = []
    for sample_size, (norm, seconds, actual, bonus) in zip(
        sample_sizes, _evaluate_batch(
            setting, specs, max_workers=max_workers, executor=executor, row_workers=row_workers
        )
    ):
        rows.append(
            {
                "sample_size": "rule max(1/k,1/r)" if sample_size is None else sample_size,
                "actual_size": actual,
                "test_disparity_norm": norm,
                "seconds": seconds,
            }
        )
    result.add_table("sample-size ablation", rows)
    return result


def run_schedule(
    num_students: int | None = None,
    k: float = DEFAULT_K,
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
) -> ExperimentResult:
    """The paper's two-rate schedule vs single learning rates."""
    setting = SchoolSetting(num_students=num_students)
    result = ExperimentResult(
        name="ablation_schedule",
        description="Learning-rate schedule ablation for Core DCA",
    )
    schedules = {
        "paper (1.0, 0.1)": (1.0, 0.1),
        "single 1.0": (1.0,),
        "single 0.1": (0.1,),
        "three rates (1.0, 0.1, 0.01)": (1.0, 0.1, 0.01),
    }
    specs = [
        FitSpec(k=k, label=label, config=replace(setting.dca_config, learning_rates=rates))
        for label, rates in schedules.items()
    ]
    rows = []
    for label, (norm, seconds, _, bonus) in zip(
        schedules, _evaluate_batch(
            setting, specs, max_workers=max_workers, executor=executor, row_workers=row_workers
        )
    ):
        rows.append(
            {"schedule": label, "test_disparity_norm": norm, "seconds": seconds, "bonus": str(bonus)}
        )
    result.add_table("learning-rate schedule ablation", rows)
    return result


def run_granularity(
    num_students: int | None = None,
    k: float = DEFAULT_K,
    granularities: Sequence[float] = (0.1, 0.25, 0.5, 1.0, 2.0),
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
) -> ExperimentResult:
    """Bonus rounding granularity vs residual disparity."""
    setting = SchoolSetting(num_students=num_students)
    result = ExperimentResult(
        name="ablation_granularity",
        description="Effect of the bonus-point rounding granularity",
    )
    specs = [
        FitSpec(k=k, config=replace(setting.dca_config, granularity=granularity))
        for granularity in granularities
    ]
    rows = []
    for granularity, (norm, seconds, _, bonus) in zip(
        granularities, _evaluate_batch(
            setting, specs, max_workers=max_workers, executor=executor, row_workers=row_workers
        )
    ):
        rows.append(
            {
                "granularity": granularity,
                "test_disparity_norm": norm,
                "seconds": seconds,
                "bonus": str(bonus),
            }
        )
    result.add_table("granularity ablation", rows)
    return result


def run(
    num_students: int | None = None,
    k: float = DEFAULT_K,
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
) -> ExperimentResult:
    """Run all three ablations and merge their tables."""
    merged = ExperimentResult(
        name="ablations",
        description="Sample-size, learning-rate-schedule, and granularity ablations",
    )
    for sub in (
        run_sample_size(
            num_students=num_students,
            k=k,
            max_workers=max_workers,
            executor=executor,
            row_workers=row_workers,
        ),
        run_schedule(
            num_students=num_students,
            k=k,
            max_workers=max_workers,
            executor=executor,
            row_workers=row_workers,
        ),
        run_granularity(
            num_students=num_students,
            k=k,
            max_workers=max_workers,
            executor=executor,
            row_workers=row_workers,
        ),
    ):
        for label, rows in sub.tables.items():
            merged.add_table(label, rows)
        merged.notes.extend(sub.notes)
    return merged
