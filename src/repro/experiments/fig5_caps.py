"""Figure 5: log-discounted disparity when bonus points are capped.

DCA can enforce a maximum number of bonus points at every step (Section
VI-A4).  Small caps leave substantial residual disparity; as the cap grows
toward the unconstrained optimum the disparity shrinks.  Capped attributes
can also shift points onto correlated uncapped attributes, which is visible
in the per-attribute breakdown.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..core import FitSpec, LogDiscountedDisparity, LogDiscountedDisparityObjective
from .harness import ExperimentResult
from .setting import SchoolSetting

__all__ = ["run"]

DEFAULT_CAPS: tuple[float, ...] = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0, 20.0)


def run(
    num_students: int | None = None,
    caps: Sequence[float] = DEFAULT_CAPS,
    max_k: float = 0.5,
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
    step_dispatch: str | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 5 series (max bonus cap vs discounted disparity)."""
    setting = SchoolSetting(num_students=num_students)
    result = ExperimentResult(
        name="fig5",
        description="Log-discounted disparity when a maximum number of bonus points is enforced",
    )
    evaluator = LogDiscountedDisparity(setting.calculator("test"))
    # One fit per cap, batched through fit_many (each spec carries its own
    # max_bonus config; the objective is deep-copied per job).
    objective = LogDiscountedDisparityObjective(setting.fairness_attributes)
    specs = [
        FitSpec(
            k=max_k,
            objective=objective,
            config=replace(setting.dca_config, max_bonus=float(cap)),
            label=f"max_bonus={float(cap):g}",
        )
        for cap in caps
    ]
    rows: list[dict[str, object]] = []
    batch = setting.fit_dca_batch(
        specs,
        max_workers=max_workers,
        executor=executor,
        row_workers=row_workers,
        step_dispatch=step_dispatch,
    )
    for cap, fitted in zip(caps, batch):
        scores = setting.compensated_scores("test", fitted.bonus)
        disparity = evaluator.disparity(setting.test.table, scores, k=max_k)
        row: dict[str, object] = {"max_bonus": float(cap)}
        row.update(disparity.as_dict())
        rows.append(row)
    result.add_table("fig 5: discounted disparity vs max bonus", rows)
    result.add_note(
        "Paper reference: disparity is worst for small caps and approaches the unconstrained "
        "result as the cap reaches ~15-20 points."
    )
    return result
