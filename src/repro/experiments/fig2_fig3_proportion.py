"""Figures 2 and 3: utility/disparity trade-off as bonus points are scaled down.

DCA's recommended bonus vector can be applied in any proportion between 0 and
1.  Figure 2 plots the disparity norm and the nDCG against that proportion;
Figure 3 breaks the same sweep down per fairness attribute, showing the
near-linear (step-shaped, because of the 0.5-point granularity) relationship
between the proportion applied and the disparity compensated.
"""

from __future__ import annotations

from typing import Sequence

from ..core import DisparityObjective
from ..core.calibration import proportion_sweep
from .harness import ExperimentResult
from .setting import DEFAULT_K, SchoolSetting

__all__ = ["run"]


def run(
    num_students: int | None = None,
    k: float = DEFAULT_K,
    proportions: Sequence[float] | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 2 and Figure 3 series on the test cohort."""
    setting = SchoolSetting(num_students=num_students)
    fitted = setting.fit_dca(k)
    objective = DisparityObjective(setting.fairness_attributes)
    if proportions is None:
        proportions = [round(0.1 * i, 10) for i in range(0, 11)]

    points = proportion_sweep(
        setting.test.table,
        setting.rubric,
        fitted.bonus,
        objective,
        k,
        proportions=proportions,
        granularity=setting.dca_config.granularity,
    )

    result = ExperimentResult(
        name="fig2_fig3",
        description="nDCG and per-attribute disparity for varying proportions of the bonus points",
    )
    fig2_rows = [
        {"proportion": p.proportion, "disparity_norm": p.disparity_norm, "ndcg": p.ndcg}
        for p in points
    ]
    result.add_table("fig 2: nDCG and disparity norm vs proportion", fig2_rows)

    fig3_rows = []
    for p in points:
        row: dict[str, object] = {"proportion": p.proportion}
        row.update(p.disparity)
        row["norm"] = p.disparity_norm
        fig3_rows.append(row)
    result.add_table("fig 3: per-attribute disparity vs proportion", fig3_rows)

    result.add_note(f"bonus vector at proportion 1.0: {fitted.as_dict()}")
    result.add_note(
        "Paper reference: the relationship is near linear; applying half the bonus points "
        "yields roughly half the disparity reduction, while nDCG stays above 0.95."
    )
    return result
