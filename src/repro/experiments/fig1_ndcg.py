"""Figure 1: nDCG@k on the school test cohort for varying selection fractions.

For each selection fraction k, bonus points are fitted on the training cohort
(optimized for that k, as in Figure 4a) and the utility of the compensated
ranking is measured as nDCG@k against the uncompensated ranking on the test
cohort.  The paper reports nDCG ≈ 0.957 at k = 5% and values above 0.9 across
the whole sweep.
"""

from __future__ import annotations

from typing import Sequence

from ..metrics import ndcg_at_k
from .harness import ExperimentResult
from .setting import DEFAULT_K_SWEEP, SchoolSetting

__all__ = ["run"]


def run(
    num_students: int | None = None,
    k_values: Sequence[float] = DEFAULT_K_SWEEP,
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
    step_dispatch: str | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 1 series (k, nDCG@k)."""
    setting = SchoolSetting(num_students=num_students)
    result = ExperimentResult(
        name="fig1",
        description="nDCG@k on the school test cohort for varying selection fractions",
    )
    per_k = setting.fit_dca_sweep(
        k_values,
        max_workers=max_workers,
        executor=executor,
        row_workers=row_workers,
        step_dispatch=step_dispatch,
    )
    base = setting.base_scores("test")
    rows: list[dict[str, object]] = []
    for k in k_values:
        fitted = per_k[float(k)]
        compensated = setting.compensated_scores("test", fitted.bonus)
        rows.append(
            {
                "k": float(k),
                "ndcg": ndcg_at_k(base, compensated, k),
                "bonus_norm": fitted.bonus.norm(),
            }
        )
    result.add_table("fig 1: nDCG@k", rows)
    result.add_note("Paper reference: nDCG@0.05 ≈ 0.957, all values above 0.9.")
    return result
