"""Figure 9 / Section VI-C5: driving DCA with disparate impact instead of disparity.

DCA accepts any vector-valued fairness signal with the right range and sign
conventions.  This experiment fits bonus points twice — once minimizing the
Definition 3 disparity and once minimizing the scaled disparate-impact metric
— and evaluates *both* metrics for *both* bonus vectors across selection
fractions, reproducing the "both versions perform similarly" comparison of
Figure 9 along with the bonus vectors and runtimes reported in the text.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..core import DisparateImpactObjective, DisparityObjective, LogDiscountedDisparityObjective
from .harness import ExperimentResult
from .setting import DEFAULT_K_SWEEP, SchoolSetting

__all__ = ["run"]


def run(
    num_students: int | None = None,
    k_values: Sequence[float] = DEFAULT_K_SWEEP,
    binary_attributes: Sequence[str] = ("low_income", "ell", "special_ed"),
) -> ExperimentResult:
    """Regenerate the Figure 9 comparison (disparity- vs disparate-impact-driven DCA)."""
    setting = SchoolSetting(num_students=num_students)
    attributes = tuple(binary_attributes)
    result = ExperimentResult(
        name="fig9",
        description="DCA optimizing Disparity vs Disparate Impact: both metrics across k",
    )

    max_k = max(k_values)
    start = time.perf_counter()
    disparity_fit = setting.fit_dca(
        max_k, objective=LogDiscountedDisparityObjective(attributes)
    )
    disparity_seconds = time.perf_counter() - start
    start = time.perf_counter()
    di_fit = setting.fit_dca(max_k, objective=DisparateImpactObjective(attributes))
    di_seconds = time.perf_counter() - start

    disparity_eval = DisparityObjective(attributes).fit(setting.test.table)
    di_eval = DisparateImpactObjective(attributes)

    rows: list[dict[str, object]] = []
    for label, fitted in (("disparity-driven", disparity_fit), ("DI-driven", di_fit)):
        scores = setting.compensated_scores("test", fitted.bonus)
        for k in k_values:
            rows.append(
                {
                    "series": label,
                    "k": float(k),
                    "disparity_norm": disparity_eval.evaluate(setting.test.table, scores, k).norm,
                    "disparate_impact_norm": di_eval.evaluate(setting.test.table, scores, k).norm,
                }
            )
    result.add_table("fig 9: disparity vs disparate impact optimization", rows)
    result.add_note(f"disparity-driven bonus vector: {disparity_fit.as_dict()} ({disparity_seconds:.1f}s)")
    result.add_note(f"DI-driven bonus vector: {di_fit.as_dict()} ({di_seconds:.1f}s)")
    result.add_note(
        "Paper reference: the two bonus vectors are close (e.g. Special Ed 14 pts in both, "
        "ELL 11.5 vs 12.5 pts) and both versions perform similarly; the DI run is slower."
    )
    return result
