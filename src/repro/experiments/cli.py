"""Command-line entry point: ``repro-experiments``.

Examples
--------
List the available experiments::

    repro-experiments list

Run the Table I reproduction on a 20,000-student synthetic cohort::

    repro-experiments run table1 --num-students 20000

Run a sweep-heavy experiment on the shared-memory process pool::

    repro-experiments run fig4 --executor process --workers 4

Row-shard every fit of a sweep across shared-memory workers (bitwise
identical results; pays off on large cohorts with large per-step samples)::

    repro-experiments run fig4 --num-students 2000000 --row-workers 4

Run the admissions match on the vectorized round-based engine, with schools
proposing (the school-optimal matching)::

    repro-experiments run matching --engine vector --proposing schools

Run everything at reduced scale and write the formatted output to a file::

    repro-experiments run-all --num-students 10000 --output results.txt
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Sequence

from ..core.parallel import STEP_DISPATCH_MODES
from ..matching import ENGINES, PROPOSING_SIDES
from . import EXPERIMENT_RUNNERS
from .harness import ExperimentResult

__all__ = ["main", "build_parser"]

#: Batch backends exposed on the command line (see repro.core.DCA.fit_many).
EXECUTOR_CHOICES = ("serial", "thread", "process")


def _positive_int(text: str) -> int:
    """argparse type for worker counts: rejects 0/negative at parse time.

    Failing inside ``argparse`` keeps the error next to the flag that caused
    it, long before any pool or shared-memory segment exists.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text!r}")
    return value


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--num-students", type=int, default=None, help="synthetic school cohort size override"
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_CHOICES,
        default=None,
        help=(
            "batch backend for experiments that sweep DCA fits: 'serial', "
            "'thread', or 'process' (shared-memory process pool)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="pool size for the thread/process executors (default: one per job, capped at CPUs)",
    )
    parser.add_argument(
        "--row-workers",
        type=_positive_int,
        default=None,
        dest="row_workers",
        help=(
            "row-shard every DCA fit across this many shared-memory worker "
            "processes (bitwise identical to the in-process fit; pays off on "
            "large cohorts with large per-step samples)"
        ),
    )
    parser.add_argument(
        "--step-dispatch",
        choices=STEP_DISPATCH_MODES,
        default=None,
        dest="step_dispatch",
        help=(
            "how row-sharded fits hand each optimization step to the workers: "
            "'doorbell' (persistent pool on a shared-memory doorbell, the "
            "default) or 'pool' (per-step pool.map, the pre-scheduler path)"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help=(
            "deferred-acceptance engine for experiments that run a match: "
            "'heap' (sequential), 'vector' (round-based, fastest at district "
            "scale), or 'reference' (slow pure-Python twin)"
        ),
    )
    parser.add_argument(
        "--proposing",
        choices=PROPOSING_SIDES,
        default=None,
        help=(
            "which side proposes in deferred acceptance: 'students' "
            "(student-optimal matching, the default) or 'schools' "
            "(school-optimal matching)"
        ),
    )
    parser.add_argument("--output", default=None, help="write the formatted result to a file")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the fair-ranking DCA paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment name (see 'list')")
    _add_run_options(run_parser)

    all_parser = subparsers.add_parser("run-all", help="run every experiment")
    _add_run_options(all_parser)
    return parser


def _run_one(
    name: str,
    num_students: int | None,
    executor: str | None = None,
    workers: int | None = None,
    engine: str | None = None,
    proposing: str | None = None,
    row_workers: int | None = None,
    step_dispatch: str | None = None,
) -> ExperimentResult:
    """Invoke a runner, forwarding only the options its signature supports.

    Experiments differ in what they can vary (the COMPAS figures have no
    ``num_students``; single-fit experiments have no batch backend; only the
    matching experiment runs deferred acceptance), so the CLI inspects each
    runner instead of forcing one signature on all of them.
    """
    runner = EXPERIMENT_RUNNERS[name]
    parameters = inspect.signature(runner).parameters
    options = {
        "num_students": num_students,
        "executor": executor,
        "max_workers": workers,
        "engine": engine,
        "proposing": proposing,
        "row_workers": row_workers,
        "step_dispatch": step_dispatch,
    }
    kwargs = {
        key: value
        for key, value in options.items()
        if value is not None and key in parameters
    }
    return runner(**kwargs)


def _emit(text: str, output: str | None) -> None:
    if output:
        with open(output, "w") as handle:
            handle.write(text + "\n")
    print(text)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENT_RUNNERS):
            print(name)
        return 0
    if args.command == "run":
        if args.experiment not in EXPERIMENT_RUNNERS:
            print(
                f"unknown experiment {args.experiment!r}; available: {sorted(EXPERIMENT_RUNNERS)}",
                file=sys.stderr,
            )
            return 2
        result = _run_one(
            args.experiment,
            args.num_students,
            args.executor,
            args.workers,
            args.engine,
            args.proposing,
            args.row_workers,
            args.step_dispatch,
        )
        _emit(result.format(), args.output)
        return 0
    if args.command == "run-all":
        outputs = []
        for name in sorted(EXPERIMENT_RUNNERS):
            outputs.append(
                _run_one(
                    name,
                    args.num_students,
                    args.executor,
                    args.workers,
                    args.engine,
                    args.proposing,
                    args.row_workers,
                    args.step_dispatch,
                ).format()
            )
        _emit("\n\n".join(outputs), args.output)
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
