"""Command-line entry point: ``repro-experiments``.

Examples
--------
List the available experiments::

    repro-experiments list

Run the Table I reproduction on a 20,000-student synthetic cohort::

    repro-experiments run table1 --num-students 20000

Run everything at reduced scale and write the formatted output to a file::

    repro-experiments run-all --num-students 10000 --output results.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import EXPERIMENT_RUNNERS
from .harness import ExperimentResult

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the fair-ranking DCA paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment name (see 'list')")
    run_parser.add_argument(
        "--num-students", type=int, default=None, help="synthetic school cohort size override"
    )
    run_parser.add_argument("--output", default=None, help="write the formatted result to a file")

    all_parser = subparsers.add_parser("run-all", help="run every experiment")
    all_parser.add_argument("--num-students", type=int, default=None)
    all_parser.add_argument("--output", default=None)
    return parser


def _run_one(name: str, num_students: int | None) -> ExperimentResult:
    runner = EXPERIMENT_RUNNERS[name]
    if name in ("fig10", ):
        return runner()
    try:
        return runner(num_students=num_students)
    except TypeError:
        return runner()


def _emit(text: str, output: str | None) -> None:
    if output:
        with open(output, "w") as handle:
            handle.write(text + "\n")
    print(text)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENT_RUNNERS):
            print(name)
        return 0
    if args.command == "run":
        if args.experiment not in EXPERIMENT_RUNNERS:
            print(
                f"unknown experiment {args.experiment!r}; available: {sorted(EXPERIMENT_RUNNERS)}",
                file=sys.stderr,
            )
            return 2
        result = _run_one(args.experiment, args.num_students)
        _emit(result.format(), args.output)
        return 0
    if args.command == "run-all":
        outputs = []
        for name in sorted(EXPERIMENT_RUNNERS):
            outputs.append(_run_one(name, args.num_students).format())
        _emit("\n\n".join(outputs), args.output)
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
