"""Experiment modules reproducing every table and figure of the paper."""

from . import (
    ablations,
    exposure_ddp,
    fig1_ndcg,
    fig2_fig3_proportion,
    fig4_vary_k,
    fig5_caps,
    fig6_quota,
    fig7_delta2,
    fig8_refinement,
    fig9_disparate_impact,
    fig10_compas,
    matching_admissions,
    scenario_stress,
    table1,
    table2,
)
from .harness import ExperimentResult, format_table
from .setting import DEFAULT_K, DEFAULT_K_SWEEP, CompasSetting, SchoolSetting

#: Mapping from experiment name to its ``run`` callable (used by the CLI).
EXPERIMENT_RUNNERS = {
    "table1": table1.run,
    "table2": table2.run,
    "fig1": fig1_ndcg.run,
    "fig2_fig3": fig2_fig3_proportion.run,
    "fig4": fig4_vary_k.run,
    "fig5": fig5_caps.run,
    "fig6": fig6_quota.run,
    "fig7": fig7_delta2.run,
    "fig8": fig8_refinement.run,
    "fig9": fig9_disparate_impact.run,
    "fig10": fig10_compas.run,
    "exposure_ddp": exposure_ddp.run,
    "ablations": ablations.run,
    "matching": matching_admissions.run,
    "scenarios": scenario_stress.run,
}

__all__ = [
    "ExperimentResult",
    "format_table",
    "SchoolSetting",
    "CompasSetting",
    "DEFAULT_K",
    "DEFAULT_K_SWEEP",
    "EXPERIMENT_RUNNERS",
]
