"""Figure 10: COMPAS experiments — disparity, false positive rates, and log-discounted bonuses.

(a) per-k bonus points added to the (negated) decile scores, race disparity
    of the resulting selection at every k;
(b) DCA pointed at the false-positive-rate gap objective, per-race FPR across
    k;
(c) a single bonus vector fitted with the log-discounted objective, race
    disparity across k — the coarseness of the ten deciles makes the curves
    move in visible steps, but disparity is still significantly reduced.
"""

from __future__ import annotations

from typing import Sequence

from ..core import FalsePositiveRateObjective, LogDiscountedDisparityObjective
from ..metrics import group_false_positive_rates
from .harness import ExperimentResult
from .setting import DEFAULT_K_SWEEP, CompasSetting

__all__ = ["run"]


def run(
    num_defendants: int | None = None,
    k_values: Sequence[float] = DEFAULT_K_SWEEP,
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
    step_dispatch: str | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 10a/10b/10c series."""
    setting = CompasSetting(num_defendants=num_defendants)
    table = setting.table
    calculator = setting.calculator()
    base_scores = setting.base_scores()
    result = ExperimentResult(
        name="fig10",
        description="COMPAS: race disparity and FPR with DCA bonus points on decile scores",
    )

    def disparity_row(scores, k: float, series: str) -> dict[str, object]:
        values = calculator.disparity(table, scores, k).as_dict()
        row: dict[str, object] = {"series": series, "k": float(k)}
        row.update(values)
        return row

    # Baseline disparity (the dashed series of Figure 10a).
    result.add_table(
        "baseline disparity", [disparity_row(base_scores, k, "baseline") for k in k_values]
    )

    # (a) bonus points recomputed for every k — one fit_many batch.
    per_k_fits = setting.fit_dca_sweep(
        k_values,
        max_workers=max_workers,
        executor=executor,
        row_workers=row_workers,
        step_dispatch=step_dispatch,
    )
    fig10a_rows = []
    for k in k_values:
        scores = per_k_fits[float(k)].bonus.apply(table, base_scores)
        fig10a_rows.append(disparity_row(scores, k, "per-k bonus"))
    result.add_table("fig 10a: disparity with per-k bonuses", fig10a_rows)

    # (b) FPR-gap objective, again batched across the k sweep.
    fpr_objective = FalsePositiveRateObjective(setting.race_attributes, "two_year_recid")
    fpr_fits = setting.fit_dca_sweep(
        k_values,
        objective=fpr_objective,
        max_workers=max_workers,
        executor=executor,
        row_workers=row_workers,
        step_dispatch=step_dispatch,
    )
    fig10b_rows = []
    baseline_fpr_rows = []
    for k in k_values:
        scores = fpr_fits[float(k)].bonus.apply(table, base_scores)
        fpr = group_false_positive_rates(
            table, scores, setting.race_attributes, "two_year_recid", k
        )
        fig10b_rows.append({"series": "FPR-driven bonus", "k": float(k), **fpr})
        baseline = group_false_positive_rates(
            table, base_scores, setting.race_attributes, "two_year_recid", k
        )
        baseline_fpr_rows.append({"series": "baseline", "k": float(k), **baseline})
    result.add_table("fig 10b baseline: per-race FPR without bonuses", baseline_fpr_rows)
    result.add_table("fig 10b: per-race FPR with FPR-driven bonuses", fig10b_rows)

    # (c) one log-discounted bonus vector for all k.
    discounted = setting.fit_dca(
        max(k_values), objective=LogDiscountedDisparityObjective(setting.race_attributes)
    )
    discounted_scores = discounted.bonus.apply(table, base_scores)
    result.add_table(
        "fig 10c: disparity with one log-discounted bonus vector",
        [disparity_row(discounted_scores, k, "log-discounted bonus") for k in k_values],
    )
    result.add_note(f"log-discounted bonus vector: {discounted.as_dict()}")
    result.add_note(
        "Paper reference: baseline disparity is strongly negative for African-American and "
        "positive for Caucasian defendants; bonuses substantially reduce it, with visible steps "
        "caused by the coarse ten-decile scores; the FPR gaps shrink across the k range."
    )
    return result
