"""Common experimental setting shared by the reproduction experiments.

The paper's Section V fixes a single configuration for most experiments
(rubric, default 5% selection, fairness attributes, DCA hyper-parameters,
sample size 500, bonus granularity 0.5).  Bundling that configuration here
keeps every experiment module focused on the one thing it varies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core import (
    DCA,
    BatchFitResult,
    DCAConfig,
    DCAResult,
    DisparityCalculator,
    FairnessObjective,
    FitSpec,
)
from ..core.bonus import BonusVector
from ..datasets import (
    SCHOOL_FAIRNESS_ATTRIBUTES,
    CompasDataset,
    SchoolCohort,
    load_compas,
    load_school_cohorts,
    school_admission_rubric,
)
from ..ranking import ScoreFunction
from ..tabular import Table

__all__ = ["SchoolSetting", "CompasSetting", "DEFAULT_K", "DEFAULT_K_SWEEP"]

#: The paper's default selection rate ("when not otherwise stated, we consider
#: that 5% of students are selected").
DEFAULT_K: float = 0.05

#: The k sweep the figures plot (5% to 50%).
DEFAULT_K_SWEEP: tuple[float, ...] = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5)


def _resolve_config(config: DCAConfig, step_dispatch: str | None) -> DCAConfig:
    """The experiment's config, with an optional step-dispatch override.

    ``step_dispatch`` only matters for row-sharded fits; it rides on the
    config (validated by :class:`repro.core.DCAConfig`) so the CLI's
    ``--step-dispatch`` flag reaches every fit of a sweep without widening
    each runner's signature beyond one optional string.
    """
    if step_dispatch is None:
        return config
    return replace(config, step_dispatch=step_dispatch)


def _sweep_fits(
    default_attributes,
    score_function: ScoreFunction,
    table: Table,
    config: DCAConfig,
    ks,
    objective: FairnessObjective | None,
    max_workers: int | None,
    executor: str | None = None,
    row_workers: int | None = None,
    step_dispatch: str | None = None,
) -> dict[float, DCAResult]:
    """One fit per selection fraction via ``fit_many``, keyed by ``k``.

    Shared by the school and COMPAS settings: both sweep helpers only differ
    in which score function / attribute set they default to.  ``executor``
    selects the :meth:`repro.core.DCA.fit_many` backend (``"serial"``,
    ``"thread"``, or the shared-memory ``"process"`` pool); ``row_workers``
    additionally row-shards each fit (see :meth:`repro.core.DCA.fit`), and
    ``step_dispatch`` picks how sharded steps reach the workers.
    """
    config = _resolve_config(config, step_dispatch)
    ks = tuple(float(k) for k in ks)  # materialize once: ks may be a generator
    if not ks:
        raise ValueError("at least one selection fraction is required")
    attributes = objective.attribute_names if objective is not None else default_attributes
    dca = DCA(attributes, score_function, k=max(ks), objective=objective, config=config)
    fits = dca.fit_many(
        table, ks=ks, max_workers=max_workers, executor=executor, row_workers=row_workers
    )
    return {fit.k: fit.result for fit in fits}


@dataclass
class SchoolSetting:
    """The NYC-school experimental setting (datasets, rubric, DCA defaults)."""

    num_students: int | None = None
    seed: int = 7
    dca_config: DCAConfig = field(default_factory=lambda: DCAConfig(seed=7))

    def __post_init__(self) -> None:
        self.train, self.test = load_school_cohorts(num_students=self.num_students)
        self.rubric = school_admission_rubric()
        self.fairness_attributes = SCHOOL_FAIRNESS_ATTRIBUTES
        self._base_scores: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def cohort(self, which: str) -> SchoolCohort:
        if which == "train":
            return self.train
        if which == "test":
            return self.test
        raise ValueError(f"which must be 'train' or 'test', got {which!r}")

    def base_scores(self, which: str) -> np.ndarray:
        """Uncompensated rubric scores for a cohort (cached)."""
        if which not in self._base_scores:
            self._base_scores[which] = self.rubric.scores(self.cohort(which).table)
        return self._base_scores[which]

    def calculator(self, which: str) -> DisparityCalculator:
        return DisparityCalculator(self.fairness_attributes).fit(self.cohort(which).table)

    def fit_dca(
        self,
        k: float,
        objective: FairnessObjective | None = None,
        config: DCAConfig | None = None,
        row_workers: int | None = None,
        step_dispatch: str | None = None,
    ):
        """Fit DCA on the training cohort at selection fraction ``k``.

        When an objective over a subset of the fairness attributes is given
        (e.g. the binary-only attributes used by the disparate-impact and
        exposure experiments), the bonus vector is fitted over exactly those
        attributes.  ``row_workers`` row-shards the single fit across
        shared-memory workers (see :meth:`repro.core.DCA.fit`), and
        ``step_dispatch`` picks how sharded steps reach them.
        """
        attributes = objective.attribute_names if objective is not None else self.fairness_attributes
        dca = DCA(
            attributes,
            self.rubric,
            k=k,
            objective=objective,
            config=_resolve_config(config or self.dca_config, step_dispatch),
        )
        return dca.fit(self.train.table, row_workers=row_workers)

    def fit_dca_sweep(
        self,
        ks,
        objective: FairnessObjective | None = None,
        config: DCAConfig | None = None,
        max_workers: int | None = None,
        executor: str | None = None,
        row_workers: int | None = None,
        step_dispatch: str | None = None,
    ) -> dict[float, DCAResult]:
        """Fit one bonus vector per selection fraction in ``ks`` in a single batch.

        This is the Figure 1 / Figure 4a "k known in advance" workload routed
        through :meth:`repro.core.DCA.fit_many`; results are keyed by ``k``.
        ``executor``/``max_workers`` select and size the batch backend
        (``"process"`` runs the fits on the shared-memory process pool);
        ``row_workers`` row-shards each individual fit.
        """
        return _sweep_fits(
            self.fairness_attributes,
            self.rubric,
            self.train.table,
            config or self.dca_config,
            ks,
            objective,
            max_workers,
            executor,
            row_workers,
            step_dispatch,
        )

    def fit_dca_batch(
        self,
        specs: list[FitSpec],
        max_workers: int | None = None,
        executor: str | None = None,
        row_workers: int | None = None,
        step_dispatch: str | None = None,
    ) -> list[BatchFitResult]:
        """Run a heterogeneous batch of DCA fits (the ablation workloads).

        ``executor`` selects the :meth:`repro.core.DCA.fit_many` backend;
        ``row_workers`` row-shards each individual fit.
        """
        dca = DCA(
            self.fairness_attributes,
            self.rubric,
            k=DEFAULT_K,
            config=_resolve_config(self.dca_config, step_dispatch),
        )
        return dca.fit_many(
            self.train.table,
            specs=specs,
            max_workers=max_workers,
            executor=executor,
            row_workers=row_workers,
        )

    def compensated_scores(self, which: str, bonus: BonusVector) -> np.ndarray:
        return bonus.apply(self.cohort(which).table, self.base_scores(which))

    def disparity(self, which: str, scores: np.ndarray, k: float) -> dict[str, float]:
        return self.calculator(which).disparity(self.cohort(which).table, scores, k).as_dict()


@dataclass
class CompasSetting:
    """The COMPAS experimental setting (dataset, release ranking, race attributes)."""

    num_defendants: int | None = None
    seed: int = 7
    dca_config: DCAConfig = field(
        default_factory=lambda: DCAConfig(seed=7, sample_size=1000, granularity=0.5)
    )

    def __post_init__(self) -> None:
        from ..datasets import compas_release_ranking_function

        self.dataset: CompasDataset = load_compas(num_defendants=self.num_defendants)
        self.ranking_function: ScoreFunction = compas_release_ranking_function()
        self.race_attributes = self.dataset.race_attributes
        self._base_scores: np.ndarray | None = None

    @property
    def table(self) -> Table:
        return self.dataset.table

    def base_scores(self) -> np.ndarray:
        if self._base_scores is None:
            self._base_scores = self.ranking_function.scores(self.table)
        return self._base_scores

    def calculator(self) -> DisparityCalculator:
        return DisparityCalculator(self.race_attributes).fit(self.table)

    def fit_dca(
        self,
        k: float,
        objective: FairnessObjective | None = None,
        config: DCAConfig | None = None,
        row_workers: int | None = None,
        step_dispatch: str | None = None,
    ):
        attributes = objective.attribute_names if objective is not None else self.race_attributes
        dca = DCA(
            attributes,
            self.ranking_function,
            k=k,
            objective=objective,
            config=_resolve_config(config or self.dca_config, step_dispatch),
        )
        return dca.fit(self.table, row_workers=row_workers)

    def fit_dca_sweep(
        self,
        ks,
        objective: FairnessObjective | None = None,
        config: DCAConfig | None = None,
        max_workers: int | None = None,
        executor: str | None = None,
        row_workers: int | None = None,
        step_dispatch: str | None = None,
    ) -> dict[float, DCAResult]:
        """Fit one bonus vector per selection fraction in ``ks`` in a single batch.

        The per-k COMPAS workloads (Figure 10a/10b) routed through
        :meth:`repro.core.DCA.fit_many`; results are keyed by ``k``.
        ``executor``/``max_workers`` select and size the batch backend;
        ``row_workers`` row-shards each individual fit.
        """
        return _sweep_fits(
            self.race_attributes,
            self.ranking_function,
            self.table,
            config or self.dca_config,
            ks,
            objective,
            max_workers,
            executor,
            row_workers,
            step_dispatch,
        )

    def fit_dca_batch(
        self,
        specs: list[FitSpec],
        max_workers: int | None = None,
        executor: str | None = None,
        row_workers: int | None = None,
        step_dispatch: str | None = None,
    ) -> list[BatchFitResult]:
        """Run a heterogeneous batch of DCA fits against the release ranking.

        ``executor`` selects the :meth:`repro.core.DCA.fit_many` backend;
        ``row_workers`` row-shards each individual fit.
        """
        dca = DCA(
            self.race_attributes,
            self.ranking_function,
            k=DEFAULT_K,
            config=_resolve_config(self.dca_config, step_dispatch),
        )
        return dca.fit_many(
            self.table,
            specs=specs,
            max_workers=max_workers,
            executor=executor,
            row_workers=row_workers,
        )
