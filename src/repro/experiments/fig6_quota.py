"""Figure 6: disparity reduction achieved by a simple (single) quota system.

Many real systems, including NYC, use one set-aside quota — typically for
low-income students — to cover all fairness dimensions.  The figure shows the
per-attribute disparity of that policy across selection fractions: the quota
helps the targeted dimension but leaves the others largely uncorrected, and
overall does not reach DCA's disparity reduction (compare Figure 4a).
"""

from __future__ import annotations

from typing import Sequence

from ..baselines import quota_selection
from .harness import ExperimentResult
from .setting import DEFAULT_K_SWEEP, SchoolSetting

__all__ = ["run"]


def run(
    num_students: int | None = None,
    k_values: Sequence[float] = DEFAULT_K_SWEEP,
    quota_attribute: str = "low_income",
    reserved_share: float | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 6 series (quota-system disparity across k)."""
    setting = SchoolSetting(num_students=num_students)
    result = ExperimentResult(
        name="fig6",
        description="Disparity of a single-quota set-aside system across selection fractions",
    )
    table = setting.test.table
    scores = setting.base_scores("test")
    calculator = setting.calculator("test")
    rows: list[dict[str, object]] = []
    for k in k_values:
        mask = quota_selection(table, scores, k, quota_attribute, reserved_share=reserved_share)
        disparity = calculator.disparity_from_mask(table, mask)
        row: dict[str, object] = {"k": float(k)}
        row.update(disparity.as_dict())
        rows.append(row)
    result.add_table("fig 6: quota-system disparity", rows)
    result.add_note(
        f"quota attribute: {quota_attribute}; reserved share: "
        f"{'population share' if reserved_share is None else reserved_share}"
    )
    result.add_note(
        "Paper reference: the quota reduces disparity but not as much as DCA (Figure 4a)."
    )
    return result
