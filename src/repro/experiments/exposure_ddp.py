"""Section VI-C4: exposure / demographic disparity (DDP) before and after DCA.

DDP compares the average exposure (1 / log2(rank + 1)) of each group; the
paper reports a roughly five-fold reduction of DDP on the school data when the
log-discounted DCA bonus vector is applied.  The ENI attribute is excluded
because DDP is only defined for binary groups.

The fits run as one :meth:`repro.core.DCA.fit_many` batch — a
:class:`~repro.core.FitSpec` per evaluated cap — so the experiment rides the
same batched backends (serial / thread / shared-memory process pool) as the
other sweeps instead of looping over per-k :meth:`~repro.core.DCA.fit` calls.
"""

from __future__ import annotations

from typing import Sequence

from ..core import FitSpec, LogDiscountedDisparityObjective
from ..metrics import ddp
from .harness import ExperimentResult
from .setting import SchoolSetting

__all__ = ["run"]


def run(
    num_students: int | None = None,
    attributes: Sequence[str] = ("low_income", "ell", "special_ed"),
    max_k: float = 0.5,
    caps: Sequence[float] | None = None,
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
) -> ExperimentResult:
    """Regenerate the before/after DDP comparison.

    ``caps`` optionally sweeps additional log-discount cut-offs (each cap
    fits its own bonus vector, all in one batch); the headline
    before/after table always reports the ``max_k`` fit.  ``executor`` and
    ``max_workers`` select and size the ``fit_many`` backend.
    """
    setting = SchoolSetting(num_students=num_students)
    attributes = tuple(attributes)
    caps = tuple(float(cap) for cap in caps) if caps is not None else ()
    if float(max_k) not in caps:
        caps = caps + (float(max_k),)
    result = ExperimentResult(
        name="exposure_ddp",
        description="Demographic disparity (DDP) of the school ranking before and after DCA",
    )
    table = setting.test.table
    base_scores = setting.base_scores("test")

    # Exposure considers the entire ranking, so the log-discounted mode is
    # used; one batched fit per evaluated cap.
    objective = LogDiscountedDisparityObjective(attributes)
    specs = [
        FitSpec(k=cap, objective=objective, label=f"cap {cap:g}") for cap in sorted(caps)
    ]
    fits = setting.fit_dca_batch(
        specs, max_workers=max_workers, executor=executor, row_workers=row_workers
    )
    by_cap = {fit.k: fit for fit in fits}

    # Compare each protected group against its complement, as well as all
    # groups among themselves: ``include_complements`` builds the complement
    # membership masks on the fly next to the member groups.
    before = ddp(table, base_scores, attributes, include_complements=True)
    if len(fits) > 1:
        cap_rows = []
        for fit in fits:
            compensated = fit.bonus.apply(table, base_scores)
            cap_rows.append(
                {
                    "cap": fit.k,
                    "ddp": ddp(table, compensated, attributes, include_complements=True),
                    "baseline_ddp": before,
                }
            )
        result.add_table("DDP per log-discount cap", cap_rows)

    fitted = by_cap[float(max_k)]
    after = ddp(table, fitted.bonus.apply(table, base_scores), attributes, include_complements=True)
    rows = [
        {"setting": "baseline", "ddp": before},
        {"setting": "after DCA (log-discounted)", "ddp": after},
        {"setting": "reduction factor", "ddp": before / after if after > 0 else float("inf")},
    ]
    result.add_table("DDP before/after", rows)
    result.add_note(f"bonus vector: {fitted.result.as_dict()}")
    result.add_note(
        "Paper reference: DDP drops from 0.00899 to 0.00166 (≈5.4x); absolute values are not "
        "comparable across datasets of different sizes."
    )
    return result
