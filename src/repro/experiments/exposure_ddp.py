"""Section VI-C4: exposure / demographic disparity (DDP) before and after DCA.

DDP compares the average exposure (1 / log2(rank + 1)) of each group; the
paper reports a roughly five-fold reduction of DDP on the school data when the
log-discounted DCA bonus vector is applied.  The ENI attribute is excluded
because DDP is only defined for binary groups.
"""

from __future__ import annotations

from typing import Sequence

from ..core import LogDiscountedDisparityObjective
from ..metrics import ddp
from .harness import ExperimentResult
from .setting import SchoolSetting

__all__ = ["run"]


def run(
    num_students: int | None = None,
    attributes: Sequence[str] = ("low_income", "ell", "special_ed"),
    max_k: float = 0.5,
) -> ExperimentResult:
    """Regenerate the before/after DDP comparison."""
    setting = SchoolSetting(num_students=num_students)
    attributes = tuple(attributes)
    result = ExperimentResult(
        name="exposure_ddp",
        description="Demographic disparity (DDP) of the school ranking before and after DCA",
    )
    table = setting.test.table
    base_scores = setting.base_scores("test")
    # Exposure considers the entire ranking, so the log-discounted mode is used.
    fitted = setting.fit_dca(max_k, objective=LogDiscountedDisparityObjective(attributes))
    compensated = fitted.bonus.apply(table, base_scores)

    # Compare each protected group against its complement, as well as all
    # groups among themselves: ``include_complements`` builds the complement
    # membership masks on the fly next to the member groups.
    before = ddp(table, base_scores, attributes, include_complements=True)
    after = ddp(table, compensated, attributes, include_complements=True)
    rows = [
        {"setting": "baseline", "ddp": before},
        {"setting": "after DCA (log-discounted)", "ddp": after},
        {"setting": "reduction factor", "ddp": before / after if after > 0 else float("inf")},
    ]
    result.add_table("DDP before/after", rows)
    result.add_note(f"bonus vector: {fitted.as_dict()}")
    result.add_note(
        "Paper reference: DDP drops from 0.00899 to 0.00166 (≈5.4x); absolute values are not "
        "comparable across datasets of different sizes."
    )
    return result
