"""End-to-end admissions: DCA bonuses inside a district-scale deferred-acceptance match.

This is the paper's motivating scenario run as a first-class experiment
rather than a toy script: a district of screened schools, each ranking its
applicants with its own (noisy) rubric, students ranking schools, and the
student-proposing deferred-acceptance algorithm computing the assignment.
Because a school does not know in advance how far down its ranked list it
will admit, each school's bonus vector is fitted with the **log-discounted**
objective on last year's cohort — one :class:`~repro.core.dca.FitSpec` per
school, batched through :meth:`repro.core.DCA.fit_many`.

Pipeline
--------

1. fit per-school log-discounted DCA bonus vectors on the training cohort
   (``fit_many`` over one spec per school, distinct seeds);
2. build the ``(num_schools, num_students)`` score planes for the test cohort
   — the shared admission rubric plus a small per-school screening noise,
   with and without each school's bonus points;
3. generate student preference lists (vectorized popularity + Gumbel model)
   and run the heap-engine match on both planes;
4. report per-school admitted-class demographics, the per-attribute
   representation gap against the population shares, and the rank-of-match
   distribution of both matches.

The experiment runs under the CLI as ``repro-experiments run matching`` and
scales to 100k+ students (the matching benchmark drives the same pipeline's
engines at that size).
"""

from __future__ import annotations

import numpy as np

from ..core import LogDiscountedDisparityObjective
from ..core.dca import FitSpec
from ..matching import (
    ENGINES,
    PROPOSING_SIDES,
    deferred_acceptance,
    generate_student_preferences,
)
from ..tabular import Table
from .harness import ExperimentResult
from .setting import SchoolSetting

__all__ = ["run", "MatchingSetting"]

#: Fraction of the applicant cohort that finds a seat across all schools.
DEFAULT_SEAT_FRACTION = 0.15


class MatchingSetting:
    """The admissions-match configuration on top of :class:`SchoolSetting`.

    Bundles everything the match needs beyond the DCA setting itself: the
    number of screened schools, their capacities (an even split of
    ``seat_fraction`` of the applicant cohort), the preference-list length,
    and the per-school screening noise that makes each school's rubric its
    own.
    """

    def __init__(
        self,
        num_students: int | None = None,
        num_schools: int = 6,
        list_length: int = 5,
        seat_fraction: float = DEFAULT_SEAT_FRACTION,
        screening_noise: float = 0.05,
        seed: int = 11,
        engine: str = "heap",
        proposing: str = "students",
    ) -> None:
        if num_schools <= 0:
            raise ValueError(f"num_schools must be positive, got {num_schools}")
        if not 0.0 < seat_fraction <= 1.0:
            raise ValueError(f"seat_fraction must be in (0, 1], got {seat_fraction}")
        # Validate the matching knobs eagerly: the per-school DCA fits run
        # before the match does, and a typo'd engine should not cost minutes
        # of fitting before it fails.
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if proposing not in PROPOSING_SIDES:
            raise ValueError(
                f"unknown proposing side {proposing!r}; expected one of {PROPOSING_SIDES}"
            )
        self.setting = SchoolSetting(num_students=num_students)
        self.num_schools = int(num_schools)
        self.list_length = int(list_length)
        self.screening_noise = float(screening_noise)
        self.seed = int(seed)
        self.engine = engine
        self.proposing = proposing
        num_applicants = self.setting.test.table.num_rows
        self.capacities = [
            int(seat_fraction * num_applicants / num_schools)
        ] * self.num_schools

    # ------------------------------------------------------------------
    def fit_school_bonuses(
        self,
        max_k: float,
        max_workers: int | None = None,
        executor: str | None = None,
        row_workers: int | None = None,
    ):
        """One log-discounted bonus vector per school via ``fit_many``."""
        objective = LogDiscountedDisparityObjective(self.setting.fairness_attributes)
        specs = [
            FitSpec(
                k=max_k,
                seed=self.seed + school,
                objective=objective,
                label=f"school {school}",
            )
            for school in range(self.num_schools)
        ]
        return self.setting.fit_dca_batch(
            specs, max_workers=max_workers, executor=executor, row_workers=row_workers
        )

    def score_planes(self, fits) -> tuple[np.ndarray, np.ndarray]:
        """(baseline, compensated) ``(num_schools, num_students)`` score planes.

        Every school scores applicants with the shared rubric plus its own
        small screening noise; the compensated plane adds that school's
        fitted bonus points on top of the same noisy rubric.
        """
        table = self.setting.test.table
        base = self.setting.base_scores("test")
        rng = np.random.default_rng(self.seed)
        noise_scale = self.screening_noise * float(np.std(base))
        noise = rng.normal(0.0, noise_scale, size=(self.num_schools, base.shape[0]))
        baseline = base[np.newaxis, :] + noise
        compensated = np.vstack(
            [fit.bonus.apply(table, baseline[school]) for school, fit in enumerate(fits)]
        )
        return baseline, compensated

    def preferences(self) -> np.ndarray:
        return generate_student_preferences(
            self.setting.test.table.num_rows,
            self.num_schools,
            list_length=self.list_length,
            rng=np.random.default_rng(self.seed),
            as_matrix=True,
        )

    def match(self, score_plane: np.ndarray, preferences: np.ndarray):
        return deferred_acceptance(
            preferences,
            score_plane,
            self.capacities,
            engine=self.engine,
            proposing=self.proposing,
        )


def _admitted_shares(table: Table, roster, attributes) -> dict[str, float]:
    """Share of each fairness group among one school's admitted students."""
    if not roster:
        return {name: 0.0 for name in attributes}
    admitted = table.take(np.asarray(roster, dtype=np.int64))
    return {name: float(np.mean(admitted.numeric(name))) for name in attributes}


def _demographics_rows(setting: MatchingSetting, match, attributes):
    table = setting.setting.test.table
    rows = []
    for school in range(setting.num_schools):
        roster = match.roster(school)
        row: dict[str, object] = {
            "school": school,
            "seats": setting.capacities[school],
            "admitted": len(roster),
        }
        row.update(_admitted_shares(table, roster, attributes))
        rows.append(row)
    return rows


def _representation_gap(rows, population: dict[str, float], attributes) -> float:
    """Mean absolute deviation of admitted shares from the population shares."""
    gaps = [
        abs(float(row[name]) - population[name])
        for row in rows
        for name in attributes
        if row["admitted"]
    ]
    return float(np.mean(gaps)) if gaps else 0.0


def _rank_row(series: str, match, list_length: int) -> dict[str, object]:
    counts = match.rank_distribution(list_length)
    row: dict[str, object] = {"series": series}
    row.update({f"choice_{rank + 1}": int(counts[rank]) for rank in range(list_length)})
    row["unmatched"] = int(counts[list_length])
    return row


def run(
    num_students: int | None = None,
    num_schools: int = 6,
    list_length: int = 5,
    max_k: float = 0.5,
    seat_fraction: float = DEFAULT_SEAT_FRACTION,
    engine: str = "heap",
    proposing: str = "students",
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
) -> ExperimentResult:
    """Run the full DCA → deferred-acceptance → demographics pipeline.

    ``engine`` selects the deferred-acceptance engine (``"heap"``,
    ``"vector"``, or ``"reference"`` — identical matchings, different
    speed), and ``proposing`` the side that proposes: ``"students"``
    (default, the student-optimal matching — what the NYC match runs) or
    ``"schools"`` (the school-optimal matching, useful for quantifying how
    much the choice of proposing side costs students).
    """
    setting = MatchingSetting(
        num_students=num_students,
        num_schools=num_schools,
        list_length=list_length,
        seat_fraction=seat_fraction,
        engine=engine,
        proposing=proposing,
    )
    attributes = setting.setting.fairness_attributes
    result = ExperimentResult(
        name="matching",
        description=(
            "Admitted-class demographics of a deferred-acceptance match, with and "
            "without per-school log-discounted DCA bonus points"
        ),
    )

    fits = setting.fit_school_bonuses(
        max_k, max_workers=max_workers, executor=executor, row_workers=row_workers
    )
    baseline_plane, compensated_plane = setting.score_planes(fits)
    preferences = setting.preferences()
    baseline_match = setting.match(baseline_plane, preferences)
    compensated_match = setting.match(compensated_plane, preferences)

    table = setting.setting.test.table
    population = {name: float(np.mean(table.numeric(name))) for name in attributes}
    result.add_table("population shares", [dict(population)])

    baseline_rows = _demographics_rows(setting, baseline_match, attributes)
    compensated_rows = _demographics_rows(setting, compensated_match, attributes)
    result.add_table("admitted demographics (uncorrected rubric)", baseline_rows)
    result.add_table("admitted demographics (with bonus points)", compensated_rows)

    result.add_table(
        "representation gap vs population (mean abs deviation)",
        [
            {
                "series": "uncorrected rubric",
                "gap": _representation_gap(baseline_rows, population, attributes),
            },
            {
                "series": "with bonus points",
                "gap": _representation_gap(compensated_rows, population, attributes),
            },
        ],
    )
    result.add_table(
        "rank of match",
        [
            _rank_row("uncorrected rubric", baseline_match, setting.list_length),
            _rank_row("with bonus points", compensated_match, setting.list_length),
        ],
    )
    for fit in fits:
        result.add_note(f"{fit.label} bonus vector: {fit.result.as_dict()}")
    result.add_note(
        f"engine={engine}; proposing={proposing}; proposals: "
        f"baseline={baseline_match.proposals_made}, "
        f"compensated={compensated_match.proposals_made}"
    )
    result.add_note(
        "With bonus points the admitted classes sit much closer to the population "
        "shares, even though each school's admission cut-off was not known when "
        "the bonus points were fitted."
    )
    return result
