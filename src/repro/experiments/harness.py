"""Shared infrastructure for the paper-reproduction experiments.

Every experiment module exposes a ``run(...)`` function returning an
:class:`ExperimentResult`: a named collection of row dictionaries (one table
or figure-series per key) plus free-form notes.  The harness provides
formatting helpers so the CLI, the examples, and EXPERIMENTS.md can all print
the same artefacts, and a small registry the CLI uses to discover the
experiments.

Experiments that need many independent DCA fits (per-k sweeps, per-seed
spreads, config ablations) go through :meth:`repro.core.DCA.fit_many` —
usually via the :class:`~repro.experiments.setting.SchoolSetting` sweep
helpers — rather than hand-rolled loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "ExperimentResult",
    "format_table",
    "register_experiment",
    "experiment_names",
    "get_experiment",
]


def format_table(rows: Sequence[Mapping[str, object]], float_format: str = "{:.3f}") -> str:
    """Render a list of row dicts as a fixed-width text table.

    All rows must share the same keys; numeric values are formatted with
    ``float_format``, everything else with ``str``.
    """
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)
    ]
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(value.ljust(width) for value, width in zip(line, widths)) for line in rendered
    )
    return f"{header}\n{separator}\n{body}"


@dataclass
class ExperimentResult:
    """The output of one reproduction experiment.

    Attributes
    ----------
    name:
        Experiment identifier (``"table1"``, ``"fig4"``, …).
    description:
        One-line description of the paper artefact being reproduced.
    tables:
        Mapping from artefact label (e.g. ``"table I"`` or ``"fig 4a"``) to a
        list of row dictionaries.
    notes:
        Free-form remarks (parameters used, fitted bonus vectors, timings).
    """

    name: str
    description: str
    tables: dict[str, list[dict[str, object]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_table(self, label: str, rows: Iterable[Mapping[str, object]]) -> None:
        self.tables[label] = [dict(row) for row in rows]

    def add_note(self, note: str) -> None:
        self.notes.append(str(note))

    def format(self) -> str:
        """Human-readable rendering of every table plus the notes."""
        parts = [f"== {self.name}: {self.description} =="]
        for label, rows in self.tables.items():
            parts.append(f"\n-- {label} --")
            parts.append(format_table(rows))
        if self.notes:
            parts.append("\nNotes:")
            parts.extend(f"  * {note}" for note in self.notes)
        return "\n".join(parts)

    def table(self, label: str) -> list[dict[str, object]]:
        if label not in self.tables:
            raise KeyError(f"no table {label!r}; available: {sorted(self.tables)}")
        return self.tables[label]


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register_experiment(name: str, runner: Callable[..., ExperimentResult]) -> None:
    """Register an experiment ``run`` callable under ``name`` for the CLI."""
    if not name:
        raise ValueError("experiment name must be non-empty")
    _REGISTRY[name] = runner


def experiment_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {list(experiment_names())}"
        ) from None
