"""Scenario stress sweep: fairness/runtime envelopes across market shapes.

Runs every built-in scenario of :mod:`repro.scenarios` through the
Monte-Carlo driver — by default all six shapes x all three matching engines
x both proposing sides x two DCA objectives, with a ``row_workers=2``
row-sharded fit checked bitwise against its serial twin in every trial —
and reports three tables:

* **fairness envelopes** — min/mean/max over trials of the disparity norm,
  DDP, and representation gaps before vs after compensation, plus the
  matched-cohort share gap;
* **runtime envelopes** — per-engine match seconds and per-backend fit
  seconds;
* **identity checks** — 1/0 verdicts: did every engine produce the same
  matching, and did every parallel fit reproduce the serial bits.

The envelope numbers are also recorded through
``benchmarks/_bench_record.py`` into ``BENCH_scenarios.json`` whenever a
recording destination is armed (``REPRO_BENCH_OUT`` / ``REPRO_REGEN_BENCH``),
extending the committed performance trajectory.

CLI::

    repro-experiments run scenarios --engine vector --row-workers 4
    repro-experiments run scenarios --executor process --workers 4
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

from ..matching import ENGINES, PROPOSING_SIDES
from ..scenarios import builtin_scenarios, run_scenario
from .harness import ExperimentResult

__all__ = ["run"]

#: Row-sharded workers used for the bitwise-identity fit when the CLI does
#: not override ``--row-workers``.
DEFAULT_ROW_WORKERS = 2


def _load_bench_recorder():
    """``record_bench`` from ``benchmarks/_bench_record.py``, or ``None``.

    The recorder lives outside the installed package (it is repo tooling,
    not library code), so locate it relative to the source checkout and
    degrade silently when the experiment runs from an installed wheel.
    """
    for parent in Path(__file__).resolve().parents:
        candidate = parent / "benchmarks" / "_bench_record.py"
        if candidate.is_file():
            spec = importlib.util.spec_from_file_location("_bench_record", candidate)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module.record_bench
    return None


def _flat(envelope: dict[str, dict[str, float]], stat: str = "mean") -> dict[str, float]:
    return {key: stats[stat] for key, stats in envelope.items()}


def run(
    num_students: int | None = None,
    engine: str | None = None,
    proposing: str | None = None,
    executor: str | None = None,
    max_workers: int | None = None,
    row_workers: int | None = None,
    trials: int | None = None,
) -> ExperimentResult:
    """Sweep every built-in scenario and report its envelopes.

    ``engine``/``proposing`` restrict the matching grid to one engine or
    side (default: all three engines on both sides — the full differential
    grid).  ``executor`` adds a ``fit_many`` backend to check bitwise against
    the serial batch; ``row_workers`` sets the row-sharded fit's worker
    count (default 2; the sharded fit must be bitwise identical to serial).
    ``num_students`` rescales every scenario to one size, and ``trials``
    overrides each scenario's Monte-Carlo trial count.
    """
    engines = (engine,) if engine else ENGINES
    proposing_sides = (proposing,) if proposing else PROPOSING_SIDES
    executors = ("serial",) if executor in (None, "serial") else ("serial", executor)
    sharded_workers = row_workers if row_workers is not None else DEFAULT_ROW_WORKERS

    result = ExperimentResult(
        name="scenarios",
        description=(
            "Monte-Carlo market-shape stress sweep: fairness/runtime envelopes and "
            "cross-engine / cross-worker-count identity checks per scenario"
        ),
    )

    fairness_rows = []
    runtime_rows = []
    identity_rows = []
    bench_metrics: dict[str, dict[str, float]] = {}
    for config in builtin_scenarios():
        if num_students is not None:
            config = config.scaled(num_students=num_students)
        envelope = run_scenario(
            config,
            engines=engines,
            proposing_sides=proposing_sides,
            executors=executors,
            row_workers=sharded_workers,
            max_workers=max_workers,
            trials=trials,
        )
        fairness = envelope.fairness
        fairness_rows.append(
            {
                "scenario": config.name,
                "trials": envelope.trials,
                "students": config.num_students,
                "disparity_before": fairness["disparity_norm_before"]["mean"],
                "disparity_after": fairness["disparity_norm_after"]["mean"],
                "ddp_before": fairness["ddp_before"]["mean"],
                "ddp_after": fairness["ddp_after"]["mean"],
                "rep_gap_before": fairness["representation_gap_before"]["mean"],
                "rep_gap_after": fairness["representation_gap_after"]["mean"],
                "match_share_gap": fairness["match_share_gap"]["mean"],
                "unmatched_max": fairness["unmatched_students"]["max"],
            }
        )
        runtime_row: dict[str, object] = {"scenario": config.name}
        for key, stats in sorted(envelope.runtime.items()):
            runtime_row[f"{key}_mean"] = stats["mean"]
            runtime_row[f"{key}_max"] = stats["max"]
        runtime_rows.append(runtime_row)
        identity_rows.append({"scenario": config.name, **envelope.identity})
        bench_metrics[config.name] = {
            "ddp_after": fairness["ddp_after"]["mean"],
            "disparity_after": fairness["disparity_norm_after"]["mean"],
            **{key: stats["mean"] for key, stats in envelope.runtime.items()},
            **envelope.identity,
        }
        if not envelope.all_identical():
            result.add_note(
                f"IDENTITY VIOLATION in scenario {config.name!r}: {envelope.identity}"
            )

    result.add_table("fairness envelopes (mean over trials)", fairness_rows)
    result.add_table("runtime envelopes (seconds)", runtime_rows)
    result.add_table("identity checks (1 = held in every trial)", identity_rows)
    result.add_note(
        f"grid: {len(fairness_rows)} scenarios x engines={','.join(engines)} x "
        f"proposing={','.join(proposing_sides)} x executors={','.join(executors)}; "
        f"row-sharded fit workers={sharded_workers}"
    )
    result.add_note(
        "Identity checks assert the repo's core contracts on every generated "
        "market shape: all engines produce one matching, and every parallel "
        "fit reproduces the serial bits."
    )

    record_bench = _load_bench_recorder()
    if record_bench is not None:
        record_bench(
            "scenarios",
            bench_metrics,
            context={
                "scenarios": len(fairness_rows),
                "engines": len(engines),
                "proposing_sides": len(proposing_sides),
                "row_workers": sharded_workers,
            },
        )
    return result
