"""Figure 8: impact and cost of the DCA refinement step.

(a) the per-k disparity obtained by Core DCA alone (no Adam refinement, no
    iterate averaging) — noisier and with larger residual disparity than the
    refined version of Figure 4a;
(b) wall-clock time of the unrefined and refined algorithms for each k —
    small k values need larger samples (the ``max(1/k, 1/r)`` rule), large k
    values rank more of each sample, and the refinement roughly doubles the
    number of sampled steps.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..core import FitSpec
from .harness import ExperimentResult
from .setting import DEFAULT_K_SWEEP, SchoolSetting

__all__ = ["run"]


def run(
    num_students: int | None = None,
    k_values: Sequence[float] = DEFAULT_K_SWEEP,
    use_rule_based_sample_size: bool = True,
    max_workers: int | None = None,
    executor: str | None = None,
    row_workers: int | None = None,
    step_dispatch: str | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 8a (disparity) and 8b (runtime) series."""
    setting = SchoolSetting(num_students=num_students)
    result = ExperimentResult(
        name="fig8",
        description="Effect and cost of the DCA refinement step across selection fractions",
    )
    base_config = setting.dca_config
    if use_rule_based_sample_size:
        # Let the sample size follow the max(1/k, 1/r) rule so the runtime
        # series shows the same small-k growth as the paper's Figure 8b.
        base_config = replace(base_config, sample_size=None)

    # One batch covering both series: per k, a core-only fit and a refined fit.
    specs = [
        FitSpec(k=float(k), label=label, config=config)
        for k in k_values
        for label, config in (
            ("unrefined", base_config.without_refinement()),
            ("refined", base_config),
        )
    ]
    fits = setting.fit_dca_batch(
        specs,
        max_workers=max_workers,
        executor=executor,
        row_workers=row_workers,
        step_dispatch=step_dispatch,
    )

    disparity_rows: list[dict[str, object]] = []
    timing_rows: list[dict[str, object]] = []
    for core_entry, refined_entry in zip(fits[::2], fits[1::2]):
        k = core_entry.k
        for series, entry in (
            ("Core DCA (unrefined)", core_entry),
            ("DCA (refined)", refined_entry),
        ):
            values = setting.disparity(
                "test", setting.compensated_scores("test", entry.result.bonus), k
            )
            row: dict[str, object] = {"k": k, "series": series}
            row.update({name: values[name] for name in setting.fairness_attributes})
            row["norm"] = values["norm"]
            disparity_rows.append(row)

        timing_rows.append(
            {
                "k": k,
                "unrefined_seconds": core_entry.result.elapsed_seconds,
                "refined_seconds": refined_entry.result.elapsed_seconds,
                "sample_size": refined_entry.result.sample_size,
            }
        )

    result.add_table("fig 8a: disparity with and without refinement", disparity_rows)
    result.add_table("fig 8b: runtime with and without refinement", timing_rows)
    result.add_note(
        "Paper reference: refinement improves disparity roughly threefold and smooths the "
        "per-k curves; runtimes are highest at the smallest k because of the larger samples."
    )
    return result
