"""Figure 8: impact and cost of the DCA refinement step.

(a) the per-k disparity obtained by Core DCA alone (no Adam refinement, no
    iterate averaging) — noisier and with larger residual disparity than the
    refined version of Figure 4a;
(b) wall-clock time of the unrefined and refined algorithms for each k —
    small k values need larger samples (the ``max(1/k, 1/r)`` rule), large k
    values rank more of each sample, and the refinement roughly doubles the
    number of sampled steps.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Sequence

from .harness import ExperimentResult
from .setting import DEFAULT_K_SWEEP, SchoolSetting

__all__ = ["run"]


def run(
    num_students: int | None = None,
    k_values: Sequence[float] = DEFAULT_K_SWEEP,
    use_rule_based_sample_size: bool = True,
) -> ExperimentResult:
    """Regenerate the Figure 8a (disparity) and 8b (runtime) series."""
    setting = SchoolSetting(num_students=num_students)
    result = ExperimentResult(
        name="fig8",
        description="Effect and cost of the DCA refinement step across selection fractions",
    )
    base_config = setting.dca_config
    if use_rule_based_sample_size:
        # Let the sample size follow the max(1/k, 1/r) rule so the runtime
        # series shows the same small-k growth as the paper's Figure 8b.
        base_config = replace(base_config, sample_size=None)

    disparity_rows: list[dict[str, object]] = []
    timing_rows: list[dict[str, object]] = []
    for k in k_values:
        core_config = base_config.without_refinement()
        start = time.perf_counter()
        core_fit = setting.fit_dca(k, config=core_config)
        core_seconds = time.perf_counter() - start

        start = time.perf_counter()
        refined_fit = setting.fit_dca(k, config=base_config)
        refined_seconds = time.perf_counter() - start

        core_values = setting.disparity(
            "test", setting.compensated_scores("test", core_fit.bonus), k
        )
        refined_values = setting.disparity(
            "test", setting.compensated_scores("test", refined_fit.bonus), k
        )
        row: dict[str, object] = {"k": float(k), "series": "Core DCA (unrefined)"}
        row.update({name: core_values[name] for name in setting.fairness_attributes})
        row["norm"] = core_values["norm"]
        disparity_rows.append(row)
        row = {"k": float(k), "series": "DCA (refined)"}
        row.update({name: refined_values[name] for name in setting.fairness_attributes})
        row["norm"] = refined_values["norm"]
        disparity_rows.append(row)

        timing_rows.append(
            {
                "k": float(k),
                "unrefined_seconds": core_seconds,
                "refined_seconds": refined_seconds,
                "sample_size": refined_fit.sample_size,
            }
        )

    result.add_table("fig 8a: disparity with and without refinement", disparity_rows)
    result.add_table("fig 8b: runtime with and without refinement", timing_rows)
    result.add_note(
        "Paper reference: refinement improves disparity roughly threefold and smooths the "
        "per-k curves; runtimes are highest at the smallest k because of the larger samples."
    )
    return result
