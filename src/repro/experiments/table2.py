"""Table II: DCA vs Multinomial FA*IR on a single school district.

Multinomial FA*IR cannot handle overlapping protected groups and, in the
authors' experience, does not scale to the full city, so the paper runs the
comparison on one district of ≈2,500 students with three binary fairness
attributes (low-income, ELL, special-ed), using the three most-discriminated
Cartesian-product subgroups as FA*IR's protected groups.  Both methods reduce
disparity; DCA does better because it treats the overlapping dimensions
directly.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines import MultinomialFairRanker, cartesian_subgroups
from ..core import DCA, DisparityCalculator
from ..ranking import selection_size
from .harness import ExperimentResult
from .setting import DEFAULT_K, SchoolSetting

__all__ = ["run"]


def run(
    num_students: int | None = None,
    district: int = 20,
    k: float = DEFAULT_K,
    attributes: Sequence[str] = ("low_income", "ell", "special_ed"),
    alpha: float = 0.1,
) -> ExperimentResult:
    """Regenerate Table II on one synthetic district."""
    setting = SchoolSetting(num_students=num_students)
    attributes = tuple(attributes)
    district_table = setting.train.district(district)
    if district_table.num_rows < 100:
        raise ValueError(
            f"district {district} has only {district_table.num_rows} students; pick another"
        )
    base_scores = setting.rubric.scores(district_table)
    calculator = DisparityCalculator(attributes).fit(district_table)
    size = selection_size(district_table.num_rows, k)

    result = ExperimentResult(
        name="table2",
        description="DCA vs Multinomial FA*IR on a single district",
    )

    def row_from_disparity(label: str, disparity) -> dict[str, object]:
        row: dict[str, object] = {"method": label}
        row.update(disparity.as_dict())
        return row

    baseline = calculator.disparity(district_table, base_scores, k)
    rows = [row_from_disparity("Baseline", baseline)]

    # DCA fitted directly on the district.
    dca = DCA(attributes, setting.rubric, k=k, config=setting.dca_config)
    fitted = dca.fit(district_table)
    compensated = fitted.bonus.apply(district_table, base_scores)
    rows.append(row_from_disparity("DCA", calculator.disparity(district_table, compensated, k)))

    # Multinomial FA*IR over the three most-disadvantaged disjoint subgroups.
    subgroups = cartesian_subgroups(district_table, attributes, top=3)
    proportions = {name: float(mask.mean()) for name, mask in subgroups.items()}
    ranker = MultinomialFairRanker(proportions=proportions, alpha=alpha, seed=setting.seed)
    fair_mask = ranker.rerank_mask(base_scores, subgroups, size)
    rows.append(
        row_from_disparity("Multinomial FA*IR", calculator.disparity_from_mask(district_table, fair_mask))
    )

    result.add_table("table II", rows)
    result.add_note(f"district {district}: {district_table.num_rows} students; k = {k:.0%}")
    result.add_note(f"DCA bonus points: {fitted.as_dict()}")
    result.add_note(f"FA*IR protected subgroups and shares: { {n: round(p, 4) for n, p in proportions.items()} }")
    result.add_note(
        "Paper reference: baseline norm ≈ 0.32, DCA norm ≈ 0.01, Multinomial FA*IR norm ≈ 0.11 — "
        "both methods improve, DCA more so because it handles overlapping subgroups."
    )
    return result
