"""Table I: school-data disparity before and after bonus points.

Reproduces the paper's headline table: the baseline disparity of the school
rubric at a 5% selection rate on the training and test cohorts, the bonus
points found by Core DCA (Algorithm 1 alone) and by DCA (with the refinement
step), and the resulting disparities on both cohorts.
"""

from __future__ import annotations

from .harness import ExperimentResult
from .setting import DEFAULT_K, SchoolSetting

__all__ = ["run"]


def _disparity_row(setting: SchoolSetting, which: str, scores, label: str) -> dict[str, object]:
    values = setting.disparity(which, scores, DEFAULT_K)
    row: dict[str, object] = {"setting": label}
    for name in setting.fairness_attributes:
        row[name] = values[name]
    row["norm"] = values["norm"]
    return row


def run(num_students: int | None = None, k: float = DEFAULT_K) -> ExperimentResult:
    """Regenerate Table I.

    Parameters
    ----------
    num_students:
        Cohort size override (None = the paper-scale 80,000 students).
    k:
        Selection fraction (default 5%).
    """
    setting = SchoolSetting(num_students=num_students)
    result = ExperimentResult(
        name="table1",
        description="Disparity vectors for the school data before and after bonus points",
    )

    baseline_rows = [
        _disparity_row(setting, "train", setting.base_scores("train"), "Training 2016-2017"),
        _disparity_row(setting, "test", setting.base_scores("test"), "Test 2017-2018"),
    ]
    result.add_table("baseline disparity", baseline_rows)

    # Core DCA: Algorithm 1 only (no refinement step).
    core_config = setting.dca_config.without_refinement()
    core_result = setting.fit_dca(k, config=core_config)
    core_rows = [
        {"setting": "Bonus Points", **core_result.as_dict(), "norm": ""},
        _disparity_row(
            setting,
            "train",
            setting.compensated_scores("train", core_result.bonus),
            "Training 2016-2017",
        ),
        _disparity_row(
            setting,
            "test",
            setting.compensated_scores("test", core_result.bonus),
            "Test 2017-2018",
        ),
    ]
    result.add_table("Core DCA", core_rows)

    # Full DCA with refinement.
    dca_result = setting.fit_dca(k)
    dca_rows = [
        {"setting": "Bonus Points", **dca_result.as_dict(), "norm": ""},
        _disparity_row(
            setting,
            "train",
            setting.compensated_scores("train", dca_result.bonus),
            "Training 2016-2017",
        ),
        _disparity_row(
            setting,
            "test",
            setting.compensated_scores("test", dca_result.bonus),
            "Test 2017-2018",
        ),
    ]
    result.add_table("DCA (with refinement)", dca_rows)

    result.add_note(f"selection fraction k = {k:.0%}; sample size = {dca_result.sample_size}")
    result.add_note(f"Core DCA bonus vector: {core_result.as_dict()}")
    result.add_note(f"DCA bonus vector: {dca_result.as_dict()}")
    result.add_note(
        "Paper reference (Table I): baseline norm ≈ 0.37; Core DCA norm ≈ 0.06-0.07; DCA norm ≈ 0.02-0.03."
    )
    return result
