"""Top-k% selection: turning scores into a selected / unselected partition.

The paper's ranking process ``R`` "selects the k% best objects with the
highest f(o) values".  These helpers implement that selection carefully:

* ``k`` is a *percentage* of the population expressed as a fraction in
  (0, 1]; the number of selected objects is ``ceil(k * n)`` so that a
  non-empty selection is always produced for positive ``k``.
* Ties at the selection boundary are broken deterministically by original row
  index, so repeated runs over the same table select the same objects.  This
  matters for the COMPAS deciles where thousands of defendants share a score.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "selection_size",
    "top_k_indices",
    "selection_mask",
    "selection_threshold",
    "rank_positions",
]


def selection_size(num_objects: int, k: float) -> int:
    """Number of objects selected when choosing the top ``k`` fraction.

    ``k`` must lie in (0, 1].  The size is ``ceil(k * num_objects)`` capped at
    ``num_objects``; for any positive ``k`` and non-empty population at least
    one object is selected.
    """
    if not 0.0 < k <= 1.0:
        raise ValueError(f"selection fraction k must be in (0, 1], got {k}")
    if num_objects < 0:
        raise ValueError(f"num_objects must be non-negative, got {num_objects}")
    if num_objects == 0:
        return 0
    return min(num_objects, max(1, math.ceil(k * num_objects)))


def rank_positions(scores: np.ndarray) -> np.ndarray:
    """Return the 0-based rank of each object (0 = highest score).

    Ties are broken by original index (earlier rows rank higher), making the
    ranking a deterministic function of the score array.
    """
    scores = np.asarray(scores, dtype=float)
    order = np.lexsort((np.arange(scores.shape[0]), -scores))
    ranks = np.empty(scores.shape[0], dtype=np.int64)
    ranks[order] = np.arange(scores.shape[0])
    return ranks


def top_k_indices(scores: np.ndarray, k: float) -> np.ndarray:
    """Indices of the top ``k`` fraction of objects, ordered best-first."""
    scores = np.asarray(scores, dtype=float)
    size = selection_size(scores.shape[0], k)
    order = np.lexsort((np.arange(scores.shape[0]), -scores))
    return order[:size]


def selection_mask(scores: np.ndarray, k: float) -> np.ndarray:
    """Boolean mask that is True for objects in the top ``k`` fraction.

    The selected *set* is exactly the one ``top_k_indices`` returns (including
    the index-based tie break at the boundary), but because the mask does not
    need the within-selection ordering it is computed with an ``O(n)``
    partition instead of a full sort.  This function sits on the hot path of
    every sampled DCA step, so the difference is measurable.
    """
    scores = np.asarray(scores, dtype=float)
    n = scores.shape[0]
    size = selection_size(n, k)
    if size >= n:
        return np.ones(n, dtype=bool)
    low = scores.min()
    if low != low:  # NaN present
        # NaN ordering under argpartition differs from the lexsort reference;
        # fall back to the exact (slower) path for pathological inputs.
        mask = np.zeros(n, dtype=bool)
        mask[top_k_indices(scores, k)] = True
        return mask
    # Partition ascending: the element landing at position n - size is the
    # size-th largest score, i.e. the selection threshold.
    threshold = scores[scores.argpartition(n - size)[n - size]]
    mask = scores > threshold
    remaining = size - int(np.count_nonzero(mask))
    if remaining > 0:
        # Boundary ties are admitted in original-row order, matching the
        # deterministic lexsort tie break of ``top_k_indices``.
        ties = np.flatnonzero(scores == threshold)
        mask[ties[:remaining]] = True
    return mask


def selection_threshold(scores: np.ndarray, k: float) -> float:
    """Score of the last selected object (the admission cut-off).

    Publishing this threshold is part of the transparency story of the paper:
    together with the bonus-point vector it lets applicants predict whether
    they would have been selected.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.shape[0] == 0:
        raise ValueError("cannot compute a selection threshold over zero objects")
    indices = top_k_indices(scores, k)
    return float(scores[indices[-1]])
