"""The :class:`Ranking` object: a scored, ordered view over a table.

A :class:`Ranking` bundles together a table, the score of every row, and the
derived ordering.  It is the common currency passed between the core DCA
algorithm, the fairness metrics, and the baselines: every one of them needs
"the objects, their scores, and who is in the top k".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..tabular import Table
from .functions import ScoreFunction
from .selection import rank_positions, selection_mask, selection_size, top_k_indices

__all__ = ["Ranking", "rank_table"]


@dataclass(frozen=True)
class Ranking:
    """A table together with per-row scores and the induced ordering.

    Attributes
    ----------
    table:
        The ranked objects.
    scores:
        Higher-is-better score for each row of ``table``.
    """

    table: Table
    scores: np.ndarray
    _ranks: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        scores = np.asarray(self.scores, dtype=float)
        if scores.shape != (self.table.num_rows,):
            raise ValueError(
                f"scores have shape {scores.shape}, expected ({self.table.num_rows},)"
            )
        object.__setattr__(self, "scores", scores)
        object.__setattr__(self, "_ranks", rank_positions(scores))

    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return self.table.num_rows

    @property
    def ranks(self) -> np.ndarray:
        """0-based rank of each row (0 = best)."""
        return self._ranks

    def order(self) -> np.ndarray:
        """Row indices sorted best-first."""
        return np.argsort(self._ranks, kind="stable")

    def sorted_table(self) -> Table:
        """The table reordered best-first."""
        return self.table.take(self.order())

    # ------------------------------------------------------------------
    def selection_size(self, k: float) -> int:
        return selection_size(self.num_objects, k)

    def top_k_indices(self, k: float) -> np.ndarray:
        return top_k_indices(self.scores, k)

    def selected_mask(self, k: float) -> np.ndarray:
        return selection_mask(self.scores, k)

    def selected(self, k: float) -> Table:
        """The top ``k`` fraction of objects as a table, ordered best-first."""
        return self.table.take(self.top_k_indices(k))

    def unselected(self, k: float) -> Table:
        """Objects outside the top ``k`` fraction."""
        return self.table.filter(~self.selected_mask(k))

    # ------------------------------------------------------------------
    def with_scores(self, scores: np.ndarray) -> "Ranking":
        """A new ranking over the same table with different scores."""
        return Ranking(self.table, np.asarray(scores, dtype=float))

    def centroid(self, attribute_names: Sequence[str], k: float | None = None) -> np.ndarray:
        """Centroid of the fairness attributes, over everyone or over the top-k."""
        source = self.table if k is None else self.selected(k)
        return source.centroid(list(attribute_names))


def rank_table(table: Table, score_function: ScoreFunction) -> Ranking:
    """Score ``table`` with ``score_function`` and return the resulting ranking."""
    return Ranking(table, score_function.scores(table))
