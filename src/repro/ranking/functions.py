"""Score-based ranking functions (Definition 1 of the paper).

A ranking function maps every object (row of a :class:`~repro.tabular.Table`)
to a real-valued score; the ranking process then selects the top ``k`` percent
of objects by score.  The paper's experiments use two concrete families:

* a **weighted-sum rubric** over normalized attributes (the NYC school
  admission screen ``0.55 * GPA + 0.45 * TestScores``), and
* a **rank-derived score** built from the COMPAS decile score, where lower
  deciles are better so the score is negated before ranking ("we consider the
  decile score as the ranking function (the lower the better)").

All score functions are pure: they read columns from the table and return a
float array, never mutating the table.  Bonus points are applied *on top of*
these scores by :mod:`repro.core.bonus`, which is what makes the intervention
explainable — the base score and the compensation are separately visible.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence

import numpy as np

from ..tabular import Table

__all__ = [
    "ScoreFunction",
    "WeightedSumScore",
    "ColumnScore",
    "NegatedColumnScore",
    "RankDerivedScore",
    "CompositeScore",
]


class ScoreFunction(abc.ABC):
    """Abstract base class for score-based ranking functions."""

    @abc.abstractmethod
    def scores(self, table: Table) -> np.ndarray:
        """Return one score per row of ``table`` (higher is better)."""

    @property
    @abc.abstractmethod
    def attribute_names(self) -> tuple[str, ...]:
        """Names of the table columns the function reads."""

    def __call__(self, table: Table) -> np.ndarray:
        return self.scores(table)

    def score_range(self, table: Table) -> tuple[float, float]:
        """Minimum and maximum score over ``table`` (used for normalization)."""
        values = self.scores(table)
        return float(values.min()), float(values.max())


class ColumnScore(ScoreFunction):
    """Use an existing numeric column directly as the score (higher is better)."""

    def __init__(self, column: str) -> None:
        self._column = column

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return (self._column,)

    def scores(self, table: Table) -> np.ndarray:
        return table.numeric(self._column)

    def __repr__(self) -> str:
        return f"ColumnScore({self._column!r})"


class NegatedColumnScore(ScoreFunction):
    """Use a numeric column where *lower* raw values are better.

    The COMPAS decile score is an example: decile 1 is the lowest predicted
    recidivism risk, so objects with low deciles should rank at the top of a
    "release first" ordering.  Negating turns it into a higher-is-better score
    so the rest of the library needs only one convention.
    """

    def __init__(self, column: str) -> None:
        self._column = column

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return (self._column,)

    def scores(self, table: Table) -> np.ndarray:
        return -table.numeric(self._column)

    def __repr__(self) -> str:
        return f"NegatedColumnScore({self._column!r})"


class WeightedSumScore(ScoreFunction):
    """Weighted sum of (optionally normalized) numeric columns.

    Parameters
    ----------
    weights:
        Mapping from column name to weight.  The paper's school rubric is
        ``WeightedSumScore({"gpa": 0.55, "test_scores": 0.45}, scale=100.0)``.
    normalize:
        When True (default) each input column is min-max normalized into
        [0, 1] over the supplied table before weighting, mirroring the paper's
        "normalized average" attributes.
    scale:
        Multiplier applied to the weighted sum; the school rubric is published
        on a 100-point scale, which makes bonus-point magnitudes interpretable
        ("11.5 bonus points on a 100-point rubric").
    """

    def __init__(
        self,
        weights: Mapping[str, float],
        normalize: bool = True,
        scale: float = 1.0,
    ) -> None:
        if not weights:
            raise ValueError("WeightedSumScore requires at least one column weight")
        self._weights = {str(name): float(weight) for name, weight in weights.items()}
        self._normalize = bool(normalize)
        self._scale = float(scale)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self._weights.keys())

    @property
    def weights(self) -> dict[str, float]:
        return dict(self._weights)

    @property
    def scale(self) -> float:
        return self._scale

    def scores(self, table: Table) -> np.ndarray:
        total = np.zeros(table.num_rows, dtype=float)
        for name, weight in self._weights.items():
            values = table.numeric(name)
            if self._normalize:
                low, high = float(values.min()), float(values.max())
                if high > low:
                    values = (values - low) / (high - low)
                else:
                    values = np.zeros_like(values)
            total += weight * values
        return total * self._scale

    def __repr__(self) -> str:
        return (
            f"WeightedSumScore({self._weights!r}, normalize={self._normalize}, "
            f"scale={self._scale})"
        )


class RankDerivedScore(ScoreFunction):
    """Simulate an underlying score for rank-only (ordinal) ranking functions.

    Section VI-B of the paper applies bonus points to the COMPAS *decile*
    scores by treating the ordinal value as if it were a score.  More
    generally, when only a ranking (an ordering) is available, a score can be
    simulated from the rank: object at rank ``i`` (0 = best) out of ``n``
    receives score ``scale * (n - i) / n``.  Bonus points then shift objects
    relative to this simulated scale.
    """

    def __init__(self, base: ScoreFunction, scale: float = 10.0) -> None:
        self._base = base
        self._scale = float(scale)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self._base.attribute_names

    def scores(self, table: Table) -> np.ndarray:
        base_scores = self._base.scores(table)
        n = base_scores.shape[0]
        if n == 0:
            return base_scores
        order = np.argsort(-base_scores, kind="stable")
        ranks = np.empty(n, dtype=float)
        ranks[order] = np.arange(n, dtype=float)
        return self._scale * (n - ranks) / n

    def __repr__(self) -> str:
        return f"RankDerivedScore({self._base!r}, scale={self._scale})"


class CompositeScore(ScoreFunction):
    """Sum of several score functions (used to stack a base score and extras)."""

    def __init__(self, parts: Sequence[ScoreFunction]) -> None:
        if not parts:
            raise ValueError("CompositeScore requires at least one part")
        self._parts = tuple(parts)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        names: list[str] = []
        for part in self._parts:
            for name in part.attribute_names:
                if name not in names:
                    names.append(name)
        return tuple(names)

    def scores(self, table: Table) -> np.ndarray:
        total = np.zeros(table.num_rows, dtype=float)
        for part in self._parts:
            total += part.scores(table)
        return total

    def __repr__(self) -> str:
        return f"CompositeScore({list(self._parts)!r})"
