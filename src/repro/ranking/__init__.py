"""Ranking substrate: score functions, top-k selection, and the Ranking object."""

from .functions import (
    ColumnScore,
    CompositeScore,
    NegatedColumnScore,
    RankDerivedScore,
    ScoreFunction,
    WeightedSumScore,
)
from .ranking import Ranking, rank_table
from .selection import (
    rank_positions,
    selection_mask,
    selection_size,
    selection_threshold,
    top_k_indices,
)

__all__ = [
    "ScoreFunction",
    "ColumnScore",
    "NegatedColumnScore",
    "WeightedSumScore",
    "RankDerivedScore",
    "CompositeScore",
    "Ranking",
    "rank_table",
    "selection_size",
    "top_k_indices",
    "selection_mask",
    "selection_threshold",
    "rank_positions",
]
