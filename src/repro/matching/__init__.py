"""Deferred-acceptance matching substrate for the school-admissions scenario.

``deferred_acceptance`` runs the match on a heap-backed array plane by
default (``engine="heap"``, O(P log c)); ``engine="vector"`` is the
round-based engine with no per-proposal Python loop (an order of magnitude
faster at district scale), and the original pure-Python implementation
survives as ``engine="reference"``.  ``proposing="students"`` (default)
returns the student-optimal stable matching, ``proposing="schools"`` the
school-optimal one; every engine supports both sides and all of them are
proven to produce identical matchings (``tests/test_matching.py``,
``tests/test_matching_properties.py``).  ``generate_student_preferences``
builds district-size preference lists from a vectorized
popularity-plus-Gumbel utility model.  The end-to-end admissions workload
lives in :mod:`repro.experiments.matching_admissions`.
"""

from .deferred_acceptance import ENGINES, PROPOSING_SIDES, MatchResult, deferred_acceptance
from .preferences import generate_student_preferences

__all__ = [
    "ENGINES",
    "PROPOSING_SIDES",
    "MatchResult",
    "deferred_acceptance",
    "generate_student_preferences",
]
