"""Deferred-acceptance matching substrate for the school-admissions scenario.

``deferred_acceptance`` runs the student-proposing match on a heap-backed
array plane by default (``engine="heap"``, O(P log c)); the original
pure-Python implementation survives as ``engine="reference"`` and the two are
proven to produce the identical student-optimal stable matching.
``generate_student_preferences`` builds district-size preference lists from a
vectorized popularity-plus-Gumbel utility model.  The end-to-end admissions
workload lives in :mod:`repro.experiments.matching_admissions`.
"""

from .deferred_acceptance import MatchResult, deferred_acceptance
from .preferences import generate_student_preferences

__all__ = ["MatchResult", "deferred_acceptance", "generate_student_preferences"]
