"""Deferred-acceptance matching substrate for the school-admissions scenario."""

from .deferred_acceptance import MatchResult, deferred_acceptance
from .preferences import generate_student_preferences

__all__ = ["MatchResult", "deferred_acceptance", "generate_student_preferences"]
