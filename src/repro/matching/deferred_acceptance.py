"""Student-proposing deferred acceptance (Gale–Shapley) matching.

The NYC high-school admission process that motivates the paper matches
students to schools with a deferred-acceptance algorithm: students submit a
preference list over schools, each school ranks its applicants with its own
rubric (possibly including DCA bonus points), and the match is computed by the
classic student-proposing procedure.  Because of this matching layer, a school
does not know in advance how far down its ranked list it will reach — which is
precisely the motivation for the log-discounted variant of DCA.

This module implements the matching substrate so that the admissions
experiment (:mod:`repro.experiments.matching_admissions`) can run an
end-to-end simulation at district scale: generate students, compute each
school's (bonus-compensated) ranking, run deferred acceptance, and inspect the
demographics of each school's admitted class.

Engines
-------

``deferred_acceptance`` accepts an ``engine`` argument:

``"heap"`` (default)
    The array-plane engine.  All ranking forms are normalized **once** into a
    ``(num_schools, num_students)`` float score plane (``NaN`` marks a
    student a school finds unacceptable), and each school's tentative roster
    is a binary min-heap keyed by ``(score, -student)`` so the weakest held
    student sits at the top.  A proposal to a full school is an O(log c)
    ``heapreplace`` instead of an O(c) roster rescan, making the whole match
    O(P log c) for P proposals — the difference between seconds and minutes
    on 100k-student cohorts.

``"reference"``
    The original pure-Python implementation: per-school ``dict`` rosters and
    a full ``min()`` rescan on every bump, i.e. O(P × c).  It is kept as a
    readable reference and is proven equivalent to the heap engine on
    randomized instances by the test-suite (student-proposing deferred
    acceptance has a *unique* student-optimal stable matching once school
    preferences are made strict by the ``-student`` tie-break, so the two
    engines must agree exactly).

Proposal accounting
-------------------

``proposals_made`` counts every application that a school with at least one
seat actually considers — including applications it rejects because the
student is unacceptable.  Applications to zero-capacity schools are skipped
without being counted: such a school can never consider anyone, and counting
them would inflate the complexity diagnostic with no-ops.  Both engines
implement the same accounting, and because the student-optimal matching is
order-independent, both report the same count.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

__all__ = ["MatchResult", "deferred_acceptance"]

_ENGINES = ("heap", "reference")


@dataclass(frozen=True)
class MatchResult:
    """Outcome of a deferred-acceptance run.

    Attributes
    ----------
    assignment:
        ``assignment[s]`` is the school index student ``s`` is matched to, or
        ``-1`` if the student is unmatched.
    rosters:
        For each school, the list of matched student indices, ordered by the
        school's preference (best first).
    proposals_made:
        Total number of proposals considered by schools with capacity (a
        useful complexity diagnostic; see the module docstring for the exact
        accounting).
    matched_rank:
        ``matched_rank[s]`` is the 0-based position of student ``s``'s
        assigned school in their preference list (0 = first choice), or
        ``-1`` if unmatched.
    """

    assignment: np.ndarray
    rosters: tuple[tuple[int, ...], ...]
    proposals_made: int
    matched_rank: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def num_unmatched(self) -> int:
        return int(np.sum(self.assignment < 0))

    def roster(self, school: int) -> tuple[int, ...]:
        return self.rosters[school]

    def rank_distribution(self, max_rank: int) -> np.ndarray:
        """Count of students matched at each preference rank (last bin = unmatched).

        Returns an array of length ``max_rank + 1``: entry ``r`` is the number
        of students matched to their ``r``-th listed school, and the final
        entry counts unmatched students, so the counts always sum to the
        cohort size.  ``max_rank`` must cover the longest preference list
        (pass the list length); a match at a rank beyond it is an error
        rather than a silently dropped student.
        """
        ranks = self.matched_rank
        matched = ranks >= 0
        if matched.any():
            highest = int(ranks[matched].max())
            if highest >= max_rank:
                raise ValueError(
                    f"a student matched at preference rank {highest}; "
                    f"max_rank={max_rank} does not cover it"
                )
        counts = np.zeros(max_rank + 1, dtype=np.int64)
        counts[:max_rank] = np.bincount(ranks[matched], minlength=max_rank)
        counts[max_rank] = int(np.sum(~matched))
        return counts


def _normalize_preferences(
    student_preferences: Sequence[Sequence[int]] | np.ndarray, num_schools: int
) -> list[Sequence[int]]:
    """Validate preference lists and return them as per-student sequences.

    A 2-D integer array is accepted as a padded preference matrix: each row is
    one student's list, right-padded with ``-1``.  Padding must be trailing —
    a ``-1`` followed by a school index is rejected.
    """
    if isinstance(student_preferences, np.ndarray):
        if student_preferences.ndim != 2:
            raise ValueError(
                f"preference matrix must be 2-D, got shape {student_preferences.shape}"
            )
        matrix = student_preferences.astype(np.int64, copy=False)
        if matrix.size and (matrix.max() >= num_schools or matrix.min() < -1):
            bad = int(matrix.max()) if matrix.max() >= num_schools else int(matrix.min())
            raise ValueError(f"preference matrix lists unknown school {bad} (num_schools={num_schools})")
        valid = matrix >= 0
        if matrix.size and np.any(valid[:, 1:] & ~valid[:, :-1]):
            raise ValueError("preference matrix padding (-1) must be trailing")
        lengths = valid.sum(axis=1)
        rows = matrix.tolist()
        return [row[:length] for row, length in zip(rows, lengths)]
    for student, preferences in enumerate(student_preferences):
        for school in preferences:
            if not 0 <= school < num_schools:
                raise ValueError(
                    f"student {student} lists unknown school {school} (num_schools={num_schools})"
                )
    return list(student_preferences)


def _normalize_rankings(
    school_rankings: Sequence[Mapping[int, float] | Sequence[float]] | np.ndarray,
    num_schools: int,
    num_students: int,
) -> np.ndarray:
    """Build the ``(num_schools, num_students)`` score plane, NaN = unacceptable.

    Accepted forms, normalized once up front so the hot loop never touches
    Python mappings:

    * a 2-D float array of shape ``(num_schools, num_students)`` (``NaN``
      entries mark unacceptable students) — used as-is;
    * per school, a mapping ``student -> score`` (students absent from the
      mapping are unacceptable);
    * per school, a sequence of per-student scores; students beyond the end
      of a short sequence are unacceptable.
    """
    if isinstance(school_rankings, np.ndarray):
        if school_rankings.shape != (num_schools, num_students):
            raise ValueError(
                f"score matrix has shape {school_rankings.shape}, "
                f"expected ({num_schools}, {num_students})"
            )
        return school_rankings.astype(float, copy=False)
    if len(school_rankings) != num_schools:
        raise ValueError(
            f"got {len(school_rankings)} school rankings for {num_schools} capacities"
        )
    plane = np.full((num_schools, num_students), np.nan, dtype=float)
    for school, ranking in enumerate(school_rankings):
        if isinstance(ranking, Mapping):
            for student, value in ranking.items():
                if 0 <= student < num_students:
                    plane[school, student] = float(value)
        else:
            values = np.asarray(ranking, dtype=float)
            count = min(values.shape[0], num_students)
            plane[school, :count] = values[:count]
    return plane


def _validate_capacities(capacities: Sequence[int]) -> list[int]:
    capacities = [int(capacity) for capacity in capacities]
    for school, capacity in enumerate(capacities):
        if capacity < 0:
            raise ValueError(f"school {school} has negative capacity {capacity}")
    return capacities


def _run_heap(
    preferences: list[Sequence[int]],
    score_plane: np.ndarray,
    capacities: list[int],
) -> MatchResult:
    """Heap-engine match: O(log c) bumps over precomputed score rows."""
    num_students = len(preferences)
    num_schools = len(capacities)
    # Python lists of floats index ~5x faster than NumPy scalar access in the
    # per-proposal loop, and NaN survives the conversion (score != score).
    score_rows: list[list[float]] = score_plane.tolist()
    assignment = [-1] * num_students
    matched_rank = [-1] * num_students
    next_choice = [0] * num_students
    heaps: list[list[tuple[float, int]]] = [[] for _ in range(num_schools)]
    heappush, heapreplace = heapq.heappush, heapq.heapreplace

    stack = [s for s in range(num_students) if preferences[s]]
    proposals = 0
    while stack:
        student = stack.pop()
        prefs = preferences[student]
        ptr = next_choice[student]
        length = len(prefs)
        while ptr < length:
            school = prefs[ptr]
            ptr += 1
            capacity = capacities[school]
            if capacity == 0:
                continue
            proposals += 1
            score = score_rows[school][student]
            if score != score:  # NaN: unacceptable to this school
                continue
            heap = heaps[school]
            entry = (score, -student)
            if len(heap) < capacity:
                heappush(heap, entry)
                assignment[student] = school
                matched_rank[student] = ptr - 1
                break
            weakest = heap[0]
            if entry > weakest:
                heapreplace(heap, entry)
                bumped = -weakest[1]
                assignment[bumped] = -1
                matched_rank[bumped] = -1
                if next_choice[bumped] < len(preferences[bumped]):
                    stack.append(bumped)
                assignment[student] = school
                matched_rank[student] = ptr - 1
                break
        next_choice[student] = ptr

    rosters = tuple(
        tuple(-neg for _, neg in sorted(heap, key=lambda entry: (-entry[0], -entry[1])))
        for heap in heaps
    )
    return MatchResult(
        assignment=np.asarray(assignment, dtype=np.int64),
        rosters=rosters,
        proposals_made=proposals,
        matched_rank=np.asarray(matched_rank, dtype=np.int64),
    )


def _run_reference(
    preferences: list[Sequence[int]],
    score_plane: np.ndarray,
    capacities: list[int],
) -> MatchResult:
    """The original dict-roster implementation, kept as the readable reference."""
    num_students = len(preferences)
    num_schools = len(capacities)

    def score_of(school: int, student: int) -> float | None:
        value = score_plane[school, student]
        return None if np.isnan(value) else float(value)

    # next_choice[s]: index into student s's preference list to propose to next.
    next_choice = np.zeros(num_students, dtype=np.int64)
    matched_rank = np.full(num_students, -1, dtype=np.int64)
    assignment = np.full(num_students, -1, dtype=np.int64)
    # Tentative rosters: per school, dict student -> score.
    held: list[dict[int, float]] = [dict() for _ in range(num_schools)]
    free_students = [s for s in range(num_students) if preferences[s]]
    proposals = 0

    while free_students:
        student = free_students.pop()
        prefs = preferences[student]
        matched = False
        while next_choice[student] < len(prefs):
            school = prefs[next_choice[student]]
            next_choice[student] += 1
            capacity = capacities[school]
            if capacity == 0:
                continue  # a seatless school considers nobody — not a proposal
            proposals += 1
            score = score_of(school, student)
            if score is None:
                continue  # unacceptable to this school
            roster = held[school]
            if len(roster) < capacity:
                roster[student] = score
                assignment[student] = school
                matched_rank[student] = int(next_choice[student]) - 1
                matched = True
                break
            # School is full: bump the weakest held student if this one is better.
            weakest = min(roster, key=lambda s: (roster[s], -s))
            if (score, -student) > (roster[weakest], -weakest):
                del roster[weakest]
                assignment[weakest] = -1
                matched_rank[weakest] = -1
                roster[student] = score
                assignment[student] = school
                matched_rank[student] = int(next_choice[student]) - 1
                if next_choice[weakest] < len(preferences[weakest]):
                    free_students.append(weakest)
                matched = True
                break
        if not matched:
            assignment[student] = -1

    rosters = tuple(
        tuple(sorted(held[school], key=lambda s: (-held[school][s], s)))
        for school in range(num_schools)
    )
    return MatchResult(
        assignment=assignment,
        rosters=rosters,
        proposals_made=proposals,
        matched_rank=matched_rank,
    )


def deferred_acceptance(
    student_preferences: Sequence[Sequence[int]] | np.ndarray,
    school_rankings: Sequence[Mapping[int, float] | Sequence[float]] | np.ndarray,
    capacities: Sequence[int],
    engine: str = "heap",
) -> MatchResult:
    """Run student-proposing deferred acceptance.

    Parameters
    ----------
    student_preferences:
        ``student_preferences[s]`` is student ``s``'s ordered list of school
        indices, most preferred first; students not listing a school can
        never be matched to it.  A 2-D ``int`` array is accepted as a padded
        preference matrix (rows right-padded with ``-1``), which is the form
        :func:`~repro.matching.generate_student_preferences` emits with
        ``as_matrix=True``.
    school_rankings:
        Either a ``(num_schools, num_students)`` float score matrix (``NaN``
        marks unacceptable students), or, per school, a mapping
        ``student -> score`` / a sequence of per-student scores (higher is
        better).  Students missing from a mapping or beyond the end of a
        short sequence are unacceptable to that school.
    capacities:
        Number of seats at each school.
    engine:
        ``"heap"`` (default, O(P log c)) or ``"reference"`` (the original
        O(P × c) implementation); both produce the identical student-optimal
        stable matching.

    Returns
    -------
    MatchResult
        The stable matching with respect to the given preferences/rankings.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    capacities = _validate_capacities(capacities)
    num_schools = len(capacities)
    preferences = _normalize_preferences(student_preferences, num_schools)
    score_plane = _normalize_rankings(school_rankings, num_schools, len(preferences))
    run = _run_heap if engine == "heap" else _run_reference
    return run(preferences, score_plane, capacities)
