"""Student-proposing deferred acceptance (Gale–Shapley) matching.

The NYC high-school admission process that motivates the paper matches
students to schools with a deferred-acceptance algorithm: students submit a
preference list over schools, each school ranks its applicants with its own
rubric (possibly including DCA bonus points), and the match is computed by the
classic student-proposing procedure.  Because of this matching layer, a school
does not know in advance how far down its ranked list it will reach — which is
precisely the motivation for the log-discounted variant of DCA.

This module implements the matching substrate so that the school-admissions
example can run an end-to-end simulation: generate students, compute each
school's (bonus-compensated) ranking, run deferred acceptance, and inspect the
demographics of each school's admitted class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = ["MatchResult", "deferred_acceptance"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of a deferred-acceptance run.

    Attributes
    ----------
    assignment:
        ``assignment[s]`` is the school index student ``s`` is matched to, or
        ``-1`` if the student is unmatched.
    rosters:
        For each school, the list of matched student indices, ordered by the
        school's preference (best first).
    proposals_made:
        Total number of proposals processed (a useful complexity diagnostic).
    """

    assignment: np.ndarray
    rosters: tuple[tuple[int, ...], ...]
    proposals_made: int

    @property
    def num_unmatched(self) -> int:
        return int(np.sum(self.assignment < 0))

    def roster(self, school: int) -> tuple[int, ...]:
        return self.rosters[school]


def _validate_inputs(
    student_preferences: Sequence[Sequence[int]],
    school_rankings: Sequence[Mapping[int, float] | Sequence[float]],
    capacities: Sequence[int],
) -> int:
    num_schools = len(capacities)
    if len(school_rankings) != num_schools:
        raise ValueError(
            f"got {len(school_rankings)} school rankings for {num_schools} capacities"
        )
    for school, capacity in enumerate(capacities):
        if capacity < 0:
            raise ValueError(f"school {school} has negative capacity {capacity}")
    for student, preferences in enumerate(student_preferences):
        for school in preferences:
            if not 0 <= school < num_schools:
                raise ValueError(
                    f"student {student} lists unknown school {school} (num_schools={num_schools})"
                )
    return num_schools


def deferred_acceptance(
    student_preferences: Sequence[Sequence[int]],
    school_rankings: Sequence[Mapping[int, float] | Sequence[float]],
    capacities: Sequence[int],
) -> MatchResult:
    """Run student-proposing deferred acceptance.

    Parameters
    ----------
    student_preferences:
        ``student_preferences[s]`` is student ``s``'s ordered list of school
        indices, most preferred first.  Students not listing a school can
        never be matched to it.
    school_rankings:
        For each school, either a mapping ``student -> score`` or a sequence
        of per-student scores (higher is better).  Students missing from a
        mapping are considered unacceptable to that school.
    capacities:
        Number of seats at each school.

    Returns
    -------
    MatchResult
        The stable matching with respect to the given preferences/rankings.
    """
    num_students = len(student_preferences)
    num_schools = _validate_inputs(student_preferences, school_rankings, capacities)

    def score_of(school: int, student: int) -> float | None:
        ranking = school_rankings[school]
        if isinstance(ranking, Mapping):
            value = ranking.get(student)
            return None if value is None else float(value)
        if 0 <= student < len(ranking):
            return float(ranking[student])
        return None

    # next_choice[s]: index into student s's preference list to propose to next.
    next_choice = np.zeros(num_students, dtype=np.int64)
    assignment = np.full(num_students, -1, dtype=np.int64)
    # Tentative rosters: per school, dict student -> score.
    held: list[dict[int, float]] = [dict() for _ in range(num_schools)]
    free_students = [s for s in range(num_students) if student_preferences[s]]
    proposals = 0

    while free_students:
        student = free_students.pop()
        preferences = student_preferences[student]
        matched = False
        while next_choice[student] < len(preferences):
            school = preferences[next_choice[student]]
            next_choice[student] += 1
            proposals += 1
            score = score_of(school, student)
            if score is None:
                continue  # unacceptable to this school
            roster = held[school]
            capacity = capacities[school]
            if capacity == 0:
                continue
            if len(roster) < capacity:
                roster[student] = score
                assignment[student] = school
                matched = True
                break
            # School is full: bump the weakest held student if this one is better.
            weakest = min(roster, key=lambda s: (roster[s], -s))
            if (score, -student) > (roster[weakest], -weakest):
                del roster[weakest]
                assignment[weakest] = -1
                roster[student] = score
                assignment[student] = school
                if next_choice[weakest] < len(student_preferences[weakest]):
                    free_students.append(weakest)
                matched = True
                break
        if not matched:
            assignment[student] = -1

    rosters = tuple(
        tuple(sorted(held[school], key=lambda s: (-held[school][s], s)))
        for school in range(num_schools)
    )
    return MatchResult(assignment=assignment, rosters=rosters, proposals_made=proposals)
