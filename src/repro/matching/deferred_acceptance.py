"""Deferred-acceptance (Gale–Shapley) matching: student- and school-proposing.

The NYC high-school admission process that motivates the paper matches
students to schools with a deferred-acceptance algorithm: students submit a
preference list over schools, each school ranks its applicants with its own
rubric (possibly including DCA bonus points), and the match is computed by the
classic student-proposing procedure.  Because of this matching layer, a school
does not know in advance how far down its ranked list it will reach — which is
precisely the motivation for the log-discounted variant of DCA.

This module implements the matching substrate so that the admissions
experiment (:mod:`repro.experiments.matching_admissions`) can run an
end-to-end simulation at district scale: generate students, compute each
school's (bonus-compensated) ranking, run deferred acceptance, and inspect the
demographics of each school's admitted class.

Engines
-------

``deferred_acceptance`` accepts an ``engine`` argument:

``"heap"`` (default)
    The array-plane engine.  All ranking forms are normalized **once** into a
    ``(num_schools, num_students)`` float score plane (``NaN`` marks a
    student a school finds unacceptable), and each school's tentative roster
    is a binary min-heap keyed by ``(score, -student)`` so the weakest held
    student sits at the top.  A proposal to a full school is an O(log c)
    ``heapreplace`` instead of an O(c) roster rescan, making the whole match
    O(P log c) for P proposals.  It still executes one Python iteration per
    proposal.

``"vector"``
    The round-based engine: no per-proposal Python loop at all.  Each round
    gathers **every** unmatched student's next listed school through a
    pointer array, filters the proposals against per-school admission
    cutoffs, groups the survivors (plus the affected schools' current
    holders) into per-school segments with one ``np.lexsort``, and admits the
    top ``capacity`` of each segment.  Per-round cost is a handful of NumPy
    kernels over the active students, so district-scale matches are bound by
    memory bandwidth rather than interpreter overhead (several times faster
    than ``"heap"`` from ~100k students up; see
    ``benchmarks/test_bench_matching.py``).  On adversarially serial
    instances (one long bump chain, one proposer per round) the heap engine
    remains the better complexity, which is why both are first-class.

``"reference"``
    The original pure-Python implementation: per-school ``dict`` rosters and
    a full ``min()`` rescan on every bump, i.e. O(P × c).  It is kept as a
    readable reference.

All three engines produce the **identical** matching: the proposing side's
optimal stable matching is unique once both sides' preferences are strict
(see *Tie-breaking* below), so the randomized differential suite in
``tests/test_matching.py`` and the axiom suite in
``tests/test_matching_properties.py`` pin them to exact equality —
assignment, rosters, matched ranks, and proposal counts.

Proposing side
--------------

``proposing="students"`` (default) runs student-proposing deferred acceptance
and returns the *student-optimal* stable matching: every student weakly
prefers it to any other stable matching.  ``proposing="schools"`` runs the
dual procedure — schools propose down their ranked applicant lists, students
hold the best offer from a school they listed — and returns the
*school-optimal* stable matching.  Both variants exist for every engine, both
respect exactly the same acceptability rules (a student a school scores
``NaN`` and a school a student does not list can never be matched), and by
the rural-hospitals theorem the two variants match the same set of students
and fill each school to the same count; only *who* goes *where* shifts in the
schools' favour.

Tie-breaking
------------

School preferences are made strict before any engine runs: equal scores
break in favour of the **lower student index**, i.e. school ``j`` prefers
student ``a`` to student ``b`` iff ``(score[j, a], -a) > (score[j, b], -b)``.
Student preferences are strict by construction (a preference list is an
order).  Every engine and both proposing sides implement this identically —
the heap engine keys its heaps on ``(score, -student)``, the vector engine
sorts segments by ``(-score, student)``, and the school-proposing variants
issue proposals in exactly that order — so results are deterministic and
bitwise-identical across engines even on heavily tied integer scores
(pinned by ``tests/test_matching.py``).

Proposal accounting
-------------------

``proposals_made`` counts every proposal the *receiving* side actually
considers.  Student-proposing: applications to schools with at least one
seat are counted — including applications rejected because the student is
unacceptable — while applications to zero-capacity schools are skipped
without being counted (such a school can never consider anyone).
School-proposing, symmetrically: offers to students with a non-empty
preference list are counted — including offers the student rejects because
the school is not on their list — while offers to students who listed
nothing are skipped without being counted.  Deferred acceptance makes the
same set of proposals regardless of execution order, so every engine reports
the same count.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

__all__ = ["ENGINES", "PROPOSING_SIDES", "MatchResult", "deferred_acceptance"]

#: Valid ``engine`` arguments, fastest-typical first.
ENGINES = ("heap", "vector", "reference")
#: Valid ``proposing`` arguments.
PROPOSING_SIDES = ("students", "schools")


@dataclass(frozen=True)
class MatchResult:
    """Outcome of a deferred-acceptance run.

    Attributes
    ----------
    assignment:
        ``assignment[s]`` is the school index student ``s`` is matched to, or
        ``-1`` if the student is unmatched.
    rosters:
        For each school, the list of matched student indices, ordered by the
        school's preference (best first).
    proposals_made:
        Total number of proposals considered by the receiving side (a useful
        complexity diagnostic; see the module docstring for the exact
        accounting on each proposing side).
    matched_rank:
        ``matched_rank[s]`` is the 0-based position of student ``s``'s
        assigned school in their preference list (0 = first choice), or
        ``-1`` if unmatched.
    """

    assignment: np.ndarray
    rosters: tuple[tuple[int, ...], ...]
    proposals_made: int
    matched_rank: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def num_unmatched(self) -> int:
        return int(np.sum(self.assignment < 0))

    def roster(self, school: int) -> tuple[int, ...]:
        return self.rosters[school]

    def rank_distribution(self, max_rank: int) -> np.ndarray:
        """Count of students matched at each preference rank (last bin = unmatched).

        Returns an array of length ``max_rank + 1``: entry ``r`` is the number
        of students matched to their ``r``-th listed school, and the final
        entry counts unmatched students, so the counts always sum to the
        cohort size.  ``max_rank`` must cover the longest preference list
        (pass the list length); a match at a rank beyond it is an error
        rather than a silently dropped student.
        """
        ranks = self.matched_rank
        matched = ranks >= 0
        if matched.any():
            highest = int(ranks[matched].max())
            if highest >= max_rank:
                raise ValueError(
                    f"a student matched at preference rank {highest}; "
                    f"max_rank={max_rank} does not cover it"
                )
        counts = np.zeros(max_rank + 1, dtype=np.int64)
        counts[:max_rank] = np.bincount(ranks[matched], minlength=max_rank)
        counts[max_rank] = int(np.sum(~matched))
        return counts


class _Preferences:
    """Validated student preference lists, in list and padded-matrix form.

    The sequential engines iterate per-student Python lists; the vector
    engine indexes a ``(num_students, width)`` ``int64`` matrix right-padded
    with ``-1``.  Whichever form the caller supplied is kept as-is and the
    other is built lazily, so a padded-matrix input (the form
    :func:`~repro.matching.generate_student_preferences` emits at district
    scale) reaches the vector engine without a Python round-trip.
    """

    def __init__(
        self, lists: list[Sequence[int]] | None = None, matrix: np.ndarray | None = None
    ) -> None:
        if (lists is None) == (matrix is None):
            raise ValueError("exactly one of lists/matrix must be provided")
        self._lists = lists
        self._matrix = matrix
        self._lengths: np.ndarray | None = None

    def __len__(self) -> int:
        if self._lists is not None:
            return len(self._lists)
        return self._matrix.shape[0]

    @property
    def lists(self) -> list[Sequence[int]]:
        if self._lists is None:
            rows = self._matrix.tolist()
            self._lists = [
                row[:length] for row, length in zip(rows, self.lengths.tolist())
            ]
        return self._lists

    @property
    def matrix(self) -> np.ndarray:
        if self._matrix is None:
            lengths = self.lengths
            width = int(lengths.max()) if lengths.size else 0
            matrix = np.full((len(self._lists), width), -1, dtype=np.int64)
            for row, prefs in enumerate(self._lists):
                if len(prefs):
                    matrix[row, : len(prefs)] = prefs
            self._matrix = matrix
        return self._matrix

    @property
    def lengths(self) -> np.ndarray:
        if self._lengths is None:
            if self._matrix is not None:
                self._lengths = (self._matrix >= 0).sum(axis=1).astype(np.int64)
            else:
                self._lengths = np.asarray(
                    [len(prefs) for prefs in self._lists], dtype=np.int64
                )
        return self._lengths


def _normalize_preferences(
    student_preferences: Sequence[Sequence[int]] | np.ndarray, num_schools: int
) -> _Preferences:
    """Validate preference lists and wrap them in :class:`_Preferences`.

    A 2-D integer array is accepted as a padded preference matrix: each row is
    one student's list, right-padded with ``-1``.  Padding must be trailing —
    a ``-1`` followed by a school index is rejected.
    """
    if isinstance(student_preferences, np.ndarray):
        if student_preferences.ndim != 2:
            raise ValueError(
                f"preference matrix must be 2-D, got shape {student_preferences.shape}"
            )
        matrix = student_preferences.astype(np.int64, copy=False)
        if matrix.size and (matrix.max() >= num_schools or matrix.min() < -1):
            bad = int(matrix.max()) if matrix.max() >= num_schools else int(matrix.min())
            raise ValueError(f"preference matrix lists unknown school {bad} (num_schools={num_schools})")
        valid = matrix >= 0
        if matrix.size and np.any(valid[:, 1:] & ~valid[:, :-1]):
            raise ValueError("preference matrix padding (-1) must be trailing")
        return _Preferences(matrix=matrix)
    for student, preferences in enumerate(student_preferences):
        for school in preferences:
            if not 0 <= school < num_schools:
                raise ValueError(
                    f"student {student} lists unknown school {school} (num_schools={num_schools})"
                )
    return _Preferences(lists=list(student_preferences))


def _normalize_rankings(
    school_rankings: Sequence[Mapping[int, float] | Sequence[float]] | np.ndarray,
    num_schools: int,
    num_students: int,
) -> np.ndarray:
    """Build the ``(num_schools, num_students)`` score plane, NaN = unacceptable.

    Accepted forms, normalized once up front so the hot loop never touches
    Python mappings:

    * a 2-D float array of shape ``(num_schools, num_students)`` (``NaN``
      entries mark unacceptable students) — used as-is;
    * per school, a mapping ``student -> score`` (students absent from the
      mapping are unacceptable);
    * per school, a sequence of per-student scores; students beyond the end
      of a short sequence are unacceptable.
    """
    if isinstance(school_rankings, np.ndarray):
        if school_rankings.shape != (num_schools, num_students):
            raise ValueError(
                f"score matrix has shape {school_rankings.shape}, "
                f"expected ({num_schools}, {num_students})"
            )
        return school_rankings.astype(float, copy=False)
    if len(school_rankings) != num_schools:
        raise ValueError(
            f"got {len(school_rankings)} school rankings for {num_schools} capacities"
        )
    plane = np.full((num_schools, num_students), np.nan, dtype=float)
    for school, ranking in enumerate(school_rankings):
        if isinstance(ranking, Mapping):
            for student, value in ranking.items():
                if 0 <= student < num_students:
                    plane[school, student] = float(value)
        else:
            values = np.asarray(ranking, dtype=float)
            count = min(values.shape[0], num_students)
            plane[school, :count] = values[:count]
    return plane


def _validate_capacities(capacities: Sequence[int]) -> list[int]:
    capacities = [int(capacity) for capacity in capacities]
    for school, capacity in enumerate(capacities):
        if capacity < 0:
            raise ValueError(f"school {school} has negative capacity {capacity}")
    return capacities


def _build_rosters(
    assignment: np.ndarray, score_plane: np.ndarray, num_schools: int
) -> tuple[tuple[int, ...], ...]:
    """Per-school rosters from a final assignment, best student first.

    One lexsort over the matched students orders every roster by the shared
    strict school preference ``(-score, student)``; ``searchsorted`` then
    splits the school-major order into per-school tuples.
    """
    matched = np.flatnonzero(assignment >= 0)
    if not matched.size:
        return tuple(() for _ in range(num_schools))
    schools = assignment[matched]
    scores = score_plane[schools, matched]
    order = np.lexsort((matched, -scores, schools))
    students = matched[order].tolist()
    bounds = np.searchsorted(schools[order], np.arange(num_schools + 1))
    return tuple(
        tuple(students[bounds[school] : bounds[school + 1]])
        for school in range(num_schools)
    )


# ----------------------------------------------------------------------
# Student-proposing engines
# ----------------------------------------------------------------------
def _run_heap(
    preferences: list[Sequence[int]],
    score_plane: np.ndarray,
    capacities: list[int],
) -> MatchResult:
    """Heap-engine match: O(log c) bumps over precomputed score rows."""
    num_students = len(preferences)
    num_schools = len(capacities)
    # Python lists of floats index ~5x faster than NumPy scalar access in the
    # per-proposal loop, and NaN survives the conversion (score != score).
    score_rows: list[list[float]] = score_plane.tolist()
    assignment = [-1] * num_students
    matched_rank = [-1] * num_students
    next_choice = [0] * num_students
    heaps: list[list[tuple[float, int]]] = [[] for _ in range(num_schools)]
    heappush, heapreplace = heapq.heappush, heapq.heapreplace

    stack = [s for s in range(num_students) if preferences[s]]
    proposals = 0
    while stack:
        student = stack.pop()
        prefs = preferences[student]
        ptr = next_choice[student]
        length = len(prefs)
        while ptr < length:
            school = prefs[ptr]
            ptr += 1
            capacity = capacities[school]
            if capacity == 0:
                continue
            proposals += 1
            score = score_rows[school][student]
            if score != score:  # NaN: unacceptable to this school
                continue
            heap = heaps[school]
            entry = (score, -student)
            if len(heap) < capacity:
                heappush(heap, entry)
                assignment[student] = school
                matched_rank[student] = ptr - 1
                break
            weakest = heap[0]
            if entry > weakest:
                heapreplace(heap, entry)
                bumped = -weakest[1]
                assignment[bumped] = -1
                matched_rank[bumped] = -1
                if next_choice[bumped] < len(preferences[bumped]):
                    stack.append(bumped)
                assignment[student] = school
                matched_rank[student] = ptr - 1
                break
        next_choice[student] = ptr

    rosters = tuple(
        tuple(-neg for _, neg in sorted(heap, key=lambda entry: (-entry[0], -entry[1])))
        for heap in heaps
    )
    return MatchResult(
        assignment=np.asarray(assignment, dtype=np.int64),
        rosters=rosters,
        proposals_made=proposals,
        matched_rank=np.asarray(matched_rank, dtype=np.int64),
    )


class _RosterRuns:
    """Per-school tentative rosters as two sorted runs each.

    Every school's roster is held as a large *main* run plus a small *edge*
    run of recently-changed entries, both sorted by the strict school
    preference ``(-score, student)``.  The point of the split is the bump
    bound of deferred acceptance: ``p`` incoming proposals can displace at
    most the ``p`` weakest held students, so a round only ever needs the
    last ``min(p, len(run))`` entries of each run — the rest of the roster
    is provably safe and is never re-sorted.  Pool survivors are folded into
    the edge run (one small sort); when the edge outgrows a quarter of the
    main run the two are compacted into a fresh main run.
    """

    def __init__(self, num_schools: int) -> None:
        empty_students = np.empty(0, dtype=np.int64)
        empty_scores = np.empty(0, dtype=np.float64)
        self.main_students = [empty_students] * num_schools
        self.main_scores = [empty_scores] * num_schools
        self.edge_students = [empty_students] * num_schools
        self.edge_scores = [empty_scores] * num_schools

    def held(self, school: int) -> int:
        return self.main_students[school].size + self.edge_students[school].size

    def split_tail(self, school: int, bound: int) -> tuple[np.ndarray, np.ndarray]:
        """Pop the up-to-``bound`` weakest entries of each run.

        Returns the pooled tail (students, scores); the runs keep only their
        untouched (provably safe) heads.
        """
        main_students = self.main_students[school]
        edge_students = self.edge_students[school]
        take_main = min(bound, main_students.size)
        take_edge = min(bound, edge_students.size)
        students = np.concatenate(
            [main_students[main_students.size - take_main :],
             edge_students[edge_students.size - take_edge :]]
        )
        scores = np.concatenate(
            [self.main_scores[school][main_students.size - take_main :],
             self.edge_scores[school][edge_students.size - take_edge :]]
        )
        self.main_students[school] = main_students[: main_students.size - take_main]
        self.main_scores[school] = self.main_scores[school][: main_students.size - take_main]
        self.edge_students[school] = edge_students[: edge_students.size - take_edge]
        self.edge_scores[school] = self.edge_scores[school][: edge_students.size - take_edge]
        return students, scores

    def absorb(self, school: int, students: np.ndarray, scores: np.ndarray) -> None:
        """Fold newly admitted entries into the edge run (compacting if large)."""
        students = np.concatenate([self.edge_students[school], students])
        scores = np.concatenate([self.edge_scores[school], scores])
        main_size = self.main_students[school].size
        if students.size > max(64, main_size // 4):
            students = np.concatenate([self.main_students[school], students])
            scores = np.concatenate([self.main_scores[school], scores])
            order = np.lexsort((students, -scores))
            self.main_students[school] = students[order]
            self.main_scores[school] = scores[order]
            self.edge_students[school] = students[:0]
            self.edge_scores[school] = scores[:0]
        else:
            order = np.lexsort((students, -scores))
            self.edge_students[school] = students[order]
            self.edge_scores[school] = scores[order]

    def weakest(self, school: int) -> tuple[float, int]:
        """The ``(score, student)`` of the school's weakest held student."""
        main_students = self.main_students[school]
        edge_students = self.edge_students[school]
        if not main_students.size:
            return float(self.edge_scores[school][-1]), int(edge_students[-1])
        if not edge_students.size:
            return float(self.main_scores[school][-1]), int(main_students[-1])
        main_key = (float(self.main_scores[school][-1]), -int(main_students[-1]))
        edge_key = (float(self.edge_scores[school][-1]), -int(edge_students[-1]))
        weaker = min(main_key, edge_key)
        return weaker[0], -weaker[1]


def _run_vector(
    preferences: _Preferences,
    score_plane: np.ndarray,
    capacities: list[int],
) -> MatchResult:
    """Round-based vectorized match: every round batches all open proposals.

    Per round: (a) gather each active (unmatched, list not exhausted)
    student's next school through the pointer array; (b) drop proposals no
    school will consider — zero-capacity schools silently, and proposals at
    or below the target school's current admission *cutoff* (the
    ``(score, -student)`` key of its weakest held student once full; NaN
    scores fail every comparison and are dropped here too); (c) sort the
    surviving proposals into per-school segments with one ``np.lexsort``
    and resolve each segment against the bounded tail of that school's
    roster (:class:`_RosterRuns`): ``p`` proposals can bump at most the
    ``p`` weakest held students, so the top of the roster is never touched,
    let alone re-sorted.  Admits take the top ``capacity`` of each merged
    pool; everyone else returns to the active set.  Cutoffs only ever rise,
    so the pre-filter in (b) never drops a proposal the full resolution
    would have admitted.
    """
    num_students = len(preferences)
    num_schools = len(capacities)
    pref_matrix = preferences.matrix
    lengths = preferences.lengths
    caps = np.asarray(capacities, dtype=np.int64)
    has_seats = caps > 0

    next_choice = np.zeros(num_students, dtype=np.int64)
    assignment = np.full(num_students, -1, dtype=np.int64)
    matched_rank = np.full(num_students, -1, dtype=np.int64)
    # Admission cutoffs: the (score, -student) key of each full school's
    # weakest held student.  (-inf, num_students) means "not yet full": any
    # non-NaN score from any student beats it.
    cutoff_score = np.full(num_schools, -np.inf)
    cutoff_student = np.full(num_schools, num_students, dtype=np.int64)
    rosters = _RosterRuns(num_schools)
    proposals = 0

    active = np.flatnonzero(lengths > 0)
    while active.size:
        school = pref_matrix[active, next_choice[active]]
        next_choice[active] += 1
        considered = has_seats[school]
        proposals += int(np.count_nonzero(considered))
        scores = score_plane[school, active]
        # Proposals that beat the school's cutoff.  NaN fails both
        # comparisons, so unacceptable students are (counted and) dropped.
        serious = considered & (
            (scores > cutoff_score[school])
            | ((scores == cutoff_score[school]) & (active < cutoff_student[school]))
        )
        bounced: list[np.ndarray] = [active[~serious]]
        if serious.any():
            proposers = active[serious]
            target = school[serious]
            prop_scores = scores[serious]
            # School-major segments, each ordered by the strict school
            # preference (score desc, student asc).
            order = np.lexsort((proposers, -prop_scores, target))
            seg_students = proposers[order]
            seg_scores = prop_scores[order]
            seg_schools = target[order]
            boundaries = np.flatnonzero(
                np.r_[True, seg_schools[1:] != seg_schools[:-1], True]
            )
            for begin, end in zip(boundaries[:-1], boundaries[1:]):
                j = int(seg_schools[begin])
                incoming = int(end - begin)
                tail_students, tail_scores = rosters.split_tail(j, incoming)
                pool_students = np.concatenate(
                    [tail_students, seg_students[begin:end]]
                )
                pool_scores = np.concatenate([tail_scores, seg_scores[begin:end]])
                pool_order = np.lexsort((pool_students, -pool_scores))
                # The untouched roster heads are provably safe, so the pool
                # competes for whatever seats they do not occupy.
                seats = int(caps[j]) - rosters.held(j)
                admit = pool_order[:seats]
                reject = pool_order[seats:]
                admitted_students = pool_students[admit]
                rosters.absorb(j, admitted_students, pool_scores[admit])
                # Re-admitted tail entries are overwritten with the identical
                # school, so no proposer/holder split is needed here.
                assignment[admitted_students] = j
                if reject.size:
                    rejected_students = pool_students[reject]
                    assignment[rejected_students] = -1
                    matched_rank[rejected_students] = -1
                    bounced.append(rejected_students)
                if rosters.held(j) == caps[j]:
                    cutoff_score[j], cutoff_student[j] = rosters.weakest(j)
            # matched_rank: a proposer whose assignment now equals its target
            # was admitted this round — its rank is the (just advanced)
            # pointer minus one.  Re-admitted holders never appear among the
            # proposers, so their earlier ranks survive untouched.
            fresh = seg_students[assignment[seg_students] == seg_schools]
            matched_rank[fresh] = next_choice[fresh] - 1
        again = np.concatenate(bounced)
        active = again[next_choice[again] < lengths[again]]

    return MatchResult(
        assignment=assignment,
        rosters=_build_rosters(assignment, score_plane, num_schools),
        proposals_made=proposals,
        matched_rank=matched_rank,
    )


def _run_reference(
    preferences: list[Sequence[int]],
    score_plane: np.ndarray,
    capacities: list[int],
) -> MatchResult:
    """The original dict-roster implementation, kept as the readable reference."""
    num_students = len(preferences)
    num_schools = len(capacities)

    def score_of(school: int, student: int) -> float | None:
        value = score_plane[school, student]
        return None if np.isnan(value) else float(value)

    # next_choice[s]: index into student s's preference list to propose to next.
    next_choice = np.zeros(num_students, dtype=np.int64)
    matched_rank = np.full(num_students, -1, dtype=np.int64)
    assignment = np.full(num_students, -1, dtype=np.int64)
    # Tentative rosters: per school, dict student -> score.
    held: list[dict[int, float]] = [dict() for _ in range(num_schools)]
    free_students = [s for s in range(num_students) if preferences[s]]
    proposals = 0

    while free_students:
        student = free_students.pop()
        prefs = preferences[student]
        matched = False
        while next_choice[student] < len(prefs):
            school = prefs[next_choice[student]]
            next_choice[student] += 1
            capacity = capacities[school]
            if capacity == 0:
                continue  # a seatless school considers nobody — not a proposal
            proposals += 1
            score = score_of(school, student)
            if score is None:
                continue  # unacceptable to this school
            roster = held[school]
            if len(roster) < capacity:
                roster[student] = score
                assignment[student] = school
                matched_rank[student] = int(next_choice[student]) - 1
                matched = True
                break
            # School is full: bump the weakest held student if this one is better.
            weakest = min(roster, key=lambda s: (roster[s], -s))
            if (score, -student) > (roster[weakest], -weakest):
                del roster[weakest]
                assignment[weakest] = -1
                matched_rank[weakest] = -1
                roster[student] = score
                assignment[student] = school
                matched_rank[student] = int(next_choice[student]) - 1
                if next_choice[weakest] < len(preferences[weakest]):
                    free_students.append(weakest)
                matched = True
                break
        if not matched:
            assignment[student] = -1

    rosters = tuple(
        tuple(sorted(held[school], key=lambda s: (-held[school][s], s)))
        for school in range(num_schools)
    )
    return MatchResult(
        assignment=assignment,
        rosters=rosters,
        proposals_made=proposals,
        matched_rank=matched_rank,
    )


# ----------------------------------------------------------------------
# School-proposing engines
# ----------------------------------------------------------------------
#: held_rank sentinel meaning "this student holds no offer yet" — larger than
#: any real preference-list position.
_NO_OFFER = np.iinfo(np.int64).max


def _school_proposal_order(score_plane: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per school: all students in proposal order, and the acceptable count.

    A stable argsort of the negated plane orders each row by score descending
    with ties broken by the lower student index — the same strict preference
    every engine uses — and pushes NaN (unacceptable) students past the
    returned count.
    """
    order = np.argsort(-score_plane, axis=1, kind="stable")
    counts = np.count_nonzero(~np.isnan(score_plane), axis=1).astype(np.int64)
    return order, counts


def _student_rank_matrix(preferences: _Preferences, num_schools: int) -> np.ndarray:
    """``(num_students, num_schools)`` list positions; ``-1`` = not listed.

    Columns are written back-to-front so that if a list ever repeats a school
    the *first* occurrence defines the rank, matching ``list.index``.
    """
    matrix = preferences.matrix
    ranks = np.full((len(preferences), num_schools), -1, dtype=np.int64)
    for position in range(matrix.shape[1] - 1, -1, -1):
        column = matrix[:, position]
        listed = np.flatnonzero(column >= 0)
        ranks[listed, column[listed]] = position
    return ranks


def _schools_result(
    assignment: np.ndarray,
    held_rank: np.ndarray,
    score_plane: np.ndarray,
    num_schools: int,
    proposals: int,
) -> MatchResult:
    matched = assignment >= 0
    matched_rank = np.where(matched, held_rank, -1).astype(np.int64)
    return MatchResult(
        assignment=assignment.astype(np.int64, copy=False),
        rosters=_build_rosters(assignment, score_plane, num_schools),
        proposals_made=proposals,
        matched_rank=matched_rank,
    )


def _run_heap_schools(
    preferences: _Preferences,
    score_plane: np.ndarray,
    capacities: list[int],
) -> MatchResult:
    """Fast sequential school-proposing match.

    The per-school proposal order and the per-student rank lookup are
    precomputed on the array plane (one stable argsort of the score plane,
    one scatter of the preference matrix), so the proposal loop itself is
    all O(1) list operations: schools with free seats pop off a work stack
    and walk their ranked applicant list; a student accepts when the
    proposing school sits strictly earlier in their preference list than the
    offer they currently hold, which frees a seat at — and re-activates —
    their previous school.
    """
    num_students = len(preferences)
    num_schools = len(capacities)
    order, counts = _school_proposal_order(score_plane)
    # Convert only each row's acceptable prefix: the NaN tail past counts[j]
    # is never proposed to, so it never needs to exist as Python ints.
    order_rows: list[list[int]] = [
        order[school, : int(count)].tolist() for school, count in enumerate(counts)
    ]
    rank_rows: list[list[int]] = _student_rank_matrix(preferences, num_schools).tolist()
    considers: list[int] = (preferences.lengths > 0).tolist()

    assignment = [-1] * num_students
    held_rank = [_NO_OFFER] * num_students
    free = list(capacities)
    ptr = [0] * num_schools
    proposals = 0

    stack = [j for j in range(num_schools) if free[j] > 0 and order_rows[j]]
    while stack:
        school = stack.pop()
        row = order_rows[school]
        length = len(row)
        position = ptr[school]
        seats = free[school]
        while seats > 0 and position < length:
            student = row[position]
            position += 1
            if not considers[student]:
                continue  # a student listing nothing considers no offer
            proposals += 1
            rank = rank_rows[student][school]
            if rank < 0 or rank >= held_rank[student]:
                continue  # school unlisted, or no better than the held offer
            previous = assignment[student]
            if previous >= 0:
                if free[previous] == 0 and ptr[previous] < len(order_rows[previous]):
                    stack.append(previous)  # regains a seat: resume proposing
                free[previous] += 1
            assignment[student] = school
            held_rank[student] = rank
            seats -= 1
        ptr[school] = position
        free[school] = seats

    return _schools_result(
        np.asarray(assignment, dtype=np.int64),
        np.asarray(held_rank, dtype=np.int64),
        score_plane,
        num_schools,
        proposals,
    )


def _run_vector_schools(
    preferences: _Preferences,
    score_plane: np.ndarray,
    capacities: list[int],
) -> MatchResult:
    """Round-based vectorized school-proposing match.

    Each round every school with free seats proposes, in one batch, to the
    next ``free`` students on its ranked list (ragged batches built with
    ``np.repeat`` over the pointer array).  Offers are resolved per student:
    among the round's offers from listed schools that beat the currently held
    offer, the student keeps the school earliest in their list (one lexsort,
    first entry per student segment); every switch releases a seat at the
    student's previous school, which re-enters the round loop.
    """
    num_students = len(preferences)
    num_schools = len(capacities)
    order, counts = _school_proposal_order(score_plane)
    ranks = _student_rank_matrix(preferences, num_schools)
    considers = preferences.lengths > 0
    caps = np.asarray(capacities, dtype=np.int64)

    free = caps.copy()
    ptr = np.zeros(num_schools, dtype=np.int64)
    assignment = np.full(num_students, -1, dtype=np.int64)
    held_rank = np.full(num_students, _NO_OFFER, dtype=np.int64)
    proposals = 0

    active = np.flatnonzero((free > 0) & (ptr < counts))
    while active.size:
        batch = np.minimum(free[active], counts[active] - ptr[active])
        prop_school = np.repeat(active, batch)
        batch_starts = np.repeat(np.cumsum(batch) - batch, batch)
        within = np.arange(prop_school.size) - batch_starts
        prop_student = order[prop_school, ptr[prop_school] + within]
        ptr[active] += batch
        considered = considers[prop_student]
        proposals += int(np.count_nonzero(considered))
        prop_rank = ranks[prop_student, prop_school]
        # An offer is serious when the student lists the school earlier than
        # whatever they currently hold (_NO_OFFER when unmatched).
        serious = considered & (prop_rank >= 0) & (prop_rank < held_rank[prop_student])
        if serious.any():
            students = prop_student[serious]
            offers = prop_school[serious]
            offer_rank = prop_rank[serious]
            # Best offer per student: student-major, then rank ascending
            # (ranks are strict — two schools cannot share a list position).
            win_order = np.lexsort((offer_rank, students))
            first = np.empty(students.size, dtype=bool)
            first[0] = True
            sorted_students = students[win_order]
            np.not_equal(sorted_students[1:], sorted_students[:-1], out=first[1:])
            winners = win_order[first]
            win_student = students[winners]
            win_school = offers[winners]
            previous = assignment[win_student]
            released = previous[previous >= 0]
            assignment[win_student] = win_school
            held_rank[win_student] = offer_rank[winners]
            free += np.bincount(released, minlength=num_schools)
            free -= np.bincount(win_school, minlength=num_schools)
        active = np.flatnonzero((free > 0) & (ptr < counts))

    return _schools_result(
        assignment, held_rank, score_plane, num_schools, proposals
    )


def _run_reference_schools(
    preferences: list[Sequence[int]],
    score_plane: np.ndarray,
    capacities: list[int],
) -> MatchResult:
    """Readable pure-Python school-proposing reference.

    Proposal lists are built with plain ``sorted``; a student's opinion of an
    offer is recomputed with ``list.index`` on every proposal — obviously
    correct, and O(list length) slower per proposal than the precomputed
    lookups of the fast engines.
    """
    num_students = len(preferences)
    num_schools = len(capacities)

    proposal_order: list[list[int]] = []
    for school in range(num_schools):
        row = score_plane[school]
        acceptable = [s for s in range(num_students) if not np.isnan(row[s])]
        acceptable.sort(key=lambda s: (-float(row[s]), s))
        proposal_order.append(acceptable)

    assignment = [-1] * num_students
    held_rank = [_NO_OFFER] * num_students
    free = list(capacities)
    ptr = [0] * num_schools
    proposals = 0

    stack = [j for j in range(num_schools) if free[j] > 0 and proposal_order[j]]
    while stack:
        school = stack.pop()
        candidates = proposal_order[school]
        while free[school] > 0 and ptr[school] < len(candidates):
            student = candidates[ptr[school]]
            ptr[school] += 1
            prefs = preferences[student]
            if not len(prefs):
                continue  # a student listing nothing considers no offer
            proposals += 1
            if school not in prefs:
                continue  # the student never listed this school
            rank = list(prefs).index(school)
            if rank >= held_rank[student]:
                continue  # the held offer is at least as good
            previous = assignment[student]
            if previous >= 0:
                if free[previous] == 0 and ptr[previous] < len(proposal_order[previous]):
                    stack.append(previous)  # regains a seat: resume proposing
                free[previous] += 1
            assignment[student] = school
            held_rank[student] = rank
            free[school] -= 1

    return _schools_result(
        np.asarray(assignment, dtype=np.int64),
        np.asarray(held_rank, dtype=np.int64),
        score_plane,
        num_schools,
        proposals,
    )


_RUNNERS = {
    ("students", "heap"): lambda prefs, plane, caps: _run_heap(prefs.lists, plane, caps),
    ("students", "vector"): _run_vector,
    ("students", "reference"): lambda prefs, plane, caps: _run_reference(
        prefs.lists, plane, caps
    ),
    ("schools", "heap"): _run_heap_schools,
    ("schools", "vector"): _run_vector_schools,
    ("schools", "reference"): lambda prefs, plane, caps: _run_reference_schools(
        prefs.lists, plane, caps
    ),
}


def deferred_acceptance(
    student_preferences: Sequence[Sequence[int]] | np.ndarray,
    school_rankings: Sequence[Mapping[int, float] | Sequence[float]] | np.ndarray,
    capacities: Sequence[int],
    engine: str = "heap",
    proposing: str = "students",
) -> MatchResult:
    """Run deferred acceptance (student- or school-proposing).

    Parameters
    ----------
    student_preferences:
        ``student_preferences[s]`` is student ``s``'s ordered list of school
        indices, most preferred first; students not listing a school can
        never be matched to it.  A 2-D ``int`` array is accepted as a padded
        preference matrix (rows right-padded with ``-1``), which is the form
        :func:`~repro.matching.generate_student_preferences` emits with
        ``as_matrix=True``.
    school_rankings:
        Either a ``(num_schools, num_students)`` float score matrix (``NaN``
        marks unacceptable students), or, per school, a mapping
        ``student -> score`` / a sequence of per-student scores (higher is
        better).  Students missing from a mapping or beyond the end of a
        short sequence are unacceptable to that school.  Equal scores break
        in favour of the lower student index, identically in every engine.
    capacities:
        Number of seats at each school.
    engine:
        ``"heap"`` (default; sequential, O(P log c)), ``"vector"`` (the
        round-based batched engine — fastest at district scale), or
        ``"reference"`` (the original pure-Python O(P × c) implementation).
        All three produce the identical stable matching.
    proposing:
        ``"students"`` (default) returns the student-optimal stable
        matching; ``"schools"`` runs school-proposing deferred acceptance
        and returns the school-optimal one.

    Returns
    -------
    MatchResult
        The stable matching with respect to the given preferences/rankings.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if proposing not in PROPOSING_SIDES:
        raise ValueError(
            f"unknown proposing side {proposing!r}; expected one of {PROPOSING_SIDES}"
        )
    capacities = _validate_capacities(capacities)
    num_schools = len(capacities)
    preferences = _normalize_preferences(student_preferences, num_schools)
    score_plane = _normalize_rankings(school_rankings, num_schools, len(preferences))
    return _RUNNERS[proposing, engine](preferences, score_plane, capacities)
