"""Synthetic student preference generation for the admissions workloads.

Real NYC students rank up to twelve schools; their choices correlate with
geography and with school popularity.  For the end-to-end admissions
experiment we only need plausible preference lists, so this module generates
them from a simple popularity-plus-noise utility model.

The generator is fully vectorized: one Gumbel noise matrix of shape
``(num_students, num_schools)`` plus a row-wise argsort replaces the old
per-student Python loop, which makes district-size cohorts (100k+ students)
essentially free next to the match itself.
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_student_preferences"]


def generate_student_preferences(
    num_students: int,
    num_schools: int,
    list_length: int = 5,
    popularity_spread: float = 1.0,
    rng: np.random.Generator | None = None,
    as_matrix: bool = False,
) -> list[list[int]] | np.ndarray:
    """Generate ranked school preference lists for every student.

    Each school gets a latent popularity drawn from a normal distribution with
    standard deviation ``popularity_spread``; each student's utility for a
    school is the popularity plus idiosyncratic Gumbel noise, and the student
    lists their ``list_length`` highest-utility schools in order.

    With ``as_matrix=True`` the result is an ``(num_students, list_length)``
    ``int64`` array — the padded preference-matrix form
    :func:`~repro.matching.deferred_acceptance` consumes without any
    per-student Python objects.  The default returns the same lists as plain
    ``list[list[int]]``.
    """
    if num_students <= 0 or num_schools <= 0:
        raise ValueError("num_students and num_schools must be positive")
    if list_length <= 0:
        raise ValueError(f"list_length must be positive, got {list_length}")
    # Documented public-API fallback: callers who pass no generator opt out
    # of reproducibility explicitly.  Every repro code path seeds.
    rng = rng or np.random.default_rng()  # repro-lint: disable=R1
    list_length = min(list_length, num_schools)

    popularity = rng.normal(0.0, popularity_spread, size=num_schools)
    utilities = popularity + rng.gumbel(0.0, 1.0, size=(num_students, num_schools))
    order = np.argsort(-utilities, axis=1)[:, :list_length].astype(np.int64)
    if as_matrix:
        return order
    return order.tolist()
