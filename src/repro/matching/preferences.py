"""Synthetic student preference generation for the matching example.

Real NYC students rank up to twelve schools; their choices correlate with
geography and with school popularity.  For the end-to-end admissions example
we only need plausible preference lists, so this module generates them from a
simple popularity-plus-noise utility model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_student_preferences"]


def generate_student_preferences(
    num_students: int,
    num_schools: int,
    list_length: int = 5,
    popularity_spread: float = 1.0,
    rng: np.random.Generator | None = None,
) -> list[list[int]]:
    """Generate ranked school preference lists for every student.

    Each school gets a latent popularity drawn from a normal distribution with
    standard deviation ``popularity_spread``; each student's utility for a
    school is the popularity plus idiosyncratic Gumbel noise, and the student
    lists their ``list_length`` highest-utility schools in order.
    """
    if num_students <= 0 or num_schools <= 0:
        raise ValueError("num_students and num_schools must be positive")
    if list_length <= 0:
        raise ValueError(f"list_length must be positive, got {list_length}")
    rng = rng or np.random.default_rng()
    list_length = min(list_length, num_schools)

    popularity = rng.normal(0.0, popularity_spread, size=num_schools)
    preferences: list[list[int]] = []
    for _ in range(num_students):
        utilities = popularity + rng.gumbel(0.0, 1.0, size=num_schools)
        order = np.argsort(-utilities)
        preferences.append([int(s) for s in order[:list_length]])
    return preferences
