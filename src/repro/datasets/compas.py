"""Calibrated synthetic COMPAS-style recidivism dataset.

The paper's second evaluation dataset is the ProPublica extract of COMPAS
scores for 7,214 Broward County defendants.  This module generates a
synthetic population with the same structure:

* race labels with the published Broward-County proportions (African-American
  defendants are the majority group in the data);
* a COMPAS-style **decile score** between 1 and 10 derived from a latent risk
  estimate that is biased against some groups (the calibration target is the
  ProPublica finding that African-American defendants receive systematically
  higher deciles conditional on the same underlying behaviour, and Caucasian
  defendants systematically lower ones);
* a two-year recidivism outcome driven by the *unbiased* latent behaviour,
  which is what makes per-group false-positive-rate gaps appear exactly as in
  the original analysis (Figure 10b).

Ranking convention: as in the paper, the decile score is treated as the
ranking function with *lower being better* — the "selected" set at a given k
is the k% of defendants judged lowest-risk (e.g., recommended for release).
The library negates the decile before ranking so that higher-score-is-better
holds everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.parallel import SharedColumnStore
from ..ranking import NegatedColumnScore, ScoreFunction
from ..tabular import Table

__all__ = [
    "CompasGeneratorConfig",
    "CompasDataset",
    "COMPAS_RACES",
    "COMPAS_RACE_ATTRIBUTES",
    "compas_release_ranking_function",
    "generate_compas_cohort",
    "generate_compas_dataset",
]

#: Race categories as they appear in the ProPublica data, with approximate
#: Broward County proportions.
COMPAS_RACES: dict[str, float] = {
    "African-American": 0.514,
    "Caucasian": 0.340,
    "Hispanic": 0.082,
    "Other": 0.0525,
    "Asian": 0.0044,
    "Native American": 0.0071,
}

#: One-hot fairness attribute column names, in the order Figure 10 plots them.
COMPAS_RACE_ATTRIBUTES: tuple[str, ...] = tuple(
    f"race_{race.lower().replace(' ', '_').replace('-', '_')}" for race in COMPAS_RACES
)

#: Per-race shift (in latent risk standard deviations) applied to the *score*
#: latent but not to the behaviour latent — this is the modelled scoring bias.
_DEFAULT_SCORE_BIAS: dict[str, float] = {
    "African-American": 0.42,
    "Caucasian": -0.26,
    "Hispanic": -0.10,
    "Other": -0.12,
    "Asian": -0.30,
    "Native American": 0.25,
}


@dataclass(frozen=True)
class CompasGeneratorConfig:
    """Calibration knobs for the synthetic COMPAS generator."""

    num_defendants: int = 7_214
    race_proportions: dict[str, float] = field(default_factory=lambda: dict(COMPAS_RACES))
    score_bias: dict[str, float] = field(default_factory=lambda: dict(_DEFAULT_SCORE_BIAS))
    #: Weight of true behaviour vs. noise in the COMPAS-style score latent.
    score_signal: float = 0.75
    #: Base two-year recidivism rate of the population.
    base_recidivism_rate: float = 0.45

    def validate(self) -> None:
        if self.num_defendants <= 0:
            raise ValueError(f"num_defendants must be positive, got {self.num_defendants}")
        total = sum(self.race_proportions.values())
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"race proportions must sum to ~1, got {total}")
        if not 0.0 < self.base_recidivism_rate < 1.0:
            raise ValueError(
                f"base_recidivism_rate must be in (0, 1), got {self.base_recidivism_rate}"
            )
        unknown = set(self.score_bias) - set(self.race_proportions)
        if unknown:
            raise ValueError(f"score_bias has unknown races: {sorted(unknown)}")


@dataclass(frozen=True)
class CompasDataset:
    """The generated defendants plus metadata used by the experiments.

    ``store`` is set when the cohort was generated with ``shared=True``: the
    float columns are zero-copy views into one shared-memory segment (see
    :class:`repro.core.parallel.SharedColumnStore`).  Such a dataset must be
    :meth:`close`-d once it — and any fit running over it — is done.  The
    ``race`` label column is object-dtype and always lives on the heap.
    """

    table: Table
    race_attributes: tuple[str, ...] = COMPAS_RACE_ATTRIBUTES
    config: CompasGeneratorConfig = field(default_factory=CompasGeneratorConfig)
    store: SharedColumnStore | None = None

    @property
    def num_defendants(self) -> int:
        return self.table.num_rows

    @property
    def races(self) -> tuple[str, ...]:
        return tuple(self.config.race_proportions.keys())

    def close(self) -> None:
        """Release the shared-memory segment backing this dataset (no-op when unshared).

        Reading any float column after close is use-after-free — see
        :class:`repro.core.parallel.SharedColumnStore`.
        """
        if self.store is not None:
            self.store.close()


def race_attribute_name(race: str) -> str:
    """Column name of the one-hot indicator for ``race``."""
    return f"race_{race.lower().replace(' ', '_').replace('-', '_')}"


def compas_release_ranking_function() -> ScoreFunction:
    """Ranking function used in the COMPAS experiments.

    Lower decile scores indicate lower predicted risk, so the release-first
    ranking negates the decile.  Bonus points computed by DCA are added to
    this negated score, which is equivalent to subtracting them from the raw
    decile (the paper's "negative for scenarios where a lower score is
    desirable" framing).
    """
    return NegatedColumnScore("decile_score")


def _cohort_columns(config: CompasGeneratorConfig) -> tuple[str, ...]:
    """Float columns of a generated cohort, in shared-store layout order."""
    return (
        "defendant_id",
        "age",
        "sex_male",
        "priors_count",
        "decile_score",
        "two_year_recid",
    ) + tuple(race_attribute_name(race) for race in config.race_proportions)


def generate_compas_cohort(
    config: CompasGeneratorConfig | None = None,
    seed: int = 20160523,
    *,
    shared: bool = False,
) -> CompasDataset:
    """Generate the synthetic COMPAS-style dataset.

    The default seed is fixed so experiments and tests see the same
    population; pass a different seed for robustness checks.

    With ``shared=True`` every float column is written into one
    shared-memory segment (:class:`repro.core.parallel.SharedColumnStore`)
    so worker processes can map the population instead of pickling it;
    the returned dataset carries the owning ``store`` and must be
    :meth:`CompasDataset.close`-d when done.  Column values are bitwise
    identical to the unshared path for the same seed (the object-dtype
    ``race`` labels stay on the heap either way).
    """
    config = config or CompasGeneratorConfig()
    config.validate()
    rng = np.random.default_rng(seed)

    if shared:
        store: SharedColumnStore | None = SharedColumnStore(
            config.num_defendants, _cohort_columns(config)
        )
        out = store.columns()
        try:
            return _generate_into(config, rng, out, store)
        except BaseException:
            # The caller never saw the dataset, so nothing else can release
            # the segment.
            store.close()
            raise
    out = {
        name: np.empty(config.num_defendants, dtype=float)
        for name in _cohort_columns(config)
    }
    return _generate_into(config, rng, out, None)


def generate_compas_dataset(
    config: CompasGeneratorConfig | None = None, seed: int = 20160523
) -> CompasDataset:
    """Backwards-compatible unshared alias for :func:`generate_compas_cohort`."""
    return generate_compas_cohort(config, seed)


def _generate_into(
    config: CompasGeneratorConfig,
    rng: np.random.Generator,
    out: dict[str, np.ndarray],
    store: SharedColumnStore | None,
) -> CompasDataset:
    """Generate the cohort's columns into ``out`` (heap arrays or store views)."""
    n = config.num_defendants
    races = list(config.race_proportions.keys())
    proportions = np.asarray([config.race_proportions[r] for r in races], dtype=float)
    proportions = proportions / proportions.sum()
    race_codes = rng.choice(len(races), size=n, p=proportions)
    race_labels = np.asarray(races, dtype=object)[race_codes]

    # Demographics and criminal history.
    age = np.clip(rng.gamma(shape=5.0, scale=7.0, size=n) + 18.0, 18, 85)
    sex_is_male = (rng.uniform(size=n) < 0.81).astype(float)
    priors_count = rng.negative_binomial(2, 0.38, size=n).astype(float)

    # Latent behaviour: what actually drives re-offending.  Younger defendants
    # and defendants with more priors are more likely to re-offend, matching
    # the main effects reported for the original data.
    behaviour = (
        0.55 * (priors_count - priors_count.mean()) / (priors_count.std() + 1e-9)
        - 0.35 * (age - age.mean()) / (age.std() + 1e-9)
        + 0.15 * sex_is_male
        + rng.normal(0.0, 0.8, size=n)
    )

    # Latent score: the COMPAS-style estimate.  It tracks behaviour only
    # partially and carries the per-race bias shifts.
    bias = np.asarray([config.score_bias.get(r, 0.0) for r in races], dtype=float)[race_codes]
    score_latent = (
        config.score_signal * behaviour
        + bias
        + rng.normal(0.0, np.sqrt(max(1e-9, 1.0 - config.score_signal**2)), size=n)
    )

    # Decile scores: rank the score latent and cut into ten equal buckets.
    order = np.argsort(np.argsort(score_latent))
    decile_score = np.floor(10.0 * order / n).astype(float) + 1.0

    # Two-year recidivism outcome follows the behaviour latent only.
    behaviour_percentile = np.argsort(np.argsort(behaviour)) / max(1, n - 1)
    recid_probability = np.clip(
        config.base_recidivism_rate + 0.75 * (behaviour_percentile - 0.5), 0.02, 0.98
    )
    two_year_recid = (rng.uniform(size=n) < recid_probability).astype(float)

    out["defendant_id"][...] = np.arange(n, dtype=float)
    out["age"][...] = age
    out["sex_male"][...] = sex_is_male
    out["priors_count"][...] = priors_count
    out["decile_score"][...] = decile_score
    out["two_year_recid"][...] = two_year_recid
    for race in races:
        out[race_attribute_name(race)][...] = (race_labels == race).astype(float)

    # Table column order is part of the public surface; the object-dtype race
    # labels slot in right after the id, exactly as before the shared path.
    columns: dict[str, object] = {
        "defendant_id": out["defendant_id"],
        "race": [str(r) for r in race_labels],
        "age": out["age"],
        "sex_male": out["sex_male"],
        "priors_count": out["priors_count"],
        "decile_score": out["decile_score"],
        "two_year_recid": out["two_year_recid"],
    }
    for race in races:
        columns[race_attribute_name(race)] = out[race_attribute_name(race)]

    return CompasDataset(table=Table(columns), config=config, store=store)
