"""Synthetic, calibrated datasets standing in for the paper's restricted data."""

from .compas import (
    COMPAS_RACE_ATTRIBUTES,
    COMPAS_RACES,
    CompasDataset,
    CompasGeneratorConfig,
    compas_release_ranking_function,
    generate_compas_cohort,
    generate_compas_dataset,
    race_attribute_name,
)
from .copula import (
    GaussianCopula,
    MarginalSpec,
    binary_marginal,
    clipped_normal_marginal,
    nearest_correlation_matrix,
    uniform_marginal,
)
from .nyc_schools import (
    SCHOOL_FAIRNESS_ATTRIBUTES,
    SchoolCohort,
    SchoolGeneratorConfig,
    generate_school_cohort,
    generate_school_dataset,
    school_admission_rubric,
)
from .registry import (
    clear_dataset_cache,
    load_compas,
    load_dataset,
    load_school_cohorts,
    register_dataset,
)

__all__ = [
    "GaussianCopula",
    "MarginalSpec",
    "binary_marginal",
    "uniform_marginal",
    "clipped_normal_marginal",
    "nearest_correlation_matrix",
    "SchoolGeneratorConfig",
    "SchoolCohort",
    "SCHOOL_FAIRNESS_ATTRIBUTES",
    "school_admission_rubric",
    "generate_school_cohort",
    "generate_school_dataset",
    "CompasGeneratorConfig",
    "CompasDataset",
    "COMPAS_RACES",
    "COMPAS_RACE_ATTRIBUTES",
    "compas_release_ranking_function",
    "generate_compas_cohort",
    "generate_compas_dataset",
    "race_attribute_name",
    "load_school_cohorts",
    "load_compas",
    "load_dataset",
    "register_dataset",
    "clear_dataset_cache",
]
