"""A tiny dataset registry with per-process caching.

Experiments, examples, benchmarks, and tests all want "the" school cohorts or
"the" COMPAS dataset.  Generating an 80,000-row cohort takes a noticeable
fraction of a second, so the registry memoizes the default-configuration
datasets while still allowing explicit regeneration with custom parameters.
"""

from __future__ import annotations

from typing import Callable

from .compas import CompasDataset, generate_compas_dataset
from .nyc_schools import SchoolCohort, SchoolGeneratorConfig, generate_school_dataset

__all__ = [
    "load_school_cohorts",
    "load_compas",
    "clear_dataset_cache",
    "register_dataset",
    "load_dataset",
]

_CACHE: dict[str, object] = {}
_CUSTOM: dict[str, Callable[[], object]] = {}


def load_school_cohorts(
    num_students: int | None = None, refresh: bool = False
) -> tuple[SchoolCohort, SchoolCohort]:
    """Return the (train, test) school cohorts, cached per process.

    ``num_students`` overrides the default cohort size (80,000); smaller sizes
    are used by the test-suite and by quick examples to keep runtimes short.
    """
    key = f"schools:{num_students or 'default'}"
    if refresh or key not in _CACHE:
        config = (
            SchoolGeneratorConfig(num_students=num_students)
            if num_students is not None
            else SchoolGeneratorConfig()
        )
        _CACHE[key] = generate_school_dataset(config=config)
    return _CACHE[key]  # type: ignore[return-value]


def load_compas(num_defendants: int | None = None, refresh: bool = False) -> CompasDataset:
    """Return the synthetic COMPAS dataset, cached per process."""
    key = f"compas:{num_defendants or 'default'}"
    if refresh or key not in _CACHE:
        if num_defendants is None:
            _CACHE[key] = generate_compas_dataset()
        else:
            from .compas import CompasGeneratorConfig

            _CACHE[key] = generate_compas_dataset(
                CompasGeneratorConfig(num_defendants=num_defendants)
            )
    return _CACHE[key]  # type: ignore[return-value]


def register_dataset(name: str, factory: Callable[[], object]) -> None:
    """Register a custom dataset factory under ``name`` for :func:`load_dataset`."""
    if not name:
        raise ValueError("dataset name must be non-empty")
    _CUSTOM[name] = factory


def load_dataset(name: str, refresh: bool = False) -> object:
    """Load a registered dataset by name (built-ins: ``schools``, ``compas``)."""
    if name == "schools":
        return load_school_cohorts(refresh=refresh)
    if name == "compas":
        return load_compas(refresh=refresh)
    if name in _CUSTOM:
        key = f"custom:{name}"
        if refresh or key not in _CACHE:
            _CACHE[key] = _CUSTOM[name]()
        return _CACHE[key]
    raise KeyError(f"unknown dataset {name!r}; registered: {sorted(_CUSTOM)} + ['schools', 'compas']")


def clear_dataset_cache() -> None:
    """Drop all cached datasets (tests use this to control memory)."""
    _CACHE.clear()
