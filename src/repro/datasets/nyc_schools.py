"""Calibrated synthetic NYC school-admissions cohorts.

The paper evaluates DCA on ~80,000 NYC 7th graders per academic year
(2016-2017 as training data, 2017-2018 as test data), obtained through an
IRB-approved data request.  That data cannot be redistributed, so this module
generates synthetic cohorts calibrated to reproduce the published properties
that drive the experiments:

* marginal prevalences of the fairness attributes (≈70% low-income, ≈13%
  English-language learners, ≈20% special-education students, continuous
  Economic Need Index of the student's school);
* correlations between the fairness attributes and academic performance such
  that the paper's admission rubric (``0.55 * GPA + 0.45 * TestScores`` over
  normalized attributes) produces a *baseline disparity* at a 5% selection
  rate close to Table I (≈ −0.25 low-income, −0.11 ELL, −0.18 ENI, −0.19
  special-ed, norm ≈ 0.37);
* two independent cohorts drawn from the same underlying distribution, so
  bonus points fitted on the "2016-2017" cohort generalize to the
  "2017-2018" cohort exactly as in the paper's train/test protocol.

The generated table contains per-course grades (math, ELA, science, social
studies on a 55-100 scale), state test scores (math and ELA on a 100-400
scale), an attendance column, a district label, and the fairness attributes.
The admission rubric consumes the GPA and test-score averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.parallel import SharedColumnStore
from ..ranking import WeightedSumScore
from ..tabular import Table
from .copula import GaussianCopula, binary_marginal, uniform_marginal

__all__ = [
    "SchoolGeneratorConfig",
    "SchoolCohort",
    "SCHOOL_FAIRNESS_ATTRIBUTES",
    "school_admission_rubric",
    "generate_school_cohort",
    "generate_school_dataset",
]

#: Fairness attributes used throughout the school experiments, in the order
#: the paper reports them (Table I).
SCHOOL_FAIRNESS_ATTRIBUTES: tuple[str, ...] = ("low_income", "ell", "eni", "special_ed")

#: Number of NYC community school districts; used to emulate the Table II
#: single-district comparison against Multinomial FA*IR.
_NUM_DISTRICTS = 32

#: Every column a generated cohort table carries, in table order.  Shared
#: generation (``generate_school_cohort(..., shared=True)``) allocates this
#: exact layout inside one shared-memory segment up front.
_COHORT_COLUMNS: tuple[str, ...] = (
    "student_id",
    "grade_math",
    "grade_ela",
    "grade_science",
    "grade_social_studies",
    "test_math",
    "test_ela",
    "gpa",
    "test_scores",
    "absences",
    "district",
    "low_income",
    "ell",
    "special_ed",
    "eni",
)


@dataclass(frozen=True)
class SchoolGeneratorConfig:
    """Calibration knobs for the synthetic school cohort generator.

    The defaults reproduce the paper's published marginals and (approximately)
    its Table I baseline disparity.  They are exposed so ablation experiments
    can explore other populations.
    """

    num_students: int = 80_000
    low_income_rate: float = 0.70
    ell_rate: float = 0.13
    special_ed_rate: float = 0.20
    #: Pairwise latent correlations between the disadvantage dimensions.
    corr_low_income_ell: float = 0.30
    corr_low_income_special_ed: float = 0.12
    corr_low_income_eni: float = 0.66
    corr_ell_special_ed: float = 0.05
    corr_ell_eni: float = 0.32
    corr_special_ed_eni: float = 0.12
    #: Latent correlation between academic ability and each disadvantage
    #: dimension (negative: disadvantaged students score lower on average).
    corr_ability_low_income: float = -0.16
    corr_ability_ell: float = -0.26
    corr_ability_special_ed: float = -0.36
    corr_ability_eni: float = -0.20
    #: Additive penalties (in latent standard-deviation units) applied to the
    #: grade/test latents on top of the ability correlation.  These model the
    #: *direct* effect of each dimension on the measured attributes (e.g. ELA
    #: grades and test scores penalize English-language learners heavily).
    grade_penalty_low_income: float = 0.10
    grade_penalty_ell: float = 0.45
    grade_penalty_special_ed: float = 0.70
    grade_penalty_eni: float = 0.22
    test_penalty_low_income: float = 0.14
    test_penalty_ell: float = 0.80
    test_penalty_special_ed: float = 0.75
    test_penalty_eni: float = 0.30
    #: Observation noise of individual course grades / test subjects.
    grade_noise: float = 0.45
    test_noise: float = 0.40

    def validate(self) -> None:
        if self.num_students <= 0:
            raise ValueError(f"num_students must be positive, got {self.num_students}")
        for name in ("low_income_rate", "ell_rate", "special_ed_rate"):
            rate = getattr(self, name)
            if not 0.0 < rate < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {rate}")


@dataclass(frozen=True)
class SchoolCohort:
    """One synthetic academic-year cohort plus its metadata.

    ``store`` is set when the cohort was generated with ``shared=True``: its
    float columns are zero-copy views into one shared-memory segment (see
    :class:`repro.core.parallel.SharedColumnStore`).  Such a cohort must be
    :meth:`close`-d once it — and any fit running over it — is done.
    """

    year: str
    table: Table
    fairness_attributes: tuple[str, ...] = SCHOOL_FAIRNESS_ATTRIBUTES
    config: SchoolGeneratorConfig = field(default_factory=SchoolGeneratorConfig)
    store: SharedColumnStore | None = None

    @property
    def num_students(self) -> int:
        return self.table.num_rows

    def district(self, district_id: int) -> Table:
        """Rows for one community school district (used for Table II)."""
        districts = self.table.numeric("district")
        return self.table.filter(districts == float(district_id))

    def close(self) -> None:
        """Release the shared-memory segment backing this cohort (no-op when unshared).

        Must be the cohort's last use: ``table`` holds zero-copy views into
        the segment, so reading any float column after close is
        use-after-free (see :class:`repro.core.parallel.SharedColumnStore`).
        """
        if self.store is not None:
            self.store.close()


def school_admission_rubric() -> WeightedSumScore:
    """The paper's screened-admission rubric: 0.55·GPA + 0.45·TestScores.

    Both inputs are min-max normalized over the cohort and the result is put
    on a 100-point scale, so that bonus points are directly interpretable as
    "points out of 100".
    """
    return WeightedSumScore({"gpa": 0.55, "test_scores": 0.45}, normalize=True, scale=100.0)


def _build_copula(config: SchoolGeneratorConfig) -> GaussianCopula:
    """Latent dimensions: low_income, ell, special_ed, eni, ability."""
    marginals = [
        binary_marginal("low_income", config.low_income_rate),
        binary_marginal("ell", config.ell_rate),
        binary_marginal("special_ed", config.special_ed_rate),
        uniform_marginal("eni", 0.05, 0.98),
        uniform_marginal("ability", 0.0, 1.0),  # transform unused; latent kept
    ]
    c = config
    correlation = np.array(
        [
            [1.0, c.corr_low_income_ell, c.corr_low_income_special_ed, c.corr_low_income_eni, c.corr_ability_low_income],
            [c.corr_low_income_ell, 1.0, c.corr_ell_special_ed, c.corr_ell_eni, c.corr_ability_ell],
            [c.corr_low_income_special_ed, c.corr_ell_special_ed, 1.0, c.corr_special_ed_eni, c.corr_ability_special_ed],
            [c.corr_low_income_eni, c.corr_ell_eni, c.corr_special_ed_eni, 1.0, c.corr_ability_eni],
            [c.corr_ability_low_income, c.corr_ability_ell, c.corr_ability_special_ed, c.corr_ability_eni, 1.0],
        ]
    )
    return GaussianCopula(marginals, correlation)


def _grade_scale(latent: np.ndarray) -> np.ndarray:
    """Map a standard-normal latent to a 55-100 report-card grade."""
    return np.clip(82.0 + 9.0 * latent, 55.0, 100.0)


def _test_scale(latent: np.ndarray) -> np.ndarray:
    """Map a standard-normal latent to a 100-400 state-test scale score."""
    return np.clip(300.0 + 35.0 * latent, 100.0, 400.0)


def generate_school_cohort(
    year: str,
    config: SchoolGeneratorConfig | None = None,
    seed: int | None = None,
    *,
    shared: bool = False,
) -> SchoolCohort:
    """Generate one synthetic academic-year cohort.

    Parameters
    ----------
    year:
        Label such as ``"2016-2017"``; also used to derive the default seed so
        the two paper cohorts differ but are individually reproducible.
    config:
        Calibration parameters; defaults reproduce the paper's setting.
    seed:
        Explicit RNG seed.  When omitted, a deterministic seed is derived from
        ``year`` so repeated calls return identical cohorts.
    shared:
        When True, every column is written directly into one shared-memory
        segment (:class:`repro.core.parallel.SharedColumnStore`) as it is
        generated — the fairness attributes stream straight out of the
        copula, derived columns land one at a time — so a multi-million-row
        cohort is never held twice (once on the heap, once for sharing).
        The returned cohort carries the owning ``store`` and must be
        :meth:`SchoolCohort.close`-d when done.  Column values are bitwise
        identical to the unshared path for the same seed.
    """
    config = config or SchoolGeneratorConfig()
    config.validate()
    if seed is None:
        seed = abs(hash(("nyc-schools", year))) % (2**32)
    rng = np.random.default_rng(seed)

    if shared:
        store: SharedColumnStore | None = SharedColumnStore(
            config.num_students, _COHORT_COLUMNS
        )
        out = store.columns()
        try:
            return _generate_into(year, config, rng, out, store)
        except BaseException:
            # The caller never saw the cohort, so nothing else can release
            # the segment.
            store.close()
            raise
    out = {
        name: np.empty(config.num_students, dtype=float) for name in _COHORT_COLUMNS
    }
    return _generate_into(year, config, rng, out, None)


def _generate_into(
    year: str,
    config: SchoolGeneratorConfig,
    rng: np.random.Generator,
    out: dict[str, np.ndarray],
    store: SharedColumnStore | None,
) -> SchoolCohort:
    """Generate a cohort's columns into ``out`` (heap arrays or store views)."""
    copula = _build_copula(config)
    latent = copula.latent_and_sample_into(config.num_students, rng, out)
    low_income = out["low_income"]
    ell = out["ell"]
    special_ed = out["special_ed"]
    eni = out["eni"]
    ability = latent[:, 4]

    grade_shift = (
        -config.grade_penalty_low_income * low_income
        - config.grade_penalty_ell * ell
        - config.grade_penalty_special_ed * special_ed
        - config.grade_penalty_eni * eni
    )
    test_shift = (
        -config.test_penalty_low_income * low_income
        - config.test_penalty_ell * ell
        - config.test_penalty_special_ed * special_ed
        - config.test_penalty_eni * eni
    )

    def course_grade(extra_penalty: np.ndarray | float = 0.0) -> np.ndarray:
        noise = rng.normal(0.0, config.grade_noise, config.num_students)
        return _grade_scale(ability + grade_shift + extra_penalty + noise)

    # ELA-related subjects carry an extra ELL penalty, mirroring the paper's
    # observation that ELL students are "obviously disadvantaged by an
    # admission method that takes into account ELA grades and test scores".
    extra_ela_penalty = -0.35 * ell
    out["grade_math"][...] = course_grade()
    out["grade_ela"][...] = course_grade(extra_ela_penalty)
    out["grade_science"][...] = course_grade()
    out["grade_social_studies"][...] = course_grade(extra_ela_penalty * 0.5)

    out["test_math"][...] = _test_scale(
        ability + test_shift + rng.normal(0.0, config.test_noise, config.num_students)
    )
    out["test_ela"][...] = _test_scale(
        ability + test_shift + 2.0 * extra_ela_penalty + rng.normal(0.0, config.test_noise, config.num_students)
    )

    out["gpa"][...] = (
        out["grade_math"] + out["grade_ela"] + out["grade_science"] + out["grade_social_studies"]
    ) / 4.0
    out["test_scores"][...] = (out["test_math"] + out["test_ela"]) / 2.0

    out["absences"][...] = np.clip(
        rng.poisson(4.0 + 6.0 * eni + 2.0 * low_income), 0, 60
    ).astype(float)
    # Districts with higher ids lean higher-need in this synthetic city, which
    # gives per-district experiments a realistic spread of demographics.
    out["district"][...] = np.clip(
        np.floor(_NUM_DISTRICTS * (0.55 * eni + 0.45 * rng.uniform(size=config.num_students))) + 1,
        1,
        _NUM_DISTRICTS,
    ).astype(float)
    out["student_id"][...] = np.arange(config.num_students, dtype=float)

    table = Table({name: out[name] for name in _COHORT_COLUMNS})
    return SchoolCohort(year=year, table=table, config=config, store=store)


def generate_school_dataset(
    config: SchoolGeneratorConfig | None = None,
    train_seed: int = 20162017,
    test_seed: int = 20172018,
) -> tuple[SchoolCohort, SchoolCohort]:
    """Generate the (training, test) cohort pair used throughout the evaluation.

    The two cohorts are independent draws from the same distribution, exactly
    mirroring the paper's use of the 2016-2017 year for fitting bonus points
    and the 2017-2018 year for measuring how well they generalize.
    """
    train = generate_school_cohort("2016-2017", config=config, seed=train_seed)
    test = generate_school_cohort("2017-2018", config=config, seed=test_seed)
    return train, test
