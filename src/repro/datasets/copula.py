"""Correlated synthetic-attribute generation via a Gaussian copula.

The paper's experiments run on two datasets we cannot redistribute (the NYC
DOE student records are IRB-restricted; the ProPublica COMPAS extract carries
its own usage concerns).  The reproduction therefore generates *calibrated
synthetic* populations.  Each population is described by:

* a set of latent dimensions with a target correlation structure, and
* per-attribute marginal transforms (binary thresholds at a target
  prevalence, min-max clipped continuous values, etc.).

A Gaussian copula gives exactly that: draw a multivariate normal vector with
the requested correlation matrix, then push each coordinate through its
marginal transform.  Correlations between fairness attributes and the academic
(or risk) attributes are what create the disparate outcomes that DCA has to
compensate, so controlling them directly is the key to reproducing the
*shape* of the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np
from scipy import stats

__all__ = [
    "MarginalSpec",
    "binary_marginal",
    "uniform_marginal",
    "clipped_normal_marginal",
    "GaussianCopula",
    "nearest_correlation_matrix",
]


@dataclass(frozen=True)
class MarginalSpec:
    """A named marginal transform applied to one latent normal coordinate."""

    name: str
    transform: Callable[[np.ndarray], np.ndarray]

    def apply(self, latent: np.ndarray) -> np.ndarray:
        return self.transform(latent)


def binary_marginal(name: str, prevalence: float) -> MarginalSpec:
    """A 0/1 attribute that is 1 with probability ``prevalence``.

    The latent normal coordinate is thresholded at the (1 - prevalence)
    quantile, so *larger* latent values indicate group membership.
    """
    if not 0.0 < prevalence < 1.0:
        raise ValueError(f"prevalence must be in (0, 1), got {prevalence}")
    threshold = stats.norm.ppf(1.0 - prevalence)

    def transform(latent: np.ndarray) -> np.ndarray:
        return (latent > threshold).astype(float)

    return MarginalSpec(name, transform)


def uniform_marginal(name: str, low: float = 0.0, high: float = 1.0) -> MarginalSpec:
    """A continuous attribute uniform on [low, high] (probability-integral transform)."""
    if high <= low:
        raise ValueError(f"high must exceed low, got [{low}, {high}]")

    def transform(latent: np.ndarray) -> np.ndarray:
        return low + (high - low) * stats.norm.cdf(latent)

    return MarginalSpec(name, transform)


def clipped_normal_marginal(
    name: str, mean: float, std: float, low: float | None = None, high: float | None = None
) -> MarginalSpec:
    """A normal attribute with the given mean/std, optionally clipped to [low, high]."""
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")

    def transform(latent: np.ndarray) -> np.ndarray:
        values = mean + std * latent
        if low is not None or high is not None:
            values = np.clip(values, low if low is not None else -np.inf,
                             high if high is not None else np.inf)
        return values

    return MarginalSpec(name, transform)


def nearest_correlation_matrix(matrix: np.ndarray, epsilon: float = 1e-8) -> np.ndarray:
    """Project a symmetric matrix onto the positive semi-definite cone.

    Hand-written correlation matrices (as used by the dataset generators) are
    occasionally slightly indefinite; clipping negative eigenvalues and
    re-normalizing the diagonal makes them usable for Cholesky-free sampling.
    """
    matrix = np.asarray(matrix, dtype=float)
    symmetric = (matrix + matrix.T) / 2.0
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    clipped = np.clip(eigenvalues, epsilon, None)
    rebuilt = eigenvectors @ np.diag(clipped) @ eigenvectors.T
    scale = np.sqrt(np.diag(rebuilt))
    rebuilt = rebuilt / np.outer(scale, scale)
    np.fill_diagonal(rebuilt, 1.0)
    return rebuilt


class GaussianCopula:
    """Sample correlated attributes with arbitrary marginals.

    Parameters
    ----------
    marginals:
        One :class:`MarginalSpec` per output attribute, in order.
    correlation:
        Square correlation matrix over the latent normals, same order as
        ``marginals``.  It is projected to the nearest valid correlation
        matrix if necessary.
    """

    def __init__(self, marginals: Sequence[MarginalSpec], correlation: np.ndarray) -> None:
        self._marginals = tuple(marginals)
        correlation = np.asarray(correlation, dtype=float)
        expected = (len(self._marginals), len(self._marginals))
        if correlation.shape != expected:
            raise ValueError(
                f"correlation matrix has shape {correlation.shape}, expected {expected}"
            )
        self._correlation = nearest_correlation_matrix(correlation)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self._marginals)

    @property
    def correlation(self) -> np.ndarray:
        return self._correlation.copy()

    def _latent(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw the correlated latent normal matrix (one generator call)."""
        if size <= 0:
            raise ValueError(f"sample size must be positive, got {size}")
        dimension = len(self._marginals)
        return rng.multivariate_normal(
            mean=np.zeros(dimension), cov=self._correlation, size=size, method="eigh"
        )

    def sample(self, size: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
        """Draw ``size`` rows and return a dict of attribute arrays."""
        latent = self._latent(size, rng)
        return {
            spec.name: spec.apply(latent[:, i]) for i, spec in enumerate(self._marginals)
        }

    def latent_and_sample(
        self, size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Like :meth:`sample` but also return the latent normal matrix.

        Dataset generators use the latent coordinates to build outcome
        variables (grades, risk) that are correlated with the fairness
        attributes *through the latent space*, which keeps the calibration
        interpretable.
        """
        latent = self._latent(size, rng)
        values = {
            spec.name: spec.apply(latent[:, i]) for i, spec in enumerate(self._marginals)
        }
        return latent, values

    def latent_and_sample_into(
        self, size: int, rng: np.random.Generator, out: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Sample straight into caller-provided column buffers; return the latent.

        Every marginal whose name appears in ``out`` has its transform
        written into that buffer in place (``out[name][...] = ...``); names
        absent from ``out`` are skipped (their latent coordinate is still
        drawn, so the RNG stream — and therefore every generated value — is
        bitwise identical to :meth:`latent_and_sample`).  The buffers may be
        plain arrays or views into shared memory
        (:class:`repro.core.parallel.SharedColumnStore`), which is how
        scale-bench cohorts are generated without a second private-heap
        materialization of each column.
        """
        latent = self._latent(size, rng)
        for i, spec in enumerate(self._marginals):
            target = out.get(spec.name)
            if target is None:
                continue
            if target.shape != (size,):
                raise ValueError(
                    f"output buffer for {spec.name!r} has shape {target.shape}, "
                    f"expected {(size,)}"
                )
            target[...] = spec.apply(latent[:, i])
        return latent
