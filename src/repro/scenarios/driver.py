"""The Monte-Carlo driver: sweep scenario x engine x objective x executor.

For each trial of a scenario the driver realizes the market, fits DCA bonus
vectors under each requested objective, matches students to schools with
every requested engine on both proposing sides, and folds the per-trial
measurements into *envelopes* — ``{min, mean, max}`` over trials for every
fairness and runtime metric — plus hard *identity* verdicts:

* ``engines_identical`` — every engine produced the same assignment vector
  as every other, on every proposing side, in every trial;
* ``sharded_bitwise_identical`` — a ``row_workers=N`` fit reproduced the
  serial fit bit for bit (only recorded when ``row_workers`` is set);
* ``<executor>_bitwise_identical`` — a ``fit_many`` run on that executor
  reproduced the serial batch bit for bit (only for executors beyond
  ``"serial"``).

Identity verdicts are recorded as ``1``/``0`` integers rather than booleans
so they can flow straight into the numeric-leaf ``BENCH_*.json`` schema.

Timing uses ``time.perf_counter`` exclusively (durations, not wall-clock
timestamps), and all randomness lives in :func:`~repro.scenarios.market.
generate_market`'s seeded stream — this module draws nothing itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..core import (
    DCA,
    DCAConfig,
    DisparityCalculator,
    DisparityObjective,
    LogDiscountedDisparityObjective,
)
from ..core.dca import FitSpec
from ..matching import ENGINES, PROPOSING_SIDES, deferred_acceptance
from ..metrics import ddp, representation_gap
from .configs import ScenarioConfig
from .market import ScenarioMarket, generate_market

__all__ = [
    "DEFAULT_FIT_CONFIG",
    "OBJECTIVES",
    "ScenarioEnvelope",
    "run_scenario",
]

#: Objective factories the driver can sweep, by short name.
OBJECTIVES = {
    "disparity": DisparityObjective,
    "log_discounted": LogDiscountedDisparityObjective,
}

#: Reduced-but-faithful fit hyper-parameters for stress cells: the markets
#: are small, so short phases keep a six-scenario sweep interactive while
#: still running both Core DCA learning rates plus a refinement pass.
DEFAULT_FIT_CONFIG = DCAConfig(iterations=60, refinement_iterations=80, sample_size=300)


@dataclass
class ScenarioEnvelope:
    """Fairness/runtime envelopes and identity verdicts for one scenario."""

    config: ScenarioConfig
    trials: int
    k: float
    fairness: dict[str, dict[str, float]] = field(default_factory=dict)
    runtime: dict[str, dict[str, float]] = field(default_factory=dict)
    identity: dict[str, int] = field(default_factory=dict)

    def all_identical(self) -> bool:
        """True when every recorded identity verdict held in every trial."""
        return all(value == 1 for value in self.identity.values())


def _envelope(values: Sequence[float]) -> dict[str, float]:
    data = np.asarray(list(values), dtype=float)
    return {
        "min": float(data.min()),
        "mean": float(data.mean()),
        "max": float(data.max()),
    }


def _mean_abs_representation_gap(table, scores, attributes, k) -> float:
    return float(
        np.mean([abs(representation_gap(table, scores, name, k)) for name in attributes])
    )


def _matched_share_gap(market: ScenarioMarket, assignment: np.ndarray) -> float:
    """Mean abs deviation of matched-student group shares from the population."""
    matched = assignment >= 0
    if not matched.any():
        return 0.0
    gaps = []
    for name in market.fairness_attributes:
        values = market.table.numeric(name)
        gaps.append(abs(float(values[matched].mean()) - float(values.mean())))
    return float(np.mean(gaps))


def _fit_specs(config: ScenarioConfig, trial: int, objective_names, attributes, k):
    """One deterministic :class:`FitSpec` per objective for this trial."""
    specs = []
    for index, name in enumerate(objective_names):
        factory = OBJECTIVES.get(name)
        if factory is None:
            known = ", ".join(sorted(OBJECTIVES))
            raise KeyError(f"unknown objective {name!r}; known: {known}")
        specs.append(
            FitSpec(
                k=k,
                seed=config.seed * 1_000 + trial * 10 + index,
                objective=factory(attributes),
                label=name,
            )
        )
    return specs


def run_scenario(
    config: ScenarioConfig,
    *,
    k: float = 0.15,
    engines: Sequence[str] = ENGINES,
    proposing_sides: Sequence[str] = PROPOSING_SIDES,
    executors: Sequence[str] = ("serial",),
    row_workers: int | None = None,
    objectives: Sequence[str] = ("disparity", "log_discounted"),
    fit_config: DCAConfig | None = None,
    max_workers: int | None = None,
    trials: int | None = None,
) -> ScenarioEnvelope:
    """Run the Monte-Carlo sweep for one scenario and fold the envelopes.

    ``engines``/``proposing_sides`` span the matching grid (every engine runs
    on every side, on the compensated score plane, and must agree exactly);
    ``objectives`` the DCA objectives fitted per trial; ``executors`` the
    ``fit_many`` backends checked bitwise against the serial batch; and
    ``row_workers`` additionally row-shards one fit per trial and checks it
    bitwise against its serial twin.  ``trials`` overrides the config's own
    trial count.
    """
    config.validate()
    for engine in engines:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    for side in proposing_sides:
        if side not in PROPOSING_SIDES:
            raise ValueError(
                f"unknown proposing side {side!r}; expected one of {PROPOSING_SIDES}"
            )
    base_fit_config = fit_config or DEFAULT_FIT_CONFIG
    num_trials = trials if trials is not None else config.trials
    if num_trials <= 0:
        raise ValueError(f"trials must be positive, got {num_trials}")

    fairness_samples: dict[str, list[float]] = {}
    runtime_samples: dict[str, list[float]] = {}
    identity: dict[str, int] = {"engines_identical": 1}
    if row_workers is not None and row_workers > 1:
        identity["sharded_bitwise_identical"] = 1
    for executor in executors:
        if executor != "serial":
            identity[f"{executor}_bitwise_identical"] = 1

    def record(samples: dict[str, list[float]], key: str, value: float) -> None:
        samples.setdefault(key, []).append(float(value))

    for trial in range(num_trials):
        market = generate_market(config, trial)
        table = market.table
        attributes = market.fairness_attributes
        score_function = market.score_function()
        specs = _fit_specs(config, trial, objectives, attributes, k)

        dca = DCA(attributes, score_function, k, config=base_fit_config)
        start = time.perf_counter()
        serial_fits = dca.fit_many(table, specs=specs, executor="serial")
        record(runtime_samples, "fit_serial_seconds", time.perf_counter() - start)

        for executor in executors:
            if executor == "serial":
                continue
            start = time.perf_counter()
            batch = dca.fit_many(
                table, specs=specs, executor=executor, max_workers=max_workers
            )
            record(runtime_samples, f"fit_{executor}_seconds", time.perf_counter() - start)
            for serial_fit, other in zip(serial_fits, batch):
                if not np.array_equal(
                    serial_fit.result.raw_bonus.values, other.result.raw_bonus.values
                ) or not np.array_equal(
                    serial_fit.result.bonus.values, other.result.bonus.values
                ):
                    identity[f"{executor}_bitwise_identical"] = 0

        if row_workers is not None and row_workers > 1:
            spec = specs[0]
            sharded_dca = DCA(
                attributes,
                score_function,
                k,
                objective=OBJECTIVES[objectives[0]](attributes),
                config=replace(base_fit_config, seed=spec.seed),
            )
            start = time.perf_counter()
            sharded = sharded_dca.fit(table, row_workers=row_workers)
            record(runtime_samples, "fit_sharded_seconds", time.perf_counter() - start)
            serial_result = serial_fits[0].result
            if not np.array_equal(
                serial_result.raw_bonus.values, sharded.raw_bonus.values
            ) or not np.array_equal(serial_result.bonus.values, sharded.bonus.values):
                identity["sharded_bitwise_identical"] = 0

        # Fairness of the compensated ranking (first objective's bonus).
        bonus = serial_fits[0].result.bonus
        base_scores = market.base_scores
        compensated_scores = bonus.apply(table, base_scores)
        calculator = DisparityCalculator(attributes).fit(table)
        record(
            fairness_samples,
            "disparity_norm_before",
            calculator.disparity(table, base_scores, k).norm,
        )
        record(
            fairness_samples,
            "disparity_norm_after",
            calculator.disparity(table, compensated_scores, k).norm,
        )
        record(
            fairness_samples,
            "ddp_before",
            ddp(table, base_scores, attributes, include_complements=True),
        )
        record(
            fairness_samples,
            "ddp_after",
            ddp(table, compensated_scores, attributes, include_complements=True),
        )
        record(
            fairness_samples,
            "representation_gap_before",
            _mean_abs_representation_gap(table, base_scores, attributes, k),
        )
        record(
            fairness_samples,
            "representation_gap_after",
            _mean_abs_representation_gap(table, compensated_scores, attributes, k),
        )

        # The matching grid runs on the compensated plane: each school's row
        # gets the same bonus vector added (per-school fits are the matching
        # experiment's job; the stress harness cares about engine identity).
        compensated_plane = np.vstack(
            [
                bonus.apply(table, market.score_plane[school])
                for school in range(market.num_schools)
            ]
        )
        reference_assignment: np.ndarray | None = None
        for side in proposing_sides:
            side_assignment: np.ndarray | None = None
            for engine in engines:
                start = time.perf_counter()
                match = deferred_acceptance(
                    market.preferences,
                    compensated_plane,
                    list(market.capacities),
                    engine=engine,
                    proposing=side,
                )
                record(
                    runtime_samples,
                    f"match_{engine}_seconds",
                    time.perf_counter() - start,
                )
                if side_assignment is None:
                    side_assignment = match.assignment
                elif not np.array_equal(side_assignment, match.assignment):
                    identity["engines_identical"] = 0
            if reference_assignment is None:
                reference_assignment = side_assignment

        record(
            fairness_samples,
            "match_share_gap",
            _matched_share_gap(market, reference_assignment),
        )
        record(
            fairness_samples,
            "unmatched_students",
            float(np.count_nonzero(reference_assignment < 0)),
        )

    return ScenarioEnvelope(
        config=config,
        trials=num_trials,
        k=k,
        fairness={key: _envelope(values) for key, values in fairness_samples.items()},
        runtime={key: _envelope(values) for key, values in runtime_samples.items()},
        identity=identity,
    )
