"""The golden-corpus emitter: small committed scenario instances.

The stress harness's output doubles as the repo's differential-test corpus:
for every built-in scenario a *downsized* instance (a few hundred students,
one trial) is realized, fitted, and matched once, and the expected artifacts
— the granularity-rounded bonus vector, disparity/DDP before and after, and
the full assignment vector of both proposing sides — are written as JSON
under ``tests/data/scenarios/``.

Tier-1 tests replay every committed instance on every run
(``tests/test_scenarios.py``): they recompute the instance from its embedded
config, assert the golden numbers still hold, and additionally run the full
engine grid (``vector == heap == reference`` on both sides) plus a
``row_workers`` fit that must be bitwise equal to the serial fit.  Regenerate
after an intentional behaviour change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_scenarios.py -q

Golden payloads follow the repo's golden-file convention: integers compare
exactly, floats via ``pytest.approx(rel=1e-9)``.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core import DCA, DCAConfig, DisparityCalculator, DisparityObjective
from ..matching import deferred_acceptance
from ..metrics import ddp
from .configs import ScenarioConfig, builtin_scenarios
from .market import generate_market

__all__ = [
    "CORPUS_K",
    "CORPUS_SCHEMA",
    "corpus_fit_config",
    "corpus_scenarios",
    "build_instance",
    "write_corpus",
    "load_corpus",
]

CORPUS_SCHEMA = 1

#: Selection fraction every corpus instance is fitted at.
CORPUS_K = 0.15

#: Students per downsized corpus instance (tiny scenarios keep their size).
_CORPUS_STUDENTS = 360


def corpus_fit_config() -> DCAConfig:
    """Short-phase fit hyper-parameters: corpus instances replay on every tier-1 run."""
    return DCAConfig(iterations=40, refinement_iterations=60, sample_size=240)


def corpus_scenarios() -> tuple[ScenarioConfig, ...]:
    """Every built-in scenario downsized to corpus scale (one trial each)."""
    scaled = []
    for config in builtin_scenarios():
        students = min(config.num_students, _CORPUS_STUDENTS)
        scaled.append(config.scaled(num_students=students, trials=1))
    return tuple(scaled)


def build_instance(config: ScenarioConfig) -> dict:
    """Realize, fit, and match one corpus instance; return its golden payload.

    The fit seed matches the Monte-Carlo driver's trial-0 first-objective
    spec (``config.seed * 1000``), so the corpus pins exactly the numbers the
    sweep produces.  Matches use the heap engine; the differential tests are
    what prove the other engines agree.
    """
    market = generate_market(config, trial=0)
    table = market.table
    attributes = market.fairness_attributes
    fit_config = corpus_fit_config()
    dca = DCA(
        attributes,
        market.score_function(),
        CORPUS_K,
        objective=DisparityObjective(attributes),
        config=replace(fit_config, seed=config.seed * 1_000),
    )
    result = dca.fit(table)

    base_scores = market.base_scores
    compensated_scores = result.bonus.apply(table, base_scores)
    calculator = DisparityCalculator(attributes).fit(table)
    compensated_plane = np.vstack(
        [
            result.bonus.apply(table, market.score_plane[school])
            for school in range(market.num_schools)
        ]
    )

    matches = {}
    for side in ("students", "schools"):
        match = deferred_acceptance(
            market.preferences,
            compensated_plane,
            list(market.capacities),
            engine="heap",
            proposing=side,
        )
        matches[side] = {
            "assignment": [int(value) for value in match.assignment],
            "num_unmatched": int(match.num_unmatched),
        }

    return {
        "schema": CORPUS_SCHEMA,
        "scenario": config.to_dict(),
        "k": CORPUS_K,
        "expected": {
            "bonus": result.bonus.as_dict(),
            "raw_bonus": result.raw_bonus.as_dict(),
            "sample_size": int(result.sample_size),
            "disparity_norm_before": float(
                calculator.disparity(table, base_scores, CORPUS_K).norm
            ),
            "disparity_norm_after": float(
                calculator.disparity(table, compensated_scores, CORPUS_K).norm
            ),
            "ddp_before": float(
                ddp(table, base_scores, attributes, include_complements=True)
            ),
            "ddp_after": float(
                ddp(table, compensated_scores, attributes, include_complements=True)
            ),
            "capacities": [int(c) for c in market.capacities],
            "matches": matches,
        },
    }


def write_corpus(
    directory: Path | str, configs: Sequence[ScenarioConfig] | None = None
) -> list[Path]:
    """Emit one golden JSON per scenario into ``directory``; return the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for config in configs if configs is not None else corpus_scenarios():
        payload = build_instance(config)
        path = directory / f"{config.name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def load_corpus(directory: Path | str) -> list[dict]:
    """Read every committed instance in ``directory``, sorted by file name."""
    directory = Path(directory)
    payloads = []
    for path in sorted(directory.glob("*.json")):
        payload = json.loads(path.read_text())
        if payload.get("schema") != CORPUS_SCHEMA:
            raise ValueError(
                f"{path.name}: corpus schema {payload.get('schema')!r} != {CORPUS_SCHEMA}"
            )
        payloads.append(payload)
    return payloads
