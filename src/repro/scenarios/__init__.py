"""Scenario simulation harness: Monte-Carlo market-shape stress engine.

The harness stresses the whole stack — cohort generation, DCA fits (serial,
process-pool, and row-sharded), and all three deferred-acceptance engines on
both proposing sides — across synthetic market shapes far beyond the two
calibrated cohorts: heavy-tailed capacities, clustered preferences,
intersectional protected groups, tiny districts, zero/oversized-capacity
mixes, and adversarial tie storms.

Three layers:

* :mod:`~repro.scenarios.configs` — declarative, JSON-serializable,
  fully seeded :class:`ScenarioConfig` dataclasses (six built-ins);
* :mod:`~repro.scenarios.market` / :mod:`~repro.scenarios.driver` — realize
  a config as a concrete market and sweep scenario x engine x objective x
  executor into fairness/runtime envelopes with identity verdicts;
* :mod:`~repro.scenarios.corpus` — emit small golden instances under
  ``tests/data/scenarios/`` for the tier-1 differential suites.

Run the sweep from the CLI with ``repro-experiments run scenarios``.
"""

from .configs import (
    AttributeSpec,
    CapacitySpec,
    PreferenceSpec,
    ScenarioConfig,
    builtin_scenarios,
    get_scenario,
)
from .corpus import (
    CORPUS_K,
    CORPUS_SCHEMA,
    build_instance,
    corpus_fit_config,
    corpus_scenarios,
    load_corpus,
    write_corpus,
)
from .driver import DEFAULT_FIT_CONFIG, OBJECTIVES, ScenarioEnvelope, run_scenario
from .market import ScenarioMarket, generate_market

__all__ = [
    "AttributeSpec",
    "CapacitySpec",
    "PreferenceSpec",
    "ScenarioConfig",
    "builtin_scenarios",
    "get_scenario",
    "ScenarioMarket",
    "generate_market",
    "ScenarioEnvelope",
    "run_scenario",
    "OBJECTIVES",
    "DEFAULT_FIT_CONFIG",
    "CORPUS_K",
    "CORPUS_SCHEMA",
    "corpus_fit_config",
    "corpus_scenarios",
    "build_instance",
    "write_corpus",
    "load_corpus",
]
