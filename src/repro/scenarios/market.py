"""Turn a :class:`~repro.scenarios.configs.ScenarioConfig` into a concrete market.

One call to :func:`generate_market` produces everything a stress cell needs:

* a population :class:`~repro.tabular.Table` with the protected attributes
  (drawn through the same :class:`~repro.datasets.GaussianCopula` machinery
  as the calibrated cohorts), their intersections, and a 0-100 ``score``
  column;
* the per-school ``(num_schools, num_students)`` score plane (shared score
  plus per-school screening noise);
* school capacities realizing the config's shape (even, Zipf-tailed, or
  zero/oversized mixes);
* padded ``int64`` student preference matrices (popularity or clustered
  model).

Determinism contract: every random value derives from one
``np.random.default_rng((config.seed, trial))`` stream consumed in a fixed
order, so ``(config, trial)`` is a complete description of the market —
the property the golden corpus and the differential suites rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import GaussianCopula, binary_marginal, uniform_marginal
from ..ranking import ColumnScore, ScoreFunction
from ..tabular import Table
from .configs import ScenarioConfig

__all__ = ["ScenarioMarket", "generate_market"]


@dataclass(frozen=True)
class ScenarioMarket:
    """One realized market: population, scores, seats, and preferences."""

    config: ScenarioConfig
    trial: int
    table: Table
    fairness_attributes: tuple[str, ...]
    base_scores: np.ndarray
    score_plane: np.ndarray
    capacities: tuple[int, ...]
    preferences: np.ndarray

    @property
    def num_students(self) -> int:
        return self.table.num_rows

    @property
    def num_schools(self) -> int:
        return len(self.capacities)

    def score_function(self) -> ScoreFunction:
        """The ranking function DCA compensates: the ``score`` column itself."""
        return ColumnScore("score")


def _build_copula(config: ScenarioConfig) -> GaussianCopula:
    """Latent dimensions: one per attribute, plus a trailing ability latent."""
    marginals = [
        binary_marginal(spec.name, spec.prevalence) for spec in config.attributes
    ]
    marginals.append(uniform_marginal("ability", 0.0, 1.0))  # transform unused
    size = len(marginals)
    correlation = np.eye(size)
    index = {spec.name: i for i, spec in enumerate(config.attributes)}
    for a, b, rho in config.attribute_correlations:
        correlation[index[a], index[b]] = rho
        correlation[index[b], index[a]] = rho
    for spec in config.attributes:
        correlation[index[spec.name], size - 1] = spec.score_correlation
        correlation[size - 1, index[spec.name]] = spec.score_correlation
    return GaussianCopula(marginals, correlation)


def _quantize(values: np.ndarray, levels: int) -> np.ndarray:
    """Crush ``values`` into at most ``levels`` distinct scores (tie storms).

    Levels are evenly spaced over the observed range and mapped back onto a
    0-100 scale, so a tie-storm market still speaks "points out of 100".
    """
    low = float(values.min())
    span = float(values.max()) - low
    if span <= 0.0:
        return np.zeros_like(values)
    buckets = np.minimum((values - low) / span * levels, levels - 1).astype(np.int64)
    return buckets.astype(float) * (100.0 / (levels - 1))


def _capacities(config: ScenarioConfig) -> tuple[int, ...]:
    """Seat counts per school, realizing the capacity shape deterministically."""
    spec = config.capacities
    num_ordinary = config.num_schools - spec.zero_schools - spec.oversized_schools
    total = max(num_ordinary, int(round(spec.seat_fraction * config.num_students)))
    if spec.tail_exponent is None:
        seats, remainder = divmod(total, num_ordinary)
        ordinary = [seats + (1 if i < remainder else 0) for i in range(num_ordinary)]
    else:
        weights = 1.0 / np.arange(1, num_ordinary + 1, dtype=float) ** spec.tail_exponent
        weights /= weights.sum()
        ordinary = list(np.maximum(1, np.floor(weights * total).astype(int)))
        # Remainder (possibly negative after the >=1 floor) lands on the
        # magnet school, which always dominates the Zipf weights.
        ordinary[0] = max(1, ordinary[0] + total - int(np.sum(ordinary)))
    capacities = (
        [0] * spec.zero_schools
        + ordinary
        + [config.num_students] * spec.oversized_schools
    )
    return tuple(int(c) for c in capacities)


def _preferences(
    config: ScenarioConfig, table: Table, rng: np.random.Generator
) -> np.ndarray:
    """Padded ``(num_students, list_length)`` preference matrix."""
    spec = config.preferences
    n = config.num_students
    m = config.num_schools
    list_length = min(spec.list_length, m)
    popularity = rng.normal(0.0, spec.popularity_spread, size=m)
    utilities = popularity + rng.gumbel(0.0, 1.0, size=(n, m))
    if spec.model == "clustered":
        affinity = rng.normal(0.0, spec.cluster_affinity, size=(spec.clusters, m))
        assignment = rng.integers(0, spec.clusters, size=n)
        if spec.alignment is not None:
            # Members of the aligned group mostly share cluster 0, so their
            # preference lists collide — demographics-correlated demand.
            members = table.numeric(spec.alignment) > 0.5
            pulled = rng.uniform(size=n) < 0.8
            assignment = np.where(members & pulled, 0, assignment)
        utilities = utilities + affinity[assignment]
    return np.argsort(-utilities, axis=1)[:, :list_length].astype(np.int64)


def generate_market(config: ScenarioConfig, trial: int = 0) -> ScenarioMarket:
    """Realize ``config`` as a concrete market for one Monte-Carlo trial."""
    config.validate()
    if trial < 0:
        raise ValueError(f"trial must be non-negative, got {trial}")
    rng = np.random.default_rng((config.seed, trial))
    n = config.num_students

    copula = _build_copula(config)
    columns: dict[str, np.ndarray] = {
        spec.name: np.empty(n, dtype=float) for spec in config.attributes
    }
    latent = copula.latent_and_sample_into(n, rng, columns)
    ability = latent[:, -1]

    penalty = np.zeros(n)
    for spec in config.attributes:
        penalty += spec.score_penalty * columns[spec.name]
    score_latent = ability - penalty + rng.normal(0.0, config.score_noise, size=n)
    base_scores = np.clip(60.0 + 12.0 * score_latent, 0.0, 100.0)
    if config.tie_levels is not None:
        base_scores = _quantize(base_scores, config.tie_levels)

    for a, b in config.intersections:
        columns[f"{a}_x_{b}"] = columns[a] * columns[b]
    columns["score"] = base_scores
    table = Table(columns)

    noise_scale = config.screening_noise * max(float(np.std(base_scores)), 1e-9)
    plane = base_scores[np.newaxis, :] + rng.normal(
        0.0, noise_scale, size=(config.num_schools, n)
    )
    if config.tie_levels is not None:
        plane = _quantize(plane, config.tie_levels)

    return ScenarioMarket(
        config=config,
        trial=int(trial),
        table=table,
        fairness_attributes=config.fairness_attributes,
        base_scores=base_scores,
        score_plane=plane,
        capacities=_capacities(config),
        preferences=_preferences(config, table, rng),
    )
