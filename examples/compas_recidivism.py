"""COMPAS case study: compensating a black-box risk score's disparate impact.

The COMPAS decile score ranks defendants by predicted recidivism risk (lower
deciles are better).  Its internals are proprietary, but bonus points can be
applied directly to the published deciles: DCA fits per-race compensations
that bring the racial composition of the "lowest-risk k%" set in line with
the population, and — pointed at a different objective — narrows the gap in
false positive rates.

Run with::

    python examples/compas_recidivism.py
"""

from __future__ import annotations

from repro import DCA, DCAConfig, DisparityCalculator
from repro.core import FalsePositiveRateObjective, LogDiscountedDisparityObjective
from repro.datasets import (
    COMPAS_RACE_ATTRIBUTES,
    compas_release_ranking_function,
    load_compas,
)
from repro.metrics import group_false_positive_rates


def print_disparity(label: str, disparity) -> None:
    print(f"{label}:")
    for name, value in disparity.as_dict().items():
        print(f"  {name:>24}: {value:+.3f}")


def main() -> None:
    dataset = load_compas()
    table = dataset.table
    ranking = compas_release_ranking_function()  # lower decile = better, so negated
    base_scores = ranking.scores(table)
    k = 0.2  # consider the 20% judged lowest-risk

    calculator = DisparityCalculator(COMPAS_RACE_ATTRIBUTES).fit(table)
    print_disparity("Baseline race disparity of the decile scores",
                    calculator.disparity(table, base_scores, k))

    # 1. Disparity compensation with a single log-discounted bonus vector.
    config = DCAConfig(seed=11, sample_size=1000)
    dca = DCA(
        COMPAS_RACE_ATTRIBUTES,
        ranking,
        k=0.5,
        objective=LogDiscountedDisparityObjective(COMPAS_RACE_ATTRIBUTES),
        config=config,
    )
    fitted = dca.fit(table)
    print("\nLog-discounted bonus points (added to the negated decile score):")
    for name, points in fitted.as_dict().items():
        print(f"  {name:>24}: {points:g}")
    compensated = fitted.bonus.apply(table, base_scores)
    print()
    print_disparity("Race disparity after bonus points", calculator.disparity(table, compensated, k))

    # 2. Equalized-odds flavour: minimize false-positive-rate gaps instead.
    fpr_objective = FalsePositiveRateObjective(COMPAS_RACE_ATTRIBUTES, "two_year_recid")
    fpr_dca = DCA(COMPAS_RACE_ATTRIBUTES, ranking, k=k, objective=fpr_objective, config=config)
    fpr_fit = fpr_dca.fit(table)
    fpr_scores = fpr_fit.bonus.apply(table, base_scores)

    before = group_false_positive_rates(table, base_scores, COMPAS_RACE_ATTRIBUTES, "two_year_recid", k)
    after = group_false_positive_rates(table, fpr_scores, COMPAS_RACE_ATTRIBUTES, "two_year_recid", k)
    print("\nFalse positive rate by race (share of non-re-offenders flagged high-risk):")
    print(f"  {'group':>24}  before   after")
    for name in COMPAS_RACE_ATTRIBUTES:
        print(f"  {name:>24}  {before[name]:.3f}   {after[name]:.3f}")

    print(
        "\nNote: as in the paper, this case study is not an endorsement of COMPAS; it shows "
        "that the compensation works even when the underlying ranking is a black box."
    )


if __name__ == "__main__":
    main()
