"""Choosing bonus points when the selection size is unknown.

Schools in a matching market do not know how far down their ranked list they
will admit.  This example contrasts the three strategies of Figure 4:

1. optimize for one assumed k (great at that k, worse elsewhere),
2. optimize the log-discounted disparity over all k (good everywhere),
3. re-optimize per k once k is revealed (best possible, needs the true k).

Run with::

    python examples/unknown_selection_size.py
"""

from __future__ import annotations

from repro import DCA, DCAConfig, DisparityCalculator
from repro.core import LogDiscountedDisparityObjective
from repro.datasets import (
    SCHOOL_FAIRNESS_ATTRIBUTES,
    load_school_cohorts,
    school_admission_rubric,
)

K_VALUES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5)


def main() -> None:
    train, test = load_school_cohorts(num_students=20_000)
    rubric = school_admission_rubric()
    config = DCAConfig(seed=13)
    calculator = DisparityCalculator(SCHOOL_FAIRNESS_ATTRIBUTES).fit(test.table)
    base_scores = rubric.scores(test.table)

    # Strategy 1: assume the school will take 5%.
    assume_5 = DCA(SCHOOL_FAIRNESS_ATTRIBUTES, rubric, k=0.05, config=config).fit(train.table)
    scores_5 = assume_5.bonus.apply(test.table, base_scores)

    # Strategy 2: log-discounted over the whole top half of the ranking.
    discounted = DCA(
        SCHOOL_FAIRNESS_ATTRIBUTES,
        rubric,
        k=0.5,
        objective=LogDiscountedDisparityObjective(SCHOOL_FAIRNESS_ATTRIBUTES),
        config=config,
    ).fit(train.table)
    scores_discounted = discounted.bonus.apply(test.table, base_scores)

    print("Bonus vector assuming k=5%:      ", assume_5.as_dict())
    print("Bonus vector, log-discounted:    ", discounted.as_dict())

    header = f"{'k':>5} | {'baseline':>9} | {'assume 5%':>9} | {'log-disc':>9} | {'refit per k':>11}"
    print("\nDisparity norm on the test cohort:")
    print(header)
    print("-" * len(header))
    for k in K_VALUES:
        refit = DCA(SCHOOL_FAIRNESS_ATTRIBUTES, rubric, k=k, config=config).fit(train.table)
        scores_refit = refit.bonus.apply(test.table, base_scores)
        print(
            f"{k:>5.2f} | "
            f"{calculator.disparity(test.table, base_scores, k).norm:>9.3f} | "
            f"{calculator.disparity(test.table, scores_5, k).norm:>9.3f} | "
            f"{calculator.disparity(test.table, scores_discounted, k).norm:>9.3f} | "
            f"{calculator.disparity(test.table, scores_refit, k).norm:>11.3f}"
        )

    print(
        "\nThe assumed-k vector is excellent at 5% but drifts at larger k; the log-discounted "
        "vector is a good compromise everywhere; refitting once k is known is best but "
        "requires information a matching market does not provide in advance."
    )


if __name__ == "__main__":
    main()
