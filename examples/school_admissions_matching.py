"""End-to-end school admissions: bonus points inside a deferred-acceptance match.

The paper's motivating scenario is the NYC high-school match: each school
ranks its applicants with its own rubric, students rank schools, and a
deferred-acceptance algorithm computes the assignment.  Because a school does
not know in advance how far down its list it will admit, bonus points are
fitted with the **log-discounted** objective.

The pipeline itself is a first-class experiment
(:mod:`repro.experiments.matching_admissions`, ``repro-experiments run
matching``): per-school bonus vectors batched through ``DCA.fit_many``, a
district of screened schools with noisy rubrics, and the heap-engine
deferred-acceptance match.  This example runs it on a small district and
prints the resulting tables.

Run with::

    python examples/school_admissions_matching.py
"""

from __future__ import annotations

from repro.experiments import matching_admissions

NUM_SCHOOLS = 6
NUM_APPLICANTS = 6_000


def main() -> None:
    result = matching_admissions.run(
        num_students=NUM_APPLICANTS, num_schools=NUM_SCHOOLS, list_length=4
    )
    print(result.format())

    # The same pipeline with schools proposing (the school-optimal stable
    # matching) on the vectorized round-based engine: comparing the two
    # rank-of-match tables shows what the choice of proposing side costs
    # students.
    school_optimal = matching_admissions.run(
        num_students=NUM_APPLICANTS,
        num_schools=NUM_SCHOOLS,
        list_length=4,
        engine="vector",
        proposing="schools",
    )
    print()
    print(school_optimal.format())


if __name__ == "__main__":
    main()
