"""End-to-end school admissions: bonus points inside a deferred-acceptance match.

The paper's motivating scenario is the NYC high-school match: each school
ranks its applicants with its own rubric, students rank schools, and a
deferred-acceptance algorithm computes the assignment.  Because a school does
not know in advance how far down its list it will admit, bonus points are
fitted with the **log-discounted** objective.

This example simulates a small district with several screened schools, fits
one bonus vector per school on last year's cohort, runs the match with and
without the bonus points, and compares the demographics of each school's
admitted class.

Run with::

    python examples/school_admissions_matching.py
"""

from __future__ import annotations

import numpy as np

from repro import DCA, DCAConfig
from repro.core import LogDiscountedDisparityObjective
from repro.datasets import (
    SCHOOL_FAIRNESS_ATTRIBUTES,
    load_school_cohorts,
    school_admission_rubric,
)
from repro.matching import deferred_acceptance, generate_student_preferences

NUM_SCHOOLS = 6
SEATS_PER_SCHOOL = 150
NUM_APPLICANTS = 6_000


def admitted_demographics(table, roster) -> dict[str, float]:
    """Share of each fairness group among the admitted students."""
    if not roster:
        return {name: 0.0 for name in SCHOOL_FAIRNESS_ATTRIBUTES}
    admitted = table.take(np.asarray(roster))
    return {name: round(float(np.mean(admitted.numeric(name))), 3) for name in SCHOOL_FAIRNESS_ATTRIBUTES}


def run_match(table, school_scores) -> list[dict[str, float]]:
    """Run deferred acceptance and report each school's admitted demographics."""
    rng = np.random.default_rng(11)
    preferences = generate_student_preferences(
        table.num_rows, NUM_SCHOOLS, list_length=4, rng=rng
    )
    capacities = [SEATS_PER_SCHOOL] * NUM_SCHOOLS
    match = deferred_acceptance(preferences, school_scores, capacities)
    return [admitted_demographics(table, match.roster(s)) for s in range(NUM_SCHOOLS)]


def main() -> None:
    train, test = load_school_cohorts(num_students=NUM_APPLICANTS)
    rubric = school_admission_rubric()

    # Fit one log-discounted bonus vector on last year's data (shared by all
    # schools here; each school could fit its own against its own rubric).
    objective = LogDiscountedDisparityObjective(SCHOOL_FAIRNESS_ATTRIBUTES)
    dca = DCA(SCHOOL_FAIRNESS_ATTRIBUTES, rubric, k=0.5, objective=objective, config=DCAConfig(seed=3))
    fitted = dca.fit(train.table)
    print("Log-discounted bonus points:", fitted.as_dict())

    base_scores = rubric.scores(test.table)
    compensated = fitted.bonus.apply(test.table, base_scores)
    population = {
        name: round(float(np.mean(test.table.numeric(name))), 3)
        for name in SCHOOL_FAIRNESS_ATTRIBUTES
    }
    print("\nPopulation shares:", population)

    # Every school uses the same rubric in this example; the per-school score
    # lists are what deferred acceptance consumes.
    uncorrected = run_match(test.table, [list(base_scores)] * NUM_SCHOOLS)
    corrected = run_match(test.table, [list(compensated)] * NUM_SCHOOLS)

    print("\nAdmitted-class demographics per school (uncorrected rubric):")
    for school, shares in enumerate(uncorrected):
        print(f"  school {school}: {shares}")
    print("\nAdmitted-class demographics per school (with bonus points):")
    for school, shares in enumerate(corrected):
        print(f"  school {school}: {shares}")

    print(
        "\nWith bonus points the admitted classes sit much closer to the population shares, "
        "even though the admission cut-off of each school was not known when the bonus "
        "points were fitted."
    )


if __name__ == "__main__":
    main()
