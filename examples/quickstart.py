"""Quickstart: fit explainable bonus points for a biased school-admission rubric.

Run with::

    python examples/quickstart.py

The script generates a synthetic NYC-style student cohort, measures the
disparity of the uncorrected admission rubric at a 5% selection rate, fits
DCA bonus points on a training year, and shows how the bonus points transfer
to the following (test) year — the end-to-end workflow of the paper's
Table I.
"""

from __future__ import annotations

from repro import DCA, DCAConfig, DisparityCalculator
from repro.datasets import (
    SCHOOL_FAIRNESS_ATTRIBUTES,
    load_school_cohorts,
    school_admission_rubric,
)


def main() -> None:
    # 1. Data: two cohorts (training year and test year) from the same
    #    distribution.  Use a reduced size so the example runs in seconds.
    train, test = load_school_cohorts(num_students=20_000)
    rubric = school_admission_rubric()
    k = 0.05  # the school admits the top 5% of applicants

    # 2. How disparate is the uncorrected rubric?
    calculator = DisparityCalculator(SCHOOL_FAIRNESS_ATTRIBUTES).fit(train.table)
    base_scores = rubric.scores(train.table)
    baseline = calculator.disparity(train.table, base_scores, k)
    print("Baseline disparity (training year):")
    for name, value in baseline.as_dict().items():
        print(f"  {name:>12}: {value:+.3f}")

    # 3. Fit bonus points with DCA.
    dca = DCA(SCHOOL_FAIRNESS_ATTRIBUTES, rubric, k=k, config=DCAConfig(seed=7))
    result = dca.fit(train.table)
    print("\nFitted bonus points (published before applications are due):")
    for name, points in result.as_dict().items():
        print(f"  {name:>12}: {points:g} points")
    print(f"  fitted on samples of {result.sample_size} students in {result.elapsed_seconds:.2f}s")

    # 4. Apply the bonus points to the *next* year's applicants and re-check.
    test_calculator = DisparityCalculator(SCHOOL_FAIRNESS_ATTRIBUTES).fit(test.table)
    test_base = rubric.scores(test.table)
    compensated = result.bonus.apply(test.table, test_base)
    after = test_calculator.disparity(test.table, compensated, k)
    print("\nDisparity on the following year after applying the bonus points:")
    for name, value in after.as_dict().items():
        print(f"  {name:>12}: {value:+.3f}")

    # 5. Explain one applicant's compensated score, component by component.
    explanation = result.bonus.explain(test.table, test_base, row=0)
    print("\nScore breakdown for one applicant (transparency artefact):")
    for part, value in explanation.items():
        print(f"  {part:>20}: {value:.2f}")


if __name__ == "__main__":
    main()
