"""Plugging a custom fairness metric into DCA.

Section VI-C5 notes that DCA can minimize any fairness signal that is a
vector with one dimension per fairness attribute, bounded in [-1, 1], with 0
meaning fair and negative values meaning the group needs compensation.  This
example defines such a metric from scratch — a *selection-rate ratio gap* —
and hands it to DCA unchanged.

Run with::

    python examples/custom_fairness_metric.py
"""

from __future__ import annotations

import numpy as np

from repro import DCA, DCAConfig
from repro.core import DisparityResult, FairnessObjective
from repro.datasets import (
    SCHOOL_FAIRNESS_ATTRIBUTES,
    load_school_cohorts,
    school_admission_rubric,
)
from repro.ranking import selection_mask


class SelectionRateRatioGap(FairnessObjective):
    """1 − (group selection rate / overall selection rate), clipped to [-1, 1].

    Zero when the group is selected at the overall rate; negative when the
    group is selected *more* often than average (over-compensated); positive…
    wait — DCA's convention is the opposite, so the sign is flipped below:
    the value is **negative when the group is under-selected**, which makes
    the standard update ``B ← B − L·D`` add points to that group.
    """

    def evaluate(self, table, scores, k):
        selected = selection_mask(np.asarray(scores, dtype=float), k)
        overall_rate = float(selected.mean())
        values = np.zeros(len(self.attribute_names))
        for i, name in enumerate(self.attribute_names):
            membership = table.numeric(name) > 0.5
            if membership.sum() == 0 or overall_rate == 0.0:
                continue
            group_rate = float(selected[membership].mean())
            values[i] = np.clip(group_rate / overall_rate - 1.0, -1.0, 1.0)
        return DisparityResult(self.attribute_names, values)


def main() -> None:
    binary_attributes = ("low_income", "ell", "special_ed")
    train, test = load_school_cohorts(num_students=20_000)
    rubric = school_admission_rubric()
    k = 0.05

    objective = SelectionRateRatioGap(binary_attributes)
    dca = DCA(binary_attributes, rubric, k=k, objective=objective, config=DCAConfig(seed=5))
    fitted = dca.fit(train.table)
    print("Bonus points minimizing the selection-rate ratio gap:", fitted.as_dict())

    base = rubric.scores(test.table)
    compensated = fitted.bonus.apply(test.table, base)
    before = objective.evaluate(test.table, base, k)
    after = objective.evaluate(test.table, compensated, k)
    print("\nSelection-rate ratio gap per group (0 = parity):")
    print(f"  {'group':>12}  before   after")
    for name in binary_attributes:
        print(f"  {name:>12}  {before[name]:+.3f}   {after[name]:+.3f}")

    # The same fitted points still behave well under the paper's disparity metric.
    from repro import DisparityCalculator

    calculator = DisparityCalculator(SCHOOL_FAIRNESS_ATTRIBUTES).fit(test.table)
    print("\nDisparity norm before:", round(calculator.disparity(test.table, base, k).norm, 3))
    print("Disparity norm after: ", round(calculator.disparity(test.table, compensated, k).norm, 3))


if __name__ == "__main__":
    main()
