"""Row-sharded single-fit execution: the map-reduce objective contract.

Two layers are pinned here:

* the :class:`~repro.core.objectives.CompiledObjective` map-reduce contract —
  ``merge(partials)`` must be bitwise identical to ``evaluate`` for every
  built-in objective, for any partition of the sample into shards;
* the :class:`~repro.core.parallel.ShardedFitPlane` end to end —
  ``DCA.fit(row_workers=N)`` must be bitwise identical to the in-process
  serial fit on the school and COMPAS cohorts (the acceptance setting), for
  any worker count and shard geometry, composing with ``fit_many``, RNG
  batching, and the table-engine fallback.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    DCA,
    DCAConfig,
    DisparateImpactObjective,
    DisparityObjective,
    DisparityResult,
    ExposureGapObjective,
    FairnessObjective,
    FalsePositiveRateObjective,
    FitSpec,
    LogDiscountedDisparityObjective,
    PlaneCache,
    SampleStream,
    SharedColumnStore,
)
from repro.datasets import compas_release_ranking_function
from repro.ranking import ColumnScore, selection_mask
from repro.tabular import Table

FAST = DCAConfig(seed=17, iterations=20, refinement_iterations=30, sample_size=400)


def _assert_fit_identical(serial, sharded) -> None:
    assert np.array_equal(serial.raw_bonus.values, sharded.raw_bonus.values)
    assert np.array_equal(serial.core_bonus.values, sharded.core_bonus.values)
    assert np.array_equal(serial.bonus.values, sharded.bonus.values)
    assert serial.sample_size == sharded.sample_size
    for trace_s, trace_p in zip(serial.traces, sharded.traces):
        assert trace_s.phase == trace_p.phase
        assert np.array_equal(trace_s.bonus_history, trace_p.bonus_history)
        assert np.array_equal(trace_s.objective_norms, trace_p.objective_norms)


# ----------------------------------------------------------------------
# The map-reduce contract at the objective level
# ----------------------------------------------------------------------
def _contract_population(n: int = 3000, seed: int = 9) -> Table:
    rng = np.random.default_rng(seed)
    group_a = (rng.uniform(size=n) < 0.25).astype(float)
    group_b = (rng.uniform(size=n) < 0.6).astype(float)
    label = (rng.uniform(size=n) < 0.4).astype(float)
    score = rng.normal(10.0, 2.0, size=n) - 1.5 * group_a - 0.5 * group_b
    return Table({"score": score, "group_a": group_a, "group_b": group_b, "label": label})


OBJECTIVES = [
    pytest.param(lambda: DisparityObjective(("group_a", "group_b")), id="disparity"),
    pytest.param(
        lambda: LogDiscountedDisparityObjective(("group_a", "group_b")), id="log-discounted"
    ),
    pytest.param(lambda: DisparateImpactObjective(("group_a", "group_b")), id="disparate-impact"),
    pytest.param(
        lambda: FalsePositiveRateObjective(("group_a", "group_b"), label_column="label"),
        id="fpr",
    ),
    pytest.param(lambda: ExposureGapObjective(("group_a", "group_b")), id="exposure"),
]


class TestMapReduceContract:
    """merge(partials) == evaluate, bitwise, for any shard split."""

    @pytest.mark.parametrize("make_objective", OBJECTIVES)
    @pytest.mark.parametrize("num_shards", [1, 2, 5])
    def test_merge_of_partials_matches_evaluate(self, make_objective, num_shards):
        table = _contract_population()
        objective = make_objective().fit(table)
        compiled = objective.compile(table)
        assert compiled.shard_fields() is not None
        rng = np.random.default_rng(4)
        indices = rng.choice(table.num_rows, size=500, replace=False)
        scores = rng.normal(size=500)
        expected = compiled.evaluate(indices, scores, 0.2)

        # Split the sample into contiguous position runs (shard-rank order).
        splits = np.array_split(np.arange(indices.size), num_shards)
        accumulators = [
            compiled.partial(indices[pos], scores[pos], 0.2) for pos in splits
        ]
        merged = compiled.merge(accumulators, 0.2)
        assert np.array_equal(merged, expected)

    @pytest.mark.parametrize("make_objective", OBJECTIVES)
    def test_partial_emits_declared_fields(self, make_objective):
        table = _contract_population()
        objective = make_objective().fit(table)
        compiled = objective.compile(table)
        fields = compiled.shard_fields()
        indices = np.arange(40)
        accumulator = compiled.partial(indices, np.zeros(40), 0.2)
        assert set(accumulator) == {"scores", *fields}
        for name, (dtype, columns) in fields.items():
            block = accumulator[name]
            assert block.dtype == np.dtype(dtype)
            expected_shape = (40,) if columns == 0 else (40, columns)
            assert block.shape == expected_shape

    def test_merge_rejects_empty_accumulator_list(self):
        table = _contract_population()
        compiled = DisparityObjective(("group_a",)).fit(table).compile(table)
        with pytest.raises(ValueError, match="at least one shard"):
            compiled.merge([], 0.2)

    def test_table_fallback_declares_non_support(self):
        table = _contract_population()
        objective = _TableOnlyObjective(("group_a",))
        compiled = objective.compile(table)
        assert compiled.shard_fields() is None
        with pytest.raises(NotImplementedError, match="table-path"):
            compiled.partial(np.arange(5), np.zeros(5), 0.2)
        with pytest.raises(NotImplementedError, match="table-path"):
            compiled.merge([{}], 0.2)


class _TableOnlyObjective(FairnessObjective):
    """A custom objective with no compiled form: exercises the fallback path."""

    def evaluate(self, table, scores, k):
        mask = selection_mask(np.asarray(scores, dtype=float), k)
        values = np.zeros(len(self.attribute_names))
        for i, name in enumerate(self.attribute_names):
            member = table.numeric(name) > 0.5
            if member.any():
                values[i] = float(mask[member].mean() - mask.mean())
        return DisparityResult(self.attribute_names, values)


# ----------------------------------------------------------------------
# End-to-end sharded fits: the acceptance cohorts
# ----------------------------------------------------------------------
class TestShardedFitSchool:
    """The acceptance pin: sharded == serial on the school cohort, bitwise."""

    def test_row_workers_bitwise_identical(self, school_train, rubric, school_attributes):
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        serial = dca.fit(school_train.table)
        sharded = dca.fit(school_train.table, row_workers=2)
        _assert_fit_identical(serial, sharded)

    def test_shard_geometry_is_irrelevant(self, school_train, rubric, school_attributes):
        """Odd shard sizes (more shards than workers) change nothing."""
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        serial = dca.fit(school_train.table)
        sharded = dca.fit(school_train.table, row_workers=2, shard_rows=777)
        _assert_fit_identical(serial, sharded)

    def test_config_carried_row_workers(self, school_train, rubric, school_attributes):
        config = replace(FAST, row_workers=2, shard_rows=1500)
        serial = DCA(school_attributes, rubric, k=0.05, config=FAST).fit(school_train.table)
        sharded = DCA(school_attributes, rubric, k=0.05, config=config).fit(school_train.table)
        _assert_fit_identical(serial, sharded)

    def test_log_discounted_objective_sharded(self, school_train, rubric, school_attributes):
        objective = LogDiscountedDisparityObjective(school_attributes)
        dca = DCA(school_attributes, rubric, k=0.3, objective=objective, config=FAST)
        serial = dca.fit(school_train.table)
        sharded = dca.fit(school_train.table, row_workers=3)
        _assert_fit_identical(serial, sharded)

    def test_table_engine_falls_back_in_process(self, school_train, rubric, school_attributes):
        """engine="table" has no array plane: row_workers degrades gracefully."""
        config = replace(FAST, engine="table")
        dca = DCA(school_attributes, rubric, k=0.05, config=config)
        serial = dca.fit(school_train.table)
        sharded = dca.fit(school_train.table, row_workers=2)
        _assert_fit_identical(serial, sharded)

    def test_custom_table_objective_falls_back(self, school_train, rubric):
        objective = _TableOnlyObjective(("low_income",))
        dca = DCA(("low_income",), rubric, k=0.05, objective=objective, config=FAST)
        serial = dca.fit(school_train.table)
        sharded = dca.fit(school_train.table, row_workers=2)
        _assert_fit_identical(serial, sharded)


class TestShardedFitCompas:
    """The second acceptance cohort: COMPAS release ranking, race attributes."""

    CONFIG = DCAConfig(seed=23, iterations=20, refinement_iterations=30, sample_size=500)

    def test_row_workers_bitwise_identical(self, compas_dataset):
        dca = DCA(
            compas_dataset.race_attributes,
            compas_release_ranking_function(),
            k=0.5,
            config=self.CONFIG,
        )
        serial = dca.fit(compas_dataset.table)
        sharded = dca.fit(compas_dataset.table, row_workers=2)
        _assert_fit_identical(serial, sharded)

    def test_fpr_objective_sharded(self, compas_dataset):
        objective = FalsePositiveRateObjective(
            compas_dataset.race_attributes, label_column="two_year_recid"
        )
        dca = DCA(
            compas_dataset.race_attributes,
            compas_release_ranking_function(),
            k=0.5,
            objective=objective,
            config=self.CONFIG,
        )
        serial = dca.fit(compas_dataset.table)
        sharded = dca.fit(compas_dataset.table, row_workers=2)
        _assert_fit_identical(serial, sharded)


class TestComposition:
    """Job sharding and row sharding compose."""

    def test_fit_many_row_workers_serial_executor(self, school_train, rubric, school_attributes):
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        plain = dca.fit_many(school_train.table, seeds=(1, 2))
        sharded = dca.fit_many(school_train.table, seeds=(1, 2), row_workers=2)
        for left, right in zip(plain, sharded):
            _assert_fit_identical(left.result, right.result)

    def test_fit_many_row_workers_preserves_caller_specs(
        self, school_train, rubric, school_attributes
    ):
        """The batch-level override must not leak into BatchFitResult.spec."""
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        specs = [FitSpec(seed=1, label="mine")]
        batch = dca.fit_many(school_train.table, specs=specs, row_workers=2)
        assert batch[0].spec is specs[0]
        assert specs[0].config is None  # caller's spec untouched

    def test_fit_many_row_workers_process_executor(self, school_train, rubric, school_attributes):
        """Row-sharded jobs run in the parent under executor="process"."""
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        plain = dca.fit_many(school_train.table, seeds=(1, 2))
        sharded = dca.fit_many(
            school_train.table, seeds=(1, 2), executor="process", row_workers=2
        )
        for left, right in zip(plain, sharded):
            _assert_fit_identical(left.result, right.result)

    def test_fit_many_row_workers_thread_executor(self, school_train, rubric, school_attributes):
        """Deadlock regression: row-sharded jobs must not fork from pool threads.

        Under ``executor="thread"`` a row-sharded job forks its worker pool
        only after the thread pool has drained — forking while sibling
        threads hold locks hangs the children.  A mixed batch (one plain
        job, one row-sharded via spec config) pins both the ordering and
        the bitwise results.
        """
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        specs = [
            FitSpec(seed=1, config=replace(FAST, row_workers=2)),
            FitSpec(seed=2),
        ]
        plain = dca.fit_many(school_train.table, specs=specs, executor="serial")
        threaded = dca.fit_many(
            school_train.table, specs=specs, executor="thread", max_workers=2
        )
        for left, right in zip(plain, threaded):
            _assert_fit_identical(left.result, right.result)


class TestSchedulerEdgeCases:
    """Degenerate shard geometries must neither deadlock nor drift (satellite).

    The doorbell scheduler sizes its pool as ``min(row_workers,
    num_shards)`` and its barriers as ``workers + 1`` parties, so the
    degenerate geometries — one giant shard, or more workers than shards —
    must collapse to small pools that still complete every step.
    """

    def test_single_shard_covers_population(self, school_train, rubric, school_attributes):
        """shard_rows >= num_rows: one shard, one worker, still bitwise."""
        num_rows = school_train.table.num_rows
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        serial = dca.fit(school_train.table)
        sharded = dca.fit(
            school_train.table, row_workers=4, shard_rows=num_rows + 1000
        )
        _assert_fit_identical(serial, sharded)

    def test_more_workers_than_shards(self, school_train, rubric, school_attributes):
        """row_workers > num_shards: the pool shrinks to the shard count."""
        num_rows = school_train.table.num_rows
        shard_rows = (num_rows + 1) // 2  # exactly two shards
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        serial = dca.fit(school_train.table)
        sharded = dca.fit(school_train.table, row_workers=8, shard_rows=shard_rows)
        _assert_fit_identical(serial, sharded)

    def test_scheduler_pool_sized_to_shards(self, school_train, rubric, school_attributes):
        """The degenerate pool really is degenerate: one shard -> one worker."""
        from repro.core.dca import _BonusSearch

        num_rows = school_train.table.num_rows
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        dca.objective.fit(school_train.table)
        search = _BonusSearch(school_train.table, rubric, dca.objective, 0.05, FAST)
        plane, owned = dca._build_sharded_plane(search, 4, num_rows + 1)
        assert owned
        try:
            assert plane.num_shards == 1
            assert len(plane.worker_pids()) == 1
        finally:
            plane.close()


class TestStepDispatchModes:
    """The doorbell scheduler and the legacy pool.map dispatch agree bitwise."""

    def test_default_dispatch_is_doorbell(self):
        assert DCAConfig().step_dispatch == "doorbell"

    def test_invalid_dispatch_rejected(self):
        with pytest.raises(ValueError, match="step_dispatch"):
            DCAConfig(step_dispatch="mailbox").validate()

    def test_pool_dispatch_matches_doorbell(self, school_train, rubric, school_attributes):
        doorbell = DCA(school_attributes, rubric, k=0.05, config=FAST)
        pool = DCA(
            school_attributes, rubric, k=0.05, config=replace(FAST, step_dispatch="pool")
        )
        left = doorbell.fit(school_train.table, row_workers=2)
        right = pool.fit(school_train.table, row_workers=2)
        _assert_fit_identical(left, right)

    def test_pool_dispatch_matches_serial(self, school_train, rubric, school_attributes):
        config = replace(FAST, step_dispatch="pool")
        dca = DCA(school_attributes, rubric, k=0.05, config=config)
        serial = dca.fit(school_train.table)
        sharded = dca.fit(school_train.table, row_workers=2)
        _assert_fit_identical(serial, sharded)


class TestPlaneCache:
    """Cross-job plane + pool reuse in fit_many (tentpole acceptance)."""

    def test_fit_many_builds_one_plane(self, school_train, rubric, school_attributes):
        """Same-signature jobs lease one plane: 1 built, N-1 cache hits."""
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        cache = PlaneCache()
        try:
            batch = dca.fit_many(
                school_train.table, seeds=(1, 2, 3), row_workers=2, plane_cache=cache
            )
            assert len(batch) == 3
            assert cache.planes_built == 1
            assert cache.hits == 2
            assert len(cache) == 1
        finally:
            cache.close()

    def test_pool_identity_across_fit_many_calls(
        self, school_train, rubric, school_attributes
    ):
        """A caller-owned cache keeps one resident pool across batches."""
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        cache = PlaneCache()
        try:
            first = dca.fit_many(
                school_train.table, seeds=(1, 2), row_workers=2, plane_cache=cache
            )
            (entry,) = cache._populations.values()
            ((_function, plane),) = entry[1].values()
            pids = plane.worker_pids()
            assert len(pids) == 2
            second = dca.fit_many(
                school_train.table, seeds=(1, 2), row_workers=2, plane_cache=cache
            )
            assert cache.planes_built == 1  # no new plane, no new pool
            assert plane.worker_pids() == pids
            for left, right in zip(first, second):
                _assert_fit_identical(left.result, right.result)
        finally:
            cache.close()

    def test_cached_fits_stay_bitwise_identical(
        self, school_train, rubric, school_attributes
    ):
        """Reusing a leased plane must not perturb results vs fresh planes."""
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        fresh = dca.fit_many(school_train.table, seeds=(1, 2, 3))
        cache = PlaneCache()
        try:
            cached = dca.fit_many(
                school_train.table, seeds=(1, 2, 3), row_workers=2, plane_cache=cache
            )
        finally:
            cache.close()
        for left, right in zip(fresh, cached):
            _assert_fit_identical(left.result, right.result)

    def test_distinct_keys_build_distinct_planes(
        self, school_train, rubric, school_attributes
    ):
        """Different k (hence sample geometry) cannot share a plane."""
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        cache = PlaneCache()
        try:
            dca.fit_many(
                school_train.table, ks=(0.05, 0.1), row_workers=2, plane_cache=cache
            )
            assert cache.planes_built == 2
            assert cache.hits == 0
        finally:
            cache.close()

    def test_internal_cache_closed_with_the_call(
        self, school_train, rubric, school_attributes
    ):
        """Without a caller cache, fit_many owns (and closes) its own."""
        import multiprocessing

        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        before = {child.pid for child in multiprocessing.active_children()}
        dca.fit_many(school_train.table, seeds=(1, 2), row_workers=2)
        survivors = {
            child.pid for child in multiprocessing.active_children()
        } - before
        assert not survivors  # the internal cache tore the pool down

    def test_plane_cache_close_is_idempotent(self, school_train, rubric, school_attributes):
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        cache = PlaneCache()
        dca.fit_many(school_train.table, seeds=(1,), row_workers=2, plane_cache=cache)
        cache.close()
        cache.close()
        assert len(cache) == 0


class TestRngBatching:
    """The opt-in per-phase RNG batching mode (satellite)."""

    def test_default_mode_is_per_step(self):
        assert DCAConfig().rng_batching == "per_step"

    def test_per_phase_is_deterministic(self, school_train, rubric, school_attributes):
        config = replace(FAST, rng_batching="per_phase")
        dca = DCA(school_attributes, rubric, k=0.05, config=config)
        first = dca.fit(school_train.table)
        second = dca.fit(school_train.table)
        _assert_fit_identical(first, second)

    def test_per_phase_differs_from_per_step(self, school_train, rubric, school_attributes):
        """The documented history break: batched draws change the stream."""
        per_step = DCA(school_attributes, rubric, k=0.05, config=FAST).fit(school_train.table)
        per_phase = DCA(
            school_attributes, rubric, k=0.05, config=replace(FAST, rng_batching="per_phase")
        ).fit(school_train.table)
        assert not np.array_equal(per_step.raw_bonus.values, per_phase.raw_bonus.values)

    def test_per_phase_engines_agree(self, school_train, rubric, school_attributes):
        """Both engines consume the batched stream identically."""
        results = {}
        for engine in ("array", "table"):
            config = replace(FAST, rng_batching="per_phase", engine=engine)
            results[engine] = DCA(school_attributes, rubric, k=0.05, config=config).fit(
                school_train.table
            )
        _assert_fit_identical(results["array"], results["table"])

    def test_per_phase_sharded_matches_serial(self, school_train, rubric, school_attributes):
        config = replace(FAST, rng_batching="per_phase")
        dca = DCA(school_attributes, rubric, k=0.05, config=config)
        serial = dca.fit(school_train.table)
        sharded = dca.fit(school_train.table, row_workers=2)
        _assert_fit_identical(serial, sharded)

    def test_draw_phase_indices_one_matrix(self):
        stream = SampleStream(1000, 50, rng=np.random.default_rng(3))
        matrix = stream.draw_phase_indices(7)
        assert matrix.shape == (7, 50)
        assert matrix.dtype == np.int64
        assert matrix.min() >= 0 and matrix.max() < 1000
        # Same seed, same single generator call -> same matrix.
        again = SampleStream(1000, 50, rng=np.random.default_rng(3)).draw_phase_indices(7)
        assert np.array_equal(matrix, again)

    def test_draw_phase_indices_full_population_consumes_no_rng(self):
        rng = np.random.default_rng(3)
        stream = SampleStream(40, 40, rng=rng)
        matrix = stream.draw_phase_indices(3)
        assert matrix.shape == (3, 40)
        assert np.array_equal(matrix[0], np.arange(40))
        # The RNG state is untouched, mirroring draw_indices.
        assert np.array_equal(
            rng.integers(0, 100, size=4), np.random.default_rng(3).integers(0, 100, size=4)
        )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="rng_batching"):
            DCAConfig(rng_batching="per_fit").validate()


class TestEagerValidation:
    """Zero/negative worker knobs fail fast, before any pool exists (satellite)."""

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_fit_rejects_bad_row_workers(self, school_train, rubric, school_attributes, bad):
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        with pytest.raises(ValueError, match="row_workers"):
            dca.fit(school_train.table, row_workers=bad)

    def test_fit_rejects_bad_shard_rows(self, school_train, rubric, school_attributes):
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        with pytest.raises(ValueError, match="shard_rows"):
            dca.fit(school_train.table, row_workers=2, shard_rows=0)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_fit_many_rejects_bad_max_workers(self, school_train, rubric, school_attributes, bad):
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        with pytest.raises(ValueError, match="max_workers"):
            dca.fit_many(school_train.table, seeds=(1, 2), max_workers=bad)

    def test_fit_many_rejects_bad_row_workers(self, school_train, rubric, school_attributes):
        dca = DCA(school_attributes, rubric, k=0.05, config=FAST)
        with pytest.raises(ValueError, match="row_workers"):
            dca.fit_many(school_train.table, seeds=(1,), row_workers=0)

    def test_config_validates_worker_knobs(self):
        with pytest.raises(ValueError, match="row_workers"):
            DCAConfig(row_workers=0).validate()
        with pytest.raises(ValueError, match="shard_rows"):
            DCAConfig(shard_rows=-2).validate()

    def test_cli_rejects_bad_worker_flags(self):
        from repro.experiments.cli import build_parser

        parser = build_parser()
        for argv in (
            ["run", "fig4", "--workers", "0"],
            ["run", "fig4", "--row-workers", "-1"],
            ["run", "fig4", "--row-workers", "two"],
            ["run", "fig4", "--step-dispatch", "mailbox"],
        ):
            with pytest.raises(SystemExit):
                parser.parse_args(argv)

    def test_cli_accepts_step_dispatch_modes(self):
        from repro.experiments.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["run", "fig4"]).step_dispatch is None
        for mode in ("doorbell", "pool"):
            args = parser.parse_args(["run", "fig4", "--step-dispatch", mode])
            assert args.step_dispatch == mode


# ----------------------------------------------------------------------
# Stratified sampling (satellite)
# ----------------------------------------------------------------------
class TestStratifiedSampling:
    def _rare_population(self, n: int = 20_000, frequency: float = 0.005) -> Table:
        rng = np.random.default_rng(7)
        rare = np.zeros(n)
        members = rng.choice(n, size=max(1, int(round(n * frequency))), replace=False)
        rare[members] = 1.0
        score = rng.normal(10.0, 2.0, size=n) - rare
        return Table({"score": score, "rare": rare})

    def test_rare_group_guaranteed_per_draw(self):
        """The 0.5%-frequency regression: every stratified draw has >= 1 member."""
        table = self._rare_population()
        member_mask = table.numeric("rare") > 0.5
        plain = SampleStream(table, 500, rng=np.random.default_rng(1))
        missing = sum(
            1 for _ in range(200) if not member_mask[plain.draw_indices()].any()
        )
        assert missing > 0  # uniform draws really do miss the group
        stratified = SampleStream(
            table, 500, rng=np.random.default_rng(1), stratify=("rare",)
        )
        for _ in range(200):
            indices = stratified.draw_indices()
            assert member_mask[indices].any()
            assert indices.size == 500
            assert np.unique(indices).size == 500  # still a without-replacement draw

    def test_majority_one_attribute_protects_complement(self):
        """The rarest *side* is protected: a 99.5%-mean attribute guards its 0s."""
        table = self._rare_population()
        inverted = Table(
            {"score": table.numeric("score"), "rare": 1.0 - table.numeric("rare")}
        )
        complement = inverted.numeric("rare") < 0.5
        stream = SampleStream(
            inverted, 500, rng=np.random.default_rng(2), stratify=("rare",)
        )
        for _ in range(100):
            assert complement[stream.draw_indices()].any()

    def test_stratify_requires_table(self):
        with pytest.raises(TypeError, match="table-backed"):
            SampleStream(1000, 50, stratify=("rare",))

    def test_continuous_and_degenerate_attributes_skipped(self):
        rng = np.random.default_rng(5)
        table = Table(
            {
                "score": rng.normal(size=400),
                "eni": rng.uniform(size=400),
                "all_ones": np.ones(400),
            }
        )
        stream = SampleStream(
            table, 50, rng=np.random.default_rng(5), stratify=("eni", "all_ones")
        )
        assert stream.draw_indices().size == 50  # no strata built, plain uniform

    def test_dca_config_knob_and_process_fallback(self):
        """stratified_sampling threads through fit and falls back under 'process'."""
        table = self._rare_population(n=4000, frequency=0.01)
        config = DCAConfig(
            seed=11, iterations=15, refinement_iterations=15, sample_size=150,
            stratified_sampling=True,
        )
        dca = DCA(["rare"], ColumnScore("score"), k=0.2, config=config)
        serial = dca.fit_many(table, seeds=(1, 2))
        process = dca.fit_many(table, seeds=(1, 2), executor="process")
        for left, right in zip(serial, process):
            _assert_fit_identical(left.result, right.result)


# ----------------------------------------------------------------------
# Shared-memory cohort generation (tentpole satellite surface)
# ----------------------------------------------------------------------
class TestSharedColumnStore:
    def test_round_trip_and_table_views(self):
        with SharedColumnStore(100, ("a", "b")) as store:
            store.view("a")[...] = np.arange(100, dtype=float)
            store.view("b")[...] = np.ones(100)
            table = store.table()
            assert np.array_equal(table.numeric("a"), np.arange(100, dtype=float))
            # Continuous float columns are zero-copy views into the segment.
            store.view("a")[0] = 41.0
            assert table.numeric("a")[0] == 41.0

    def test_validation(self):
        # Both constructors raise before any segment exists, so there is
        # nothing to close — statically unverifiable, hence the disables.
        with pytest.raises(ValueError, match="num_rows"):
            SharedColumnStore(0, ("a",))  # repro-lint: disable=R2
        with pytest.raises(ValueError, match="column name"):
            SharedColumnStore(10, ())  # repro-lint: disable=R2

    def test_shared_cohort_bitwise_identical_to_plain(self):
        from repro.datasets import SchoolGeneratorConfig, generate_school_cohort

        config = SchoolGeneratorConfig(num_students=2000)
        plain = generate_school_cohort("store-test", config, seed=13)
        shared = generate_school_cohort("store-test", config, seed=13, shared=True)
        try:
            assert shared.store is not None
            for name in (
                "student_id", "gpa", "test_scores", "grade_ela", "test_math",
                "absences", "district", "low_income", "ell", "special_ed", "eni",
            ):
                assert np.array_equal(plain.table.numeric(name), shared.table.numeric(name)), name
        finally:
            shared.close()
        plain.close()  # no-op for unshared cohorts

    def test_copula_sample_into_matches_sample(self):
        from repro.datasets.copula import GaussianCopula, binary_marginal, uniform_marginal

        copula = GaussianCopula(
            [binary_marginal("flag", 0.3), uniform_marginal("level", 0.0, 2.0)],
            np.array([[1.0, 0.4], [0.4, 1.0]]),
        )
        direct = copula.sample(500, np.random.default_rng(21))
        out = {"flag": np.empty(500), "level": np.empty(500)}
        copula.latent_and_sample_into(500, np.random.default_rng(21), out)
        assert np.array_equal(direct["flag"], out["flag"])
        assert np.array_equal(direct["level"], out["level"])

    def test_sample_into_rejects_bad_buffer_shape(self):
        from repro.datasets.copula import GaussianCopula, binary_marginal

        copula = GaussianCopula([binary_marginal("flag", 0.3)], np.eye(1))
        with pytest.raises(ValueError, match="shape"):
            copula.latent_and_sample_into(
                100, np.random.default_rng(0), {"flag": np.empty(99)}
            )
