"""The documentation cannot rot: execute its code, check its links.

Three guards:

* every ```python fence in ``README.md`` and ``docs/*.md`` is executed,
  top to bottom within its file, in one shared namespace (so a quickstart
  may build on an earlier block);
* every relative markdown link target must exist on disk;
* every name exported by the public modules (``repro.core``,
  ``repro.matching``, ``repro.experiments.setting``) must carry a
  docstring stating its contract.
"""

from __future__ import annotations

import ast
import inspect
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documents whose python fences are executed and whose links are checked.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_FENCE = re.compile(r"^```(\w*)\s*$")
# [text](target) — excluding images; shortest-match target up to the close.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _python_blocks(path: Path) -> list[tuple[int, str]]:
    """(starting line, source) of every ```python fence in ``path``."""
    blocks: list[tuple[int, str]] = []
    language: str | None = None
    buffer: list[str] = []
    start = 0
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = _FENCE.match(line)
        if match and language is None:
            language = match.group(1) or "text"
            buffer = []
            start = number + 1
        elif match:
            if language == "python":
                blocks.append((start, "\n".join(buffer)))
            language = None
        elif language is not None:
            buffer.append(line)
    return blocks


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda path: path.name)
def test_python_snippets_execute(path: Path) -> None:
    """Each document's python fences run green, in order, sharing state."""
    blocks = _python_blocks(path)
    namespace: dict[str, object] = {"__name__": f"docs_snippet_{path.stem}"}
    for start, source in blocks:
        code = compile(source, f"{path.name}:{start}", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own documentation


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda path: path.name)
def test_python_snippets_parse(path: Path) -> None:
    """Fences must at least be valid Python even before execution."""
    for start, source in _python_blocks(path):
        ast.parse(source, filename=f"{path.name}:{start}")


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda path: path.name)
def test_relative_links_resolve(path: Path) -> None:
    """Every relative link target in the document exists on disk."""
    text = path.read_text()
    missing = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            missing.append(target)
    assert not missing, f"{path.name} links to missing files: {missing}"


def test_readme_and_architecture_exist() -> None:
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    # The quickstart must actually contain runnable examples.
    assert len(_python_blocks(REPO_ROOT / "README.md")) >= 2


# ----------------------------------------------------------------------
# Public API audit: every exported name documents its contract.
# ----------------------------------------------------------------------
PUBLIC_MODULES = ("repro.core", "repro.matching", "repro.experiments.setting")


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_api_has_docstrings(module_name: str) -> None:
    module = __import__(module_name, fromlist=["__all__"])
    assert module.__doc__, f"{module_name} has no module docstring"
    exported = getattr(module, "__all__", None)
    assert exported, f"{module_name} defines no __all__"
    undocumented = []
    for name in exported:
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or callable(obj)):
            continue  # constants (DEFAULT_K, ...) cannot carry docstrings
        if not inspect.getdoc(obj):
            undocumented.append(name)
    assert not undocumented, f"{module_name} exports undocumented names: {undocumented}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_api_all_matches_module(module_name: str) -> None:
    """__all__ names must all resolve (no stale exports)."""
    module = __import__(module_name, fromlist=["__all__"])
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"
