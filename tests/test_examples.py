"""Smoke tests for the runnable examples.

Each example is executed in-process (with its dataset sizes patched down via
the shared registry cache where possible) to guarantee the documented entry
points keep working.  The quickstart is run exactly as shipped.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart.py",
    "compas_recidivism.py",
    "custom_fairness_metric.py",
    "unknown_selection_size.py",
    "school_admissions_matching.py",
]


class TestExamplesExist:
    def test_at_least_three_examples_shipped(self):
        scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3
        assert "quickstart.py" in scripts

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_has_module_docstring_and_main(self, name):
        source = (EXAMPLES_DIR / name).read_text()
        assert source.lstrip().startswith('"""')
        assert "def main()" in source
        assert '__main__' in source


@pytest.mark.slow
class TestExamplesRun:
    @pytest.mark.parametrize("name", ["quickstart.py", "custom_fairness_metric.py"])
    def test_example_runs_end_to_end(self, name, capsys):
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
        out = capsys.readouterr().out
        assert "bonus" in out.lower() or "points" in out.lower()
