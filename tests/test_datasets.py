"""Tests for the synthetic dataset generators (repro.datasets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DisparityCalculator
from repro.datasets import (
    COMPAS_RACE_ATTRIBUTES,
    COMPAS_RACES,
    CompasGeneratorConfig,
    GaussianCopula,
    SCHOOL_FAIRNESS_ATTRIBUTES,
    SchoolGeneratorConfig,
    binary_marginal,
    clear_dataset_cache,
    clipped_normal_marginal,
    compas_release_ranking_function,
    generate_compas_cohort,
    generate_compas_dataset,
    generate_school_cohort,
    generate_school_dataset,
    load_compas,
    load_dataset,
    load_school_cohorts,
    nearest_correlation_matrix,
    race_attribute_name,
    register_dataset,
    school_admission_rubric,
    uniform_marginal,
)
from repro.tabular import Table


class TestCopula:
    def test_binary_marginal_prevalence(self, rng):
        copula = GaussianCopula([binary_marginal("flag", 0.3)], np.eye(1))
        sample = copula.sample(20_000, rng)
        assert sample["flag"].mean() == pytest.approx(0.3, abs=0.02)

    def test_uniform_marginal_range(self, rng):
        copula = GaussianCopula([uniform_marginal("u", 2.0, 4.0)], np.eye(1))
        sample = copula.sample(5_000, rng)["u"]
        assert sample.min() >= 2.0
        assert sample.max() <= 4.0

    def test_clipped_normal_marginal(self, rng):
        copula = GaussianCopula(
            [clipped_normal_marginal("x", mean=10.0, std=2.0, low=5.0, high=15.0)], np.eye(1)
        )
        sample = copula.sample(5_000, rng)["x"]
        assert sample.min() >= 5.0
        assert sample.max() <= 15.0
        assert sample.mean() == pytest.approx(10.0, abs=0.2)

    def test_correlation_is_respected(self, rng):
        correlation = np.array([[1.0, 0.8], [0.8, 1.0]])
        copula = GaussianCopula(
            [binary_marginal("a", 0.5), binary_marginal("b", 0.5)], correlation
        )
        sample = copula.sample(30_000, rng)
        observed = np.corrcoef(sample["a"], sample["b"])[0, 1]
        assert observed > 0.4  # strong positive association survives binarization

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            GaussianCopula([binary_marginal("a", 0.5)], np.eye(2))
        with pytest.raises(ValueError):
            binary_marginal("a", 1.5)
        with pytest.raises(ValueError):
            uniform_marginal("a", 3.0, 1.0)
        with pytest.raises(ValueError):
            clipped_normal_marginal("a", 0.0, 0.0)

    def test_sample_size_positive(self, rng):
        copula = GaussianCopula([binary_marginal("a", 0.5)], np.eye(1))
        with pytest.raises(ValueError):
            copula.sample(0, rng)

    def test_nearest_correlation_fixes_indefinite_matrix(self):
        bad = np.array([[1.0, 0.9, -0.9], [0.9, 1.0, 0.9], [-0.9, 0.9, 1.0]])
        fixed = nearest_correlation_matrix(bad)
        eigenvalues = np.linalg.eigvalsh(fixed)
        assert eigenvalues.min() >= -1e-10
        assert np.allclose(np.diag(fixed), 1.0)


class TestSchoolGenerator:
    @pytest.fixture(scope="class")
    def cohort(self):
        return generate_school_cohort("unit-test", SchoolGeneratorConfig(num_students=20_000), seed=5)

    def test_size_and_columns(self, cohort):
        assert cohort.num_students == 20_000
        for name in SCHOOL_FAIRNESS_ATTRIBUTES + ("gpa", "test_scores", "district"):
            assert name in cohort.table

    def test_marginal_prevalences(self, cohort):
        rates = cohort.table.group_rates(["low_income", "ell", "special_ed"])
        assert rates["low_income"] == pytest.approx(0.70, abs=0.03)
        assert rates["ell"] == pytest.approx(0.13, abs=0.02)
        assert rates["special_ed"] == pytest.approx(0.20, abs=0.02)

    def test_eni_in_unit_interval(self, cohort):
        eni = cohort.table.numeric("eni")
        assert eni.min() >= 0.0
        assert eni.max() <= 1.0

    def test_grades_and_tests_in_published_ranges(self, cohort):
        assert cohort.table.numeric("grade_math").min() >= 55.0
        assert cohort.table.numeric("grade_math").max() <= 100.0
        assert cohort.table.numeric("test_ela").min() >= 100.0
        assert cohort.table.numeric("test_ela").max() <= 400.0

    def test_disadvantaged_students_score_lower(self, cohort):
        table = cohort.table
        scores = school_admission_rubric().scores(table)
        low_income = table.numeric("low_income") > 0.5
        assert scores[low_income].mean() < scores[~low_income].mean()

    def test_baseline_disparity_matches_table_one_shape(self, cohort):
        """The calibrated generator should land near the paper's baseline."""
        table = cohort.table
        scores = school_admission_rubric().scores(table)
        calculator = DisparityCalculator(SCHOOL_FAIRNESS_ATTRIBUTES).fit(table)
        disparity = calculator.disparity(table, scores, 0.05)
        assert -0.32 < disparity["low_income"] < -0.12
        assert -0.20 < disparity["ell"] < -0.06
        assert -0.26 < disparity["eni"] < -0.10
        assert -0.22 < disparity["special_ed"] < -0.14
        assert 0.28 < disparity.norm < 0.48

    def test_reproducible_given_seed(self):
        config = SchoolGeneratorConfig(num_students=1_000)
        a = generate_school_cohort("2016-2017", config)
        b = generate_school_cohort("2016-2017", config)
        assert a.table == b.table

    def test_train_and_test_are_different_draws(self):
        config = SchoolGeneratorConfig(num_students=1_000)
        train, test = generate_school_dataset(config)
        assert train.table != test.table
        assert train.year == "2016-2017"
        assert test.year == "2017-2018"

    def test_district_selection(self, cohort):
        district = cohort.district(10)
        assert district.num_rows > 0
        assert np.all(district.numeric("district") == 10.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchoolGeneratorConfig(num_students=0).validate()
        with pytest.raises(ValueError):
            SchoolGeneratorConfig(low_income_rate=1.5).validate()

    def test_rubric_weights_match_paper(self):
        rubric = school_admission_rubric()
        assert rubric.weights == {"gpa": 0.55, "test_scores": 0.45}
        assert rubric.scale == 100.0


class TestCompasGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_compas_dataset(CompasGeneratorConfig(num_defendants=6_000), seed=3)

    def test_size_and_columns(self, dataset):
        assert dataset.num_defendants == 6_000
        for name in ("decile_score", "two_year_recid", "race") + COMPAS_RACE_ATTRIBUTES:
            assert name in dataset.table

    def test_default_size_matches_paper(self):
        assert CompasGeneratorConfig().num_defendants == 7_214

    def test_race_proportions(self, dataset):
        shares = {
            race: float(np.mean(dataset.table.numeric(race_attribute_name(race))))
            for race in COMPAS_RACES
        }
        assert shares["African-American"] == pytest.approx(0.514, abs=0.03)
        assert shares["Caucasian"] == pytest.approx(0.34, abs=0.03)

    def test_race_indicators_are_one_hot(self, dataset):
        matrix = dataset.table.matrix(list(COMPAS_RACE_ATTRIBUTES))
        assert np.all(matrix.sum(axis=1) == 1.0)

    def test_decile_scores_cover_one_to_ten(self, dataset):
        deciles = dataset.table.numeric("decile_score")
        assert set(np.unique(deciles)) == set(float(i) for i in range(1, 11))

    def test_deciles_roughly_uniform(self, dataset):
        deciles = dataset.table.numeric("decile_score")
        counts = np.bincount(deciles.astype(int))[1:]
        assert counts.min() > 0.8 * counts.mean()

    def test_score_bias_direction(self, dataset):
        """African-American defendants receive higher deciles than Caucasian ones."""
        table = dataset.table
        aa = table.numeric(race_attribute_name("African-American")) > 0.5
        white = table.numeric(race_attribute_name("Caucasian")) > 0.5
        deciles = table.numeric("decile_score")
        assert deciles[aa].mean() > deciles[white].mean() + 0.5

    def test_recidivism_correlates_with_behaviour_not_only_race(self, dataset):
        table = dataset.table
        recid = table.numeric("two_year_recid")
        priors = table.numeric("priors_count")
        assert np.corrcoef(recid, priors)[0, 1] > 0.1

    def test_baseline_release_disparity_shape(self, dataset):
        """Figure 10a baseline: AA under-represented among the lowest-risk k%."""
        table = dataset.table
        scores = compas_release_ranking_function().scores(table)
        calculator = DisparityCalculator(COMPAS_RACE_ATTRIBUTES).fit(table)
        disparity = calculator.disparity(table, scores, 0.2)
        assert disparity[race_attribute_name("African-American")] < -0.1
        assert disparity[race_attribute_name("Caucasian")] > 0.1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CompasGeneratorConfig(num_defendants=0).validate()
        with pytest.raises(ValueError):
            CompasGeneratorConfig(race_proportions={"A": 0.2}).validate()
        with pytest.raises(ValueError):
            CompasGeneratorConfig(base_recidivism_rate=0.0).validate()

    def test_reproducible_given_seed(self):
        config = CompasGeneratorConfig(num_defendants=500)
        assert generate_compas_dataset(config, seed=1).table == generate_compas_dataset(config, seed=1).table

    def test_cohort_alias_matches_dataset(self):
        config = CompasGeneratorConfig(num_defendants=500)
        assert (
            generate_compas_cohort(config, seed=2).table
            == generate_compas_dataset(config, seed=2).table
        )

    def test_shared_cohort_bitwise_identical_to_unshared(self):
        """``shared=True`` generation lands in a SharedColumnStore, bit for bit."""
        config = CompasGeneratorConfig(num_defendants=2_000)
        plain = generate_compas_cohort(config, seed=11)
        assert plain.store is None
        shared = generate_compas_cohort(config, seed=11, shared=True)
        try:
            assert shared.store is not None
            assert shared.table.column_names == plain.table.column_names
            # The object-dtype race labels always live on the heap.
            assert list(shared.table.column("race")) == list(plain.table.column("race"))
            float_columns = (
                "defendant_id",
                "age",
                "sex_male",
                "priors_count",
                "decile_score",
                "two_year_recid",
            ) + COMPAS_RACE_ATTRIBUTES
            for name in float_columns:
                assert np.array_equal(
                    plain.table.numeric(name), shared.table.numeric(name)
                ), name
        finally:
            shared.close()
        plain.close()  # no-op for unshared datasets


class TestRegistry:
    def test_school_cache_returns_same_object(self):
        clear_dataset_cache()
        first = load_school_cohorts(num_students=1_000)
        second = load_school_cohorts(num_students=1_000)
        assert first is second
        clear_dataset_cache()

    def test_refresh_regenerates(self):
        clear_dataset_cache()
        first = load_school_cohorts(num_students=1_000)
        second = load_school_cohorts(num_students=1_000, refresh=True)
        assert first is not second
        clear_dataset_cache()

    def test_compas_cache(self):
        clear_dataset_cache()
        assert load_compas(num_defendants=500) is load_compas(num_defendants=500)
        clear_dataset_cache()

    def test_load_dataset_builtins(self):
        clear_dataset_cache()
        assert load_dataset("compas") is load_compas()
        clear_dataset_cache()

    def test_register_and_load_custom(self):
        register_dataset("tiny", lambda: Table({"x": [1.0]}))
        loaded = load_dataset("tiny")
        assert loaded.num_rows == 1
        assert load_dataset("tiny") is loaded  # cached
        clear_dataset_cache()

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("does-not-exist")

    def test_register_requires_name(self):
        with pytest.raises(ValueError):
            register_dataset("", lambda: None)
