"""Integration tests: the COMPAS pipeline (black-box decile ranking + DCA)."""

from __future__ import annotations

import pytest

from repro.core import (
    DCA,
    DCAConfig,
    DisparityCalculator,
    FalsePositiveRateObjective,
    LogDiscountedDisparityObjective,
)
from repro.datasets import (
    COMPAS_RACE_ATTRIBUTES,
    compas_release_ranking_function,
    race_attribute_name,
)
from repro.metrics import equalized_odds_gap, group_false_positive_rates


@pytest.fixture(scope="module")
def compas_config():
    return DCAConfig(
        learning_rates=(1.0, 0.1),
        iterations=60,
        refinement_iterations=80,
        averaging_window=60,
        sample_size=800,
        seed=31,
    )


class TestCompasDisparityCompensation:
    def test_disparity_reduced_for_major_groups(self, compas_dataset, compas_config):
        table = compas_dataset.table
        ranking = compas_release_ranking_function()
        base = ranking.scores(table)
        calculator = DisparityCalculator(COMPAS_RACE_ATTRIBUTES).fit(table)
        k = 0.2
        before = calculator.disparity(table, base, k)

        dca = DCA(COMPAS_RACE_ATTRIBUTES, ranking, k=k, config=compas_config)
        fitted = dca.fit(table)
        after = calculator.disparity(table, fitted.bonus.apply(table, base), k)

        aa = race_attribute_name("African-American")
        white = race_attribute_name("Caucasian")
        assert abs(after[aa]) < abs(before[aa])
        assert abs(after[white]) < abs(before[white])
        assert after.norm < before.norm

    def test_bonuses_are_small_on_decile_scale(self, compas_dataset, compas_config):
        """Decile scores span 1..10, so the fitted bonuses should be a few points at most."""
        table = compas_dataset.table
        ranking = compas_release_ranking_function()
        dca = DCA(COMPAS_RACE_ATTRIBUTES, ranking, k=0.2, config=compas_config)
        fitted = dca.fit(table)
        assert max(fitted.as_dict().values()) <= 10.0

    def test_log_discounted_single_vector(self, compas_dataset, compas_config):
        table = compas_dataset.table
        ranking = compas_release_ranking_function()
        base = ranking.scores(table)
        calculator = DisparityCalculator(COMPAS_RACE_ATTRIBUTES).fit(table)
        objective = LogDiscountedDisparityObjective(COMPAS_RACE_ATTRIBUTES)
        dca = DCA(COMPAS_RACE_ATTRIBUTES, ranking, k=0.5, objective=objective, config=compas_config)
        fitted = dca.fit(table)
        compensated = fitted.bonus.apply(table, base)
        improved = 0
        for k in (0.1, 0.2, 0.3, 0.4, 0.5):
            before = calculator.disparity(table, base, k).norm
            after = calculator.disparity(table, compensated, k).norm
            if after < before:
                improved += 1
        # The coarse deciles cause steps, but most k values must improve.
        assert improved >= 4


class TestCompasFalsePositiveRates:
    def test_fpr_gap_narrows(self, compas_dataset, compas_config):
        table = compas_dataset.table
        ranking = compas_release_ranking_function()
        base = ranking.scores(table)
        k = 0.2
        objective = FalsePositiveRateObjective(COMPAS_RACE_ATTRIBUTES, "two_year_recid")
        dca = DCA(COMPAS_RACE_ATTRIBUTES, ranking, k=k, objective=objective, config=compas_config)
        fitted = dca.fit(table)
        compensated = fitted.bonus.apply(table, base)

        aa = race_attribute_name("African-American")
        white = race_attribute_name("Caucasian")
        before = group_false_positive_rates(table, base, (aa, white), "two_year_recid", k)
        after = group_false_positive_rates(table, compensated, (aa, white), "two_year_recid", k)
        assert abs(after[aa] - after[white]) < abs(before[aa] - before[white])

    def test_equalized_odds_gap_reduced_for_major_groups(self, compas_dataset, compas_config):
        table = compas_dataset.table
        ranking = compas_release_ranking_function()
        base = ranking.scores(table)
        k = 0.25
        major = (race_attribute_name("African-American"), race_attribute_name("Caucasian"),
                 race_attribute_name("Hispanic"))
        objective = FalsePositiveRateObjective(COMPAS_RACE_ATTRIBUTES, "two_year_recid")
        config = compas_config
        dca = DCA(COMPAS_RACE_ATTRIBUTES, ranking, k=k, objective=objective, config=config)
        fitted = dca.fit(table)
        compensated = fitted.bonus.apply(table, base)
        before = equalized_odds_gap(table, base, major, "two_year_recid", k)
        after = equalized_odds_gap(table, compensated, major, "two_year_recid", k)
        assert after <= before + 0.02
