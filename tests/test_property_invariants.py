"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import BonusVector, DisparityCalculator
from repro.metrics import dcg, ndcg_at_k
from repro.ranking import rank_positions, selection_mask, selection_size, top_k_indices
from repro.tabular import Table

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
scores_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=120),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)

k_fractions = st.floats(min_value=0.01, max_value=1.0)


@st.composite
def score_and_binary_attribute(draw):
    """Scores plus a binary attribute with at least one member in each group."""
    n = draw(st.integers(min_value=4, max_value=150))
    scores = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=n,
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
        )
    )
    flags = draw(hnp.arrays(dtype=np.int64, shape=n, elements=st.integers(0, 1)))
    if flags.sum() == 0:
        flags[0] = 1
    if flags.sum() == n:
        flags[-1] = 0
    return scores, flags


# ----------------------------------------------------------------------
# selection invariants
# ----------------------------------------------------------------------
class TestSelectionProperties:
    @given(scores=scores_arrays, k=k_fractions)
    @settings(max_examples=60, deadline=None)
    def test_selection_size_matches_mask(self, scores, k):
        mask = selection_mask(scores, k)
        assert mask.sum() == selection_size(scores.shape[0], k)

    @given(scores=scores_arrays, k=k_fractions)
    @settings(max_examples=60, deadline=None)
    def test_selected_scores_dominate_unselected(self, scores, k):
        mask = selection_mask(scores, k)
        if mask.all():
            return
        assert scores[mask].min() >= scores[~mask].max() - 1e-9

    @given(scores=scores_arrays)
    @settings(max_examples=60, deadline=None)
    def test_rank_positions_are_a_permutation(self, scores):
        ranks = rank_positions(scores)
        assert sorted(ranks.tolist()) == list(range(scores.shape[0]))

    @given(scores=scores_arrays, k=k_fractions)
    @settings(max_examples=60, deadline=None)
    def test_top_k_indices_sorted_by_score(self, scores, k):
        indices = top_k_indices(scores, k)
        selected_scores = scores[indices]
        assert np.all(np.diff(selected_scores) <= 1e-9)

    @given(
        scores=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=120),
            elements=st.integers(min_value=-1000, max_value=1000).map(float),
        ),
        k=k_fractions,
        shift=st.integers(min_value=-100, max_value=100).map(float),
    )
    @settings(max_examples=60, deadline=None)
    def test_selection_invariant_to_score_shift(self, scores, k, shift):
        # Integer-valued scores avoid floating-point precision artefacts at
        # the selection boundary (a denormal score plus a shift can collapse
        # onto a tie and legitimately change the tie-break).
        assert np.array_equal(selection_mask(scores, k), selection_mask(scores + shift, k))


# ----------------------------------------------------------------------
# disparity invariants
# ----------------------------------------------------------------------
class TestDisparityProperties:
    @given(data=score_and_binary_attribute(), k=k_fractions)
    @settings(max_examples=60, deadline=None)
    def test_disparity_bounded(self, data, k):
        scores, flags = data
        table = Table({"flag": flags})
        calculator = DisparityCalculator(["flag"]).fit(table)
        value = calculator.disparity(table, scores, k)["flag"]
        assert -1.0 <= value <= 1.0

    @given(data=score_and_binary_attribute())
    @settings(max_examples=60, deadline=None)
    def test_full_selection_has_zero_disparity(self, data):
        scores, flags = data
        table = Table({"flag": flags})
        calculator = DisparityCalculator(["flag"]).fit(table)
        assert calculator.disparity(table, scores, 1.0)["flag"] == pytest.approx(0.0)

    @given(data=score_and_binary_attribute(), k=k_fractions)
    @settings(max_examples=60, deadline=None)
    def test_disparity_equals_share_difference(self, data, k):
        """For a binary attribute the disparity is exactly (selected share - population share)."""
        scores, flags = data
        table = Table({"flag": flags})
        calculator = DisparityCalculator(["flag"]).fit(table)
        mask = selection_mask(scores, k)
        expected = flags[mask].mean() - flags.mean()
        assert calculator.disparity(table, scores, k)["flag"] == pytest.approx(expected)

    @given(data=score_and_binary_attribute(), k=st.floats(0.05, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_large_enough_bonus_flips_disparity_sign_or_zero(self, data, k):
        """Giving the protected group an overwhelming bonus makes its disparity
        non-negative (the group fills the selection as far as it can)."""
        scores, flags = data
        table = Table({"flag": flags})
        calculator = DisparityCalculator(["flag"]).fit(table)
        span = float(scores.max() - scores.min()) + 1.0
        bonus = BonusVector({"flag": 10.0 * span})
        boosted = bonus.apply(table, scores)
        assert calculator.disparity(table, boosted, k)["flag"] >= -1e-9


# ----------------------------------------------------------------------
# bonus vector invariants
# ----------------------------------------------------------------------
bonus_values = st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=5)


class TestBonusProperties:
    @given(values=bonus_values, proportion=st.floats(0.0, 2.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_scaling_is_linear(self, values, proportion):
        names = [f"a{i}" for i in range(len(values))]
        bonus = BonusVector(dict(zip(names, values)))
        scaled = bonus.scaled(proportion)
        assert scaled.values == pytest.approx(bonus.values * proportion)

    @given(values=bonus_values, granularity=st.sampled_from([0.1, 0.25, 0.5, 1.0]))
    @settings(max_examples=80, deadline=None)
    def test_rounding_lands_on_grid_and_is_close(self, values, granularity):
        names = [f"a{i}" for i in range(len(values))]
        bonus = BonusVector(dict(zip(names, values))).rounded(granularity)
        for value in bonus.values:
            assert value == pytest.approx(round(value / granularity) * granularity, abs=1e-9)
        assert np.all(np.abs(bonus.values - np.asarray(values)) <= granularity / 2 + 1e-9)

    @given(values=bonus_values, cap=st.floats(0.0, 20.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_clipping_respects_bounds(self, values, cap):
        names = [f"a{i}" for i in range(len(values))]
        clipped = BonusVector(dict(zip(names, values))).clipped(0.0, cap)
        assert np.all(clipped.values >= 0.0)
        assert np.all(clipped.values <= cap + 1e-12)

    @given(data=score_and_binary_attribute(), points=st.floats(0.0, 100.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_bonus_never_hurts_group_members_scores(self, data, points):
        scores, flags = data
        table = Table({"flag": flags})
        adjusted = BonusVector({"flag": points}).apply(table, scores)
        assert np.all(adjusted >= scores - 1e-12)
        assert np.all(adjusted[flags == 0] == scores[flags == 0])


# ----------------------------------------------------------------------
# utility metric invariants
# ----------------------------------------------------------------------
class TestNDCGProperties:
    @given(scores=scores_arrays, k=k_fractions)
    @settings(max_examples=60, deadline=None)
    def test_identity_reranking_is_one(self, scores, k):
        assert ndcg_at_k(scores, scores.copy(), k) == pytest.approx(1.0)

    @given(data=score_and_binary_attribute(), k=k_fractions, points=st.floats(0, 1e4))
    @settings(max_examples=60, deadline=None)
    def test_ndcg_bounded(self, data, k, points):
        scores, flags = data
        table = Table({"flag": flags})
        adjusted = BonusVector({"flag": points}).apply(table, scores)
        value = ndcg_at_k(scores, adjusted, k)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(gains=hnp.arrays(dtype=np.float64, shape=st.integers(1, 30),
                            elements=st.floats(0, 100, allow_nan=False)))
    @settings(max_examples=60, deadline=None)
    def test_dcg_maximized_by_sorted_gains(self, gains):
        assert dcg(np.sort(gains)[::-1]) >= dcg(gains) - 1e-9
