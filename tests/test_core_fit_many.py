"""Tests for the batched DCA.fit_many API."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    DCA,
    DCAConfig,
    DisparityObjective,
    ExposureGapObjective,
    FitSpec,
)
from repro.ranking import ColumnScore
from repro.tabular import Table


@pytest.fixture(scope="module")
def population() -> Table:
    rng = np.random.default_rng(12)
    n = 2000
    protected = (rng.uniform(size=n) < 0.3).astype(float)
    score = rng.normal(10.0, 2.0, size=n) - 2.0 * protected
    return Table({"score": score, "protected": protected})


FAST = DCAConfig(seed=5, iterations=25, refinement_iterations=25, sample_size=250)


def _dca(config: DCAConfig = FAST) -> DCA:
    return DCA(["protected"], ColumnScore("score"), k=0.2, config=config)


class TestGrids:
    def test_defaults_to_single_fit(self, population):
        batch = _dca().fit_many(population)
        assert len(batch) == 1
        assert batch[0].k == 0.2
        assert batch[0].seed == 5

    def test_k_sweep_matches_individual_fits(self, population):
        ks = (0.1, 0.2, 0.4)
        batch = _dca().fit_many(population, ks=ks)
        assert [entry.k for entry in batch] == list(ks)
        for k, entry in zip(ks, batch):
            solo = DCA(["protected"], ColumnScore("score"), k=k, config=FAST).fit(population)
            assert np.array_equal(entry.result.raw_bonus.values, solo.raw_bonus.values)

    def test_seed_grid_overrides_config_seed(self, population):
        batch = _dca().fit_many(population, seeds=(1, 2))
        assert [entry.seed for entry in batch] == [1, 2]
        resolo = DCA(
            ["protected"], ColumnScore("score"), k=0.2, config=replace(FAST, seed=2)
        )
        assert np.array_equal(
            batch[1].result.raw_bonus.values, resolo.fit(population).raw_bonus.values
        )

    def test_cartesian_product_order(self, population):
        batch = _dca().fit_many(population, ks=(0.1, 0.2), seeds=(1, 2))
        assert [(entry.k, entry.seed) for entry in batch] == [
            (0.1, 1), (0.1, 2), (0.2, 1), (0.2, 2)
        ]

    def test_objectives_axis_fits_each_objective(self, population):
        objectives = (DisparityObjective(("protected",)), ExposureGapObjective(("protected",)))
        batch = _dca().fit_many(population, objectives=objectives)
        assert len(batch) == 2
        for entry in batch:
            assert entry.result.attribute_names == ("protected",)

    def test_shared_objective_instances_not_mutated(self, population):
        objective = DisparityObjective(("protected",))
        _dca().fit_many(population, objectives=(objective, objective))
        # fit_many deep-copies per job, so the caller's instance stays unfitted.
        assert not objective.calculator.normalizer.is_fitted


class TestSpecs:
    def test_specs_and_grid_are_mutually_exclusive(self, population):
        with pytest.raises(ValueError):
            _dca().fit_many(population, ks=(0.1,), specs=[FitSpec()])

    def test_spec_config_override_and_label(self, population):
        specs = [
            FitSpec(label="short", config=FAST),
            FitSpec(label="long", config=FAST.without_refinement()),
        ]
        batch = _dca().fit_many(population, specs=specs)
        assert [entry.label for entry in batch] == ["short", "long"]
        assert batch[1].result.traces[-1].phase.startswith("core")

    def test_empty_specs(self, population):
        assert _dca().fit_many(population, specs=[]) == []


class TestParallel:
    def test_threaded_batch_matches_sequential(self, population):
        dca = _dca()
        sequential = dca.fit_many(population, seeds=(1, 2, 3))
        threaded = dca.fit_many(population, seeds=(1, 2, 3), max_workers=3)
        for left, right in zip(sequential, threaded):
            assert np.array_equal(
                left.result.raw_bonus.values, right.result.raw_bonus.values
            )

    def test_batch_result_accessors(self, population):
        entry = _dca().fit_many(population, ks=(0.25,))[0]
        assert entry.bonus is entry.result.bonus
        assert entry.label is None
