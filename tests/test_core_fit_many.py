"""Tests for the batched DCA.fit_many API and its execution backends."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    DCA,
    CompiledObjectiveCache,
    DCAConfig,
    DisparityObjective,
    DisparityResult,
    ExposureGapObjective,
    FairnessObjective,
    FitSpec,
)
from repro.ranking import ColumnScore, selection_mask
from repro.tabular import Table


@pytest.fixture(scope="module")
def population() -> Table:
    rng = np.random.default_rng(12)
    n = 2000
    protected = (rng.uniform(size=n) < 0.3).astype(float)
    score = rng.normal(10.0, 2.0, size=n) - 2.0 * protected
    return Table({"score": score, "protected": protected})


FAST = DCAConfig(seed=5, iterations=25, refinement_iterations=25, sample_size=250)


def _dca(config: DCAConfig = FAST) -> DCA:
    return DCA(["protected"], ColumnScore("score"), k=0.2, config=config)


class TestGrids:
    def test_defaults_to_single_fit(self, population):
        batch = _dca().fit_many(population)
        assert len(batch) == 1
        assert batch[0].k == 0.2
        assert batch[0].seed == 5

    def test_k_sweep_matches_individual_fits(self, population):
        ks = (0.1, 0.2, 0.4)
        batch = _dca().fit_many(population, ks=ks)
        assert [entry.k for entry in batch] == list(ks)
        for k, entry in zip(ks, batch):
            solo = DCA(["protected"], ColumnScore("score"), k=k, config=FAST).fit(population)
            assert np.array_equal(entry.result.raw_bonus.values, solo.raw_bonus.values)

    def test_seed_grid_overrides_config_seed(self, population):
        batch = _dca().fit_many(population, seeds=(1, 2))
        assert [entry.seed for entry in batch] == [1, 2]
        resolo = DCA(
            ["protected"], ColumnScore("score"), k=0.2, config=replace(FAST, seed=2)
        )
        assert np.array_equal(
            batch[1].result.raw_bonus.values, resolo.fit(population).raw_bonus.values
        )

    def test_cartesian_product_order(self, population):
        batch = _dca().fit_many(population, ks=(0.1, 0.2), seeds=(1, 2))
        assert [(entry.k, entry.seed) for entry in batch] == [
            (0.1, 1), (0.1, 2), (0.2, 1), (0.2, 2)
        ]

    def test_objectives_axis_fits_each_objective(self, population):
        objectives = (DisparityObjective(("protected",)), ExposureGapObjective(("protected",)))
        batch = _dca().fit_many(population, objectives=objectives)
        assert len(batch) == 2
        for entry in batch:
            assert entry.result.attribute_names == ("protected",)

    def test_shared_objective_instances_not_mutated(self, population):
        objective = DisparityObjective(("protected",))
        _dca().fit_many(population, objectives=(objective, objective))
        # fit_many deep-copies per job, so the caller's instance stays unfitted.
        assert not objective.calculator.normalizer.is_fitted


class TestSpecs:
    def test_specs_and_grid_are_mutually_exclusive(self, population):
        with pytest.raises(ValueError):
            _dca().fit_many(population, ks=(0.1,), specs=[FitSpec()])

    def test_spec_config_override_and_label(self, population):
        specs = [
            FitSpec(label="short", config=FAST),
            FitSpec(label="long", config=FAST.without_refinement()),
        ]
        batch = _dca().fit_many(population, specs=specs)
        assert [entry.label for entry in batch] == ["short", "long"]
        assert batch[1].result.traces[-1].phase.startswith("core")

    def test_empty_specs(self, population):
        assert _dca().fit_many(population, specs=[]) == []


class TestParallel:
    def test_threaded_batch_matches_sequential(self, population):
        dca = _dca()
        sequential = dca.fit_many(population, seeds=(1, 2, 3))
        threaded = dca.fit_many(population, seeds=(1, 2, 3), max_workers=3)
        for left, right in zip(sequential, threaded):
            assert np.array_equal(
                left.result.raw_bonus.values, right.result.raw_bonus.values
            )

    def test_batch_result_accessors(self, population):
        entry = _dca().fit_many(population, ks=(0.25,))[0]
        assert entry.bonus is entry.result.bonus
        assert entry.label is None


class _SignatureLessObjective(FairnessObjective):
    """A custom objective without a signature: exercises the process fallback."""

    def evaluate(self, table, scores, k):
        mask = selection_mask(np.asarray(scores, dtype=float), k)
        values = np.zeros(len(self.attribute_names))
        for i, name in enumerate(self.attribute_names):
            member = table.numeric(name) > 0.5
            if member.any():
                values[i] = float(mask[member].mean() - mask.mean())
        return DisparityResult(self.attribute_names, values)


def _raw_values(batch):
    return [entry.result.raw_bonus.values for entry in batch]


class TestExecutors:
    """The executor backends must be interchangeable, bit for bit."""

    def test_unknown_executor_rejected(self, population):
        with pytest.raises(ValueError, match="executor"):
            _dca().fit_many(population, seeds=(1, 2), executor="gpu")

    def test_named_executors_match_serial(self, population):
        dca = _dca()
        serial = dca.fit_many(population, seeds=(1, 2, 3), executor="serial")
        for executor in ("thread", "process"):
            batch = dca.fit_many(
                population, seeds=(1, 2, 3), executor=executor, max_workers=2
            )
            for left, right in zip(serial, batch):
                assert np.array_equal(
                    left.result.raw_bonus.values, right.result.raw_bonus.values
                ), executor

    def test_process_eight_job_grid_bitwise_identical(self, population):
        """The acceptance grid: 8 seeded jobs, process == serial bitwise."""
        dca = _dca()
        serial = dca.fit_many(population, ks=(0.1, 0.2), seeds=(1, 2, 3, 4))
        process = dca.fit_many(
            population, ks=(0.1, 0.2), seeds=(1, 2, 3, 4), executor="process"
        )
        assert len(serial) == 8
        assert [(e.k, e.seed) for e in serial] == [(e.k, e.seed) for e in process]
        for left, right in zip(serial, process):
            assert np.array_equal(
                left.result.raw_bonus.values, right.result.raw_bonus.values
            )
            assert np.array_equal(left.result.bonus.values, right.result.bonus.values)
            assert left.result.sample_size == right.result.sample_size
            for trace_l, trace_r in zip(left.result.traces, right.result.traces):
                assert trace_l.phase == trace_r.phase
                assert np.array_equal(trace_l.bonus_history, trace_r.bonus_history)

    def test_process_mixed_objectives(self, population):
        objectives = (DisparityObjective(("protected",)), ExposureGapObjective(("protected",)))
        serial = _dca().fit_many(population, objectives=objectives)
        process = _dca().fit_many(population, objectives=objectives, executor="process")
        for left, right in zip(serial, process):
            assert np.array_equal(
                left.result.raw_bonus.values, right.result.raw_bonus.values
            )

    def test_process_rule_based_sample_size(self, population):
        """sample_size=None exercises the parent-side max(1/k, 1/r) planning."""
        config = replace(FAST, sample_size=None)
        serial = _dca(config).fit_many(population, seeds=(1, 2))
        process = _dca(config).fit_many(population, seeds=(1, 2), executor="process")
        for left, right in zip(serial, process):
            assert left.result.sample_size == right.result.sample_size
            assert np.array_equal(
                left.result.raw_bonus.values, right.result.raw_bonus.values
            )

    def test_process_falls_back_for_signatureless_objectives(self, population):
        """Custom objectives without a signature run in the parent, same results."""
        objective = _SignatureLessObjective(("protected",))
        assert objective.signature() is None
        specs = [FitSpec(seed=1, objective=objective), FitSpec(seed=2)]
        serial = _dca().fit_many(population, specs=specs)
        process = _dca().fit_many(population, specs=specs, executor="process")
        for left, right in zip(serial, process):
            assert np.array_equal(
                left.result.raw_bonus.values, right.result.raw_bonus.values
            )

    def test_process_falls_back_for_table_engine_jobs(self, population):
        """engine="table" jobs cannot ride the array plane; results still match."""
        specs = [
            FitSpec(seed=1, config=replace(FAST, engine="table")),
            FitSpec(seed=1),
        ]
        serial = _dca().fit_many(population, specs=specs)
        process = _dca().fit_many(population, specs=specs, executor="process")
        for left, right in zip(serial, process):
            assert np.array_equal(
                left.result.raw_bonus.values, right.result.raw_bonus.values
            )
        # And the table-engine job agrees with the array-engine job (the
        # engines are bitwise equivalent for the same seed).
        assert np.array_equal(
            process[0].result.raw_bonus.values, process[1].result.raw_bonus.values
        )


class TestObjectiveCache:
    def test_batch_compiles_each_signature_once(self, population):
        cache = CompiledObjectiveCache()
        dca = DCA(
            ["protected"], ColumnScore("score"), k=0.2, config=FAST, objective_cache=cache
        )
        dca.fit_many(population, seeds=(1, 2, 3, 4))
        assert cache.misses == 1
        assert cache.hits == 3
        assert len(cache) == 1

    def test_cache_persists_across_fit_many_calls(self, population):
        cache = CompiledObjectiveCache()
        dca = DCA(
            ["protected"], ColumnScore("score"), k=0.2, config=FAST, objective_cache=cache
        )
        dca.fit_many(population, ks=(0.1, 0.2))
        dca.fit_many(population, ks=(0.3, 0.4))
        assert cache.misses == 1
        assert cache.hits == 3

    def test_cached_results_identical_to_uncached(self, population):
        cached = DCA(
            ["protected"],
            ColumnScore("score"),
            k=0.2,
            config=FAST,
            objective_cache=CompiledObjectiveCache(),
        ).fit_many(population, seeds=(5, 6))
        plain = [
            DCA(
                ["protected"], ColumnScore("score"), k=0.2, config=replace(FAST, seed=seed)
            ).fit(population)
            for seed in (5, 6)
        ]
        for entry, solo in zip(cached, plain):
            assert np.array_equal(entry.result.raw_bonus.values, solo.raw_bonus.values)

    def test_distinct_populations_do_not_collide(self, population):
        cache = CompiledObjectiveCache()
        other = population.take(np.arange(population.num_rows // 2))
        dca = DCA(
            ["protected"], ColumnScore("score"), k=0.2, config=FAST, objective_cache=cache
        )
        dca.fit_many(population, seeds=(1,))
        dca.fit_many(other, seeds=(1,))
        assert cache.misses == 2
        assert len(cache) == 2

    def test_entries_evicted_when_population_dies(self, population):
        import gc

        cache = CompiledObjectiveCache()
        mortal = population.take(np.arange(500))
        DCA(
            ["protected"], ColumnScore("score"), k=0.2, config=FAST, objective_cache=cache
        ).fit_many(mortal, seeds=(1,))
        assert len(cache) == 1
        del mortal
        gc.collect()
        assert len(cache) == 0

    def test_direct_compile_entry_dies_with_table(self, population):
        """The weakref contract holds for direct cache.compile() use too."""
        import gc

        cache = CompiledObjectiveCache()
        mortal = population.take(np.arange(400))
        objective = DisparityObjective(("protected",)).fit(mortal)
        cache.compile(objective, mortal)
        assert (cache.hits, cache.misses, len(cache)) == (0, 1, 1)
        cache.compile(objective, mortal)
        assert (cache.hits, cache.misses, len(cache)) == (1, 1, 1)
        del mortal, objective
        gc.collect()
        assert len(cache) == 0

    def test_dead_entry_not_resurrected_by_signature_collision(self, population):
        """A dead table's cache slot must never serve a successor population.

        Populations are keyed by ``id()``, which CPython recycles
        aggressively: a table allocated right after another dies frequently
        lands on the same address.  An equal objective signature on such a
        successor must be a cache *miss* compiled against the new table —
        resurrecting the dead entry's arrays would silently evaluate the
        wrong population.
        """
        import gc

        cache = CompiledObjectiveCache()
        first = population.take(np.arange(300))
        objective = DisparityObjective(("protected",)).fit(first)
        dead_matrix = cache.compile(objective, first)._matrix.copy()
        dead_id = id(first)
        del first, objective
        gc.collect()
        assert len(cache) == 0

        # Hunt for an id() collision; even without one the assertions below
        # still pin the fresh-compile behavior.
        collided = False
        for start in range(50):
            successor = population.take(np.arange(start, start + 300))
            if id(successor) == dead_id:
                collided = True
                break
        objective = DisparityObjective(("protected",)).fit(successor)
        misses_before = cache.misses
        compiled = cache.compile(objective, successor)
        assert cache.misses == misses_before + 1  # fresh compile, not a stale hit
        expected = objective.compile(successor)._matrix
        assert np.array_equal(compiled._matrix, expected)
        if collided:  # the recycled id really did point at different data
            assert not np.array_equal(compiled._matrix, dead_matrix)
