"""Unit tests for repro.ranking.functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ranking import (
    ColumnScore,
    CompositeScore,
    NegatedColumnScore,
    RankDerivedScore,
    WeightedSumScore,
)
from repro.tabular import Table


@pytest.fixture
def table():
    return Table(
        {
            "gpa": [4.0, 2.0, 3.0],
            "test_scores": [300.0, 200.0, 250.0],
            "decile": [1.0, 10.0, 5.0],
        }
    )


class TestColumnScore:
    def test_passthrough(self, table):
        assert ColumnScore("gpa").scores(table).tolist() == [4.0, 2.0, 3.0]

    def test_attribute_names(self):
        assert ColumnScore("gpa").attribute_names == ("gpa",)

    def test_callable_protocol(self, table):
        assert ColumnScore("gpa")(table).tolist() == [4.0, 2.0, 3.0]

    def test_score_range(self, table):
        assert ColumnScore("gpa").score_range(table) == (2.0, 4.0)


class TestNegatedColumnScore:
    def test_lower_is_better(self, table):
        scores = NegatedColumnScore("decile").scores(table)
        # The defendant with decile 1 must rank best (largest score).
        assert np.argmax(scores) == 0
        assert np.argmin(scores) == 1


class TestWeightedSumScore:
    def test_requires_weights(self):
        with pytest.raises(ValueError):
            WeightedSumScore({})

    def test_normalized_weighted_sum(self, table):
        function = WeightedSumScore({"gpa": 0.5, "test_scores": 0.5}, scale=100.0)
        scores = function.scores(table)
        assert scores[0] == pytest.approx(100.0)  # best on both attributes
        assert scores[1] == pytest.approx(0.0)  # worst on both attributes
        assert 0.0 < scores[2] < 100.0

    def test_unnormalized_sum(self, table):
        function = WeightedSumScore({"gpa": 1.0}, normalize=False)
        assert function.scores(table).tolist() == [4.0, 2.0, 3.0]

    def test_constant_column_contributes_zero_when_normalized(self):
        table = Table({"a": [1.0, 1.0], "b": [0.0, 1.0]})
        function = WeightedSumScore({"a": 0.5, "b": 0.5})
        assert function.scores(table).tolist() == [0.0, 0.5]

    def test_weights_and_scale_exposed(self):
        function = WeightedSumScore({"gpa": 0.55, "test_scores": 0.45}, scale=100.0)
        assert function.weights == {"gpa": 0.55, "test_scores": 0.45}
        assert function.scale == 100.0

    def test_paper_rubric_ordering_matches_attributes(self, table):
        function = WeightedSumScore({"gpa": 0.55, "test_scores": 0.45})
        scores = function.scores(table)
        assert scores[0] > scores[2] > scores[1]


class TestRankDerivedScore:
    def test_scores_follow_base_order(self, table):
        base = ColumnScore("gpa")
        derived = RankDerivedScore(base, scale=10.0)
        scores = derived.scores(table)
        assert np.argmax(scores) == 0
        assert np.argmin(scores) == 1

    def test_scores_are_evenly_spaced(self, table):
        derived = RankDerivedScore(ColumnScore("gpa"), scale=3.0)
        scores = np.sort(derived.scores(table))
        spacing = np.diff(scores)
        assert np.allclose(spacing, spacing[0])

    def test_empty_table(self):
        derived = RankDerivedScore(ColumnScore("x"))
        assert derived.scores(Table({"x": []})).shape == (0,)


class TestCompositeScore:
    def test_sum_of_parts(self, table):
        composite = CompositeScore([ColumnScore("gpa"), ColumnScore("gpa")])
        assert composite.scores(table).tolist() == [8.0, 4.0, 6.0]

    def test_attribute_names_deduplicated(self, table):
        composite = CompositeScore([ColumnScore("gpa"), ColumnScore("gpa"), ColumnScore("decile")])
        assert composite.attribute_names == ("gpa", "decile")

    def test_requires_parts(self):
        with pytest.raises(ValueError):
            CompositeScore([])
