"""Golden-file regression test for ``repro-experiments run matching``.

The end-to-end admissions pipeline (per-school DCA fits → score planes →
deferred acceptance → demographics) is deterministic given its seeds.  This
test runs it at a small fixed size and compares the headline artefacts —
the representation gaps and the rank-of-match histogram — against a
checked-in JSON snapshot, so experiment-layer refactors (engine swaps,
``fit_many`` backend changes, plane reshuffles) cannot silently drift the
reported numbers.

If an *intentional* behaviour change moves the numbers, regenerate the
snapshot and review the diff::

    PYTHONPATH=src REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_experiments_golden.py

Match counts are compared exactly; the gap floats with a tight relative
tolerance (they survive BLAS rounding differences across machines, which
the integer-rounded bonus points absorb before they can flip a match).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.datasets import clear_dataset_cache
from repro.experiments import matching_admissions

GOLDEN_PATH = Path(__file__).parent / "data" / "matching_golden.json"

#: Pipeline configuration the snapshot was generated with.  Small enough to
#: run in seconds, large enough that every school admits a real class.
GOLDEN_CONFIG = {"num_students": 3_000, "num_schools": 3, "list_length": 3}


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


def _artefacts() -> dict:
    result = matching_admissions.run(**GOLDEN_CONFIG)
    return {
        "config": dict(GOLDEN_CONFIG),
        "representation_gap": result.table(
            "representation gap vs population (mean abs deviation)"
        ),
        "rank_of_match": result.table("rank of match"),
    }


def test_matching_pipeline_reproduces_golden_file():
    artefacts = _artefacts()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(artefacts, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    golden = json.loads(GOLDEN_PATH.read_text())

    assert artefacts["config"] == golden["config"], (
        "golden file was generated with a different configuration — "
        "regenerate it (REPRO_REGEN_GOLDEN=1) and review the diff"
    )
    # Rank-of-match histograms are integer counts: exact.
    assert artefacts["rank_of_match"] == golden["rank_of_match"]
    # Representation gaps are floats: tight relative tolerance.
    assert len(artefacts["representation_gap"]) == len(golden["representation_gap"])
    for observed, expected in zip(
        artefacts["representation_gap"], golden["representation_gap"]
    ):
        assert observed["series"] == expected["series"]
        assert observed["gap"] == pytest.approx(expected["gap"], rel=1e-9, abs=1e-12)


def test_golden_file_is_checked_in_and_well_formed():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert set(golden) == {"config", "rank_of_match", "representation_gap"}
    series = [row["series"] for row in golden["representation_gap"]]
    assert series == ["uncorrected rubric", "with bonus points"]
    for row in golden["rank_of_match"]:
        counted = sum(v for key, v in row.items() if key != "series")
        assert counted == golden["config"]["num_students"]
