"""Integration tests: the full school-admissions pipeline end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import quota_selection
from repro.core import (
    DCA,
    DisparityCalculator,
    LogDiscountedDisparityObjective,
)
from repro.metrics import ndcg_at_k, parity_report
from repro.ranking import selection_mask


@pytest.fixture(scope="module")
def fitted(school_cohorts, rubric, school_attributes, fast_dca_config):
    train, test = school_cohorts
    dca = DCA(school_attributes, rubric, k=0.05, config=fast_dca_config)
    return dca.fit(train.table)


class TestTrainTestGeneralization:
    def test_training_disparity_nearly_eliminated(self, school_cohorts, rubric, school_attributes, fitted):
        train, _ = school_cohorts
        calculator = DisparityCalculator(school_attributes).fit(train.table)
        scores = fitted.bonus.apply(train.table, rubric.scores(train.table))
        after = calculator.disparity(train.table, scores, 0.05)
        assert after.norm < 0.12

    def test_bonus_points_generalize_to_next_year(self, school_cohorts, rubric, school_attributes, fitted):
        _, test = school_cohorts
        calculator = DisparityCalculator(school_attributes).fit(test.table)
        base = rubric.scores(test.table)
        before = calculator.disparity(test.table, base, 0.05)
        after = calculator.disparity(test.table, fitted.bonus.apply(test.table, base), 0.05)
        assert after.norm < before.norm / 3

    def test_utility_stays_high(self, school_cohorts, rubric, fitted):
        _, test = school_cohorts
        base = rubric.scores(test.table)
        compensated = fitted.bonus.apply(test.table, base)
        assert ndcg_at_k(base, compensated, 0.05) > 0.85

    def test_bonus_magnitudes_reasonable(self, fitted):
        # On a 100-point rubric the paper's bonuses are between 1 and ~20 points.
        for name, value in fitted.as_dict().items():
            assert 0.0 <= value <= 40.0

    def test_selected_set_more_representative(self, school_cohorts, rubric, school_attributes, fitted):
        _, test = school_cohorts
        base = rubric.scores(test.table)
        compensated = fitted.bonus.apply(test.table, base)
        before = parity_report(test.table, base, ["low_income", "ell", "special_ed"], 0.05)
        after = parity_report(test.table, compensated, ["low_income", "ell", "special_ed"], 0.05)
        for attribute in ("low_income", "ell", "special_ed"):
            assert abs(after[attribute]["gap"]) < abs(before[attribute]["gap"])


class TestAgainstQuotaBaseline:
    def test_dca_beats_single_quota_overall(self, school_cohorts, rubric, school_attributes, fitted):
        _, test = school_cohorts
        base = rubric.scores(test.table)
        calculator = DisparityCalculator(school_attributes).fit(test.table)
        quota_mask = quota_selection(test.table, base, 0.05, "low_income")
        quota_norm = calculator.disparity_from_mask(test.table, quota_mask).norm
        dca_norm = calculator.disparity(
            test.table, fitted.bonus.apply(test.table, base), 0.05
        ).norm
        assert dca_norm < quota_norm


class TestLogDiscountedMode:
    def test_single_vector_works_across_k(self, school_cohorts, rubric, school_attributes, fast_dca_config):
        train, test = school_cohorts
        objective = LogDiscountedDisparityObjective(school_attributes)
        dca = DCA(school_attributes, rubric, k=0.5, objective=objective, config=fast_dca_config)
        fitted = dca.fit(train.table)
        calculator = DisparityCalculator(school_attributes).fit(test.table)
        base = rubric.scores(test.table)
        compensated = fitted.bonus.apply(test.table, base)
        for k in (0.1, 0.25, 0.5):
            before = calculator.disparity(test.table, base, k).norm
            after = calculator.disparity(test.table, compensated, k).norm
            assert after < before

    def test_selection_size_changes_with_bonus(self, school_cohorts, rubric, fitted):
        """Bonus points change who is selected, not how many are selected."""
        _, test = school_cohorts
        base = rubric.scores(test.table)
        compensated = fitted.bonus.apply(test.table, base)
        assert selection_mask(base, 0.05).sum() == selection_mask(compensated, 0.05).sum()
        assert not np.array_equal(selection_mask(base, 0.05), selection_mask(compensated, 0.05))
