"""Tests for the baseline fair-ranking algorithms (repro.baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DeltaTwoReranker,
    FairRanker,
    MultinomialFairRanker,
    MultinomialMTable,
    PrefixConstraints,
    adjusted_alpha,
    cartesian_subgroups,
    constraints_from_selection,
    delta_two_from_dca,
    fair_topk_mask,
    mtable,
    multi_quota_selection,
    quota_selection,
)
from repro.core import DisparityCalculator
from repro.ranking import selection_size
from repro.tabular import Table


@pytest.fixture
def biased_table():
    """40 objects; the 30%-protected group occupies the bottom of the ranking."""
    n = 40
    protected = np.zeros(n)
    protected[-12:] = 1.0  # bottom 12 objects are protected (30%)
    scores = np.arange(n, 0, -1, dtype=float)
    other = np.zeros(n)
    other[-6:] = 1.0  # an even rarer overlapping group
    return Table({"protected": protected, "other": other}), scores


class TestQuota:
    def test_reserved_share_met(self, biased_table):
        table, scores = biased_table
        mask = quota_selection(table, scores, 0.25, "protected", reserved_share=0.3)
        selected_protected = table.numeric("protected")[mask].sum()
        assert mask.sum() == 10
        assert selected_protected >= 3

    def test_default_share_is_population_share(self, biased_table):
        table, scores = biased_table
        mask = quota_selection(table, scores, 0.25, "protected")
        share = table.numeric("protected")[mask].mean()
        assert share == pytest.approx(0.3, abs=0.05)

    def test_quota_reduces_disparity(self, biased_table):
        table, scores = biased_table
        calculator = DisparityCalculator(["protected"]).fit(table)
        from repro.ranking import selection_mask

        before = calculator.disparity_from_mask(table, selection_mask(scores, 0.25))
        after = calculator.disparity_from_mask(
            table, quota_selection(table, scores, 0.25, "protected")
        )
        assert abs(after["protected"]) < abs(before["protected"])

    def test_remaining_seats_by_merit(self, biased_table):
        table, scores = biased_table
        mask = quota_selection(table, scores, 0.25, "protected", reserved_share=0.2)
        # The very best unprotected objects must still be selected.
        assert mask[0] and mask[1]

    def test_invalid_share(self, biased_table):
        table, scores = biased_table
        with pytest.raises(ValueError):
            quota_selection(table, scores, 0.25, "protected", reserved_share=1.5)

    def test_score_shape_check(self, biased_table):
        table, _ = biased_table
        with pytest.raises(ValueError):
            quota_selection(table, np.zeros(3), 0.25, "protected")

    def test_reserved_share_capped_by_group_size(self):
        table = Table({"flag": [1, 0, 0, 0]})
        mask = quota_selection(table, np.array([1.0, 4.0, 3.0, 2.0]), 0.75, "flag", reserved_share=1.0)
        assert mask.sum() == 3

    def test_multi_quota_covers_every_dimension(self, biased_table):
        table, scores = biased_table
        mask = multi_quota_selection(table, scores, 0.25, ["protected", "other"])
        protected_share = table.numeric("protected")[mask].mean()
        other_share = table.numeric("other")[mask].mean()
        assert protected_share >= 0.2
        assert other_share >= 0.1

    def test_multi_quota_requires_attributes(self, biased_table):
        table, scores = biased_table
        with pytest.raises(ValueError):
            multi_quota_selection(table, scores, 0.25, {})

    def test_multi_quota_selection_size(self, biased_table):
        table, scores = biased_table
        mask = multi_quota_selection(table, scores, 0.25, ["protected"])
        assert mask.sum() == selection_size(table.num_rows, 0.25)


class TestFairBinomial:
    def test_mtable_monotone_in_prefix(self):
        table = mtable(50, 0.3, 0.1)
        assert len(table) == 50
        assert np.all(np.diff(table) >= 0)

    def test_mtable_bounds(self):
        table = mtable(20, 0.5, 0.1)
        assert table[0] in (0, 1)
        assert table[-1] <= 20

    def test_mtable_stricter_alpha_means_weaker_requirement(self):
        lenient = mtable(50, 0.3, 0.5)
        strict = mtable(50, 0.3, 0.01)
        assert np.all(strict <= lenient)

    def test_mtable_validation(self):
        with pytest.raises(ValueError):
            mtable(0, 0.3, 0.1)
        with pytest.raises(ValueError):
            mtable(10, 0.0, 0.1)
        with pytest.raises(ValueError):
            mtable(10, 0.3, 1.0)

    def test_adjusted_alpha_is_smaller(self):
        corrected = adjusted_alpha(30, 0.3, 0.1, trials=500, seed=1)
        assert 0.0 < corrected <= 0.1

    def test_reranker_satisfies_mtable(self, biased_table):
        table, scores = biased_table
        protected = table.numeric("protected") > 0.5
        ranker = FairRanker(target_proportion=0.3, alpha=0.1)
        chosen = ranker.rerank(scores, protected, 20)
        minima = mtable(20, 0.3, 0.1)
        counts = np.cumsum(protected[chosen])
        assert np.all(counts >= minima)

    def test_reranker_without_pressure_is_merit_order(self):
        scores = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        protected = np.array([True, False, True, False, False])
        ranker = FairRanker(target_proportion=0.4, alpha=0.1)
        chosen = ranker.rerank(scores, protected, 3)
        assert chosen.tolist() == [0, 1, 2]

    def test_reranker_validation(self):
        ranker = FairRanker(target_proportion=0.3)
        with pytest.raises(ValueError):
            ranker.rerank(np.zeros(3), np.zeros(4, dtype=bool), 2)
        with pytest.raises(ValueError):
            ranker.rerank(np.zeros(3), np.zeros(3, dtype=bool), 0)

    def test_fair_topk_mask(self, biased_table):
        table, scores = biased_table
        mask = fair_topk_mask(table, scores, "protected", 10, alpha=0.1)
        assert mask.sum() == 10
        assert table.numeric("protected")[mask].sum() >= 1


class TestMultinomialFair:
    def test_mtable_estimate_monotone(self):
        estimate = MultinomialMTable.estimate(30, {"g1": 0.2, "g2": 0.1}, alpha=0.1, trials=1_000)
        assert estimate.minima.shape == (30, 2)
        assert np.all(np.diff(estimate.minima, axis=0) >= 0)

    def test_mtable_estimate_validation(self):
        with pytest.raises(ValueError):
            MultinomialMTable.estimate(0, {"g": 0.2})
        with pytest.raises(ValueError):
            MultinomialMTable.estimate(10, {"g": 0.0})
        with pytest.raises(ValueError):
            MultinomialMTable.estimate(10, {"a": 0.6, "b": 0.6})

    def test_required_counts_lookup(self):
        estimate = MultinomialMTable.estimate(10, {"g": 0.3}, alpha=0.2, trials=500)
        required = estimate.required(10)
        assert set(required) == {"g"}
        with pytest.raises(ValueError):
            estimate.required(11)

    def test_reranker_meets_minimum_counts(self, biased_table):
        table, scores = biased_table
        groups = {
            "protected_only": (table.numeric("protected") > 0.5) & ~(table.numeric("other") > 0.5),
            "other": table.numeric("other") > 0.5,
        }
        proportions = {name: float(mask.mean()) for name, mask in groups.items()}
        ranker = MultinomialFairRanker(proportions=proportions, alpha=0.1, trials=1_000, seed=0)
        chosen = ranker.rerank(scores, groups, 20)
        assert len(chosen) == 20
        minima = ranker._mtable(20).minima
        for g, name in enumerate(ranker._mtable(20).group_names):
            counts = np.cumsum(groups[name][chosen])
            assert np.all(counts >= minima[:, g])

    def test_reranker_rejects_overlapping_groups(self, biased_table):
        table, scores = biased_table
        groups = {
            "protected": table.numeric("protected") > 0.5,
            "other": table.numeric("other") > 0.5,  # subset of protected -> overlap
        }
        ranker = MultinomialFairRanker(proportions={"protected": 0.3, "other": 0.15})
        with pytest.raises(ValueError):
            ranker.rerank(scores, groups, 10)

    def test_reranker_missing_group(self, biased_table):
        table, scores = biased_table
        ranker = MultinomialFairRanker(proportions={"missing": 0.2})
        with pytest.raises(ValueError):
            ranker.rerank(scores, {}, 5)

    def test_rerank_mask_size(self, biased_table):
        table, scores = biased_table
        groups = {"protected_only": (table.numeric("protected") > 0.5) & ~(table.numeric("other") > 0.5)}
        ranker = MultinomialFairRanker(proportions={"protected_only": 0.15}, trials=500)
        mask = ranker.rerank_mask(scores, groups, 12)
        assert mask.sum() == 12

    def test_cartesian_subgroups_disjoint(self, biased_table):
        table, _ = biased_table
        subgroups = cartesian_subgroups(table, ["protected", "other"], top=3)
        masks = list(subgroups.values())
        total = np.zeros(table.num_rows, dtype=int)
        for mask in masks:
            total += mask.astype(int)
        assert total.max() <= 1  # disjoint
        assert all(mask.any() for mask in masks)

    def test_cartesian_subgroups_prefers_intersections(self, biased_table):
        table, _ = biased_table
        subgroups = cartesian_subgroups(table, ["protected", "other"], top=1)
        assert list(subgroups) == ["protected&other"]

    def test_cartesian_requires_attributes(self, biased_table):
        table, _ = biased_table
        with pytest.raises(ValueError):
            cartesian_subgroups(table, [])


class TestDeltaTwo:
    def test_constraints_from_selection_shape(self, biased_table):
        table, scores = biased_table
        selected = np.zeros(table.num_rows, dtype=bool)
        selected[:10] = True
        constraints = constraints_from_selection(table, selected, ["protected"], 10)
        assert constraints.k == 10
        assert constraints.maxima.shape == (10, 1)
        assert np.all(np.diff(constraints.maxima[:, 0]) >= 0)

    def test_constraints_validation(self, biased_table):
        table, _ = biased_table
        with pytest.raises(ValueError):
            constraints_from_selection(table, np.zeros(3, dtype=bool), ["protected"], 10)
        with pytest.raises(ValueError):
            constraints_from_selection(table, np.zeros(table.num_rows, dtype=bool), ["protected"], 0)
        with pytest.raises(ValueError):
            PrefixConstraints(("a",), np.zeros((3, 2)))

    def test_reranker_respects_group_caps(self, biased_table):
        table, scores = biased_table
        # Allow at most 2 unprotected objects in the top 10 (force protected in).
        maxima = np.column_stack([np.full(10, 10), np.minimum(np.arange(1, 11), 2)])
        constraints = PrefixConstraints(("protected", "unprotected"), maxima)
        augmented = table.with_column("unprotected", 1.0 - table.numeric("protected"))
        chosen = DeltaTwoReranker(constraints).rerank(augmented, scores)
        unprotected_count = (augmented.numeric("unprotected")[chosen] > 0.5).sum()
        assert unprotected_count <= 2
        assert len(chosen) == 10

    def test_reranker_fills_k_even_when_constraints_bind(self, biased_table):
        table, scores = biased_table
        # Impossible constraint: zero objects of either kind allowed; the
        # reranker falls back to best-effort and still returns k items.
        maxima = np.zeros((5, 1), dtype=int)
        constraints = PrefixConstraints(("protected",), maxima)
        chosen = DeltaTwoReranker(constraints).rerank(table, scores)
        assert len(chosen) == 5

    def test_unconstrained_equals_merit_order(self, biased_table):
        table, scores = biased_table
        maxima = np.full((10, 1), 100, dtype=int)
        constraints = PrefixConstraints(("protected",), maxima)
        chosen = DeltaTwoReranker(constraints).rerank(table, scores)
        assert chosen.tolist() == list(range(10))

    def test_delta_two_from_dca_matches_dca_composition(self, biased_table):
        table, base_scores = biased_table
        # Pretend DCA gave every protected object a large bonus.
        compensated = base_scores + 100.0 * table.numeric("protected")
        mask = delta_two_from_dca(table, base_scores, compensated, ["protected"], 0.25)
        assert mask.sum() == selection_size(table.num_rows, 0.25)
        protected_selected = table.numeric("protected")[mask].sum()
        # DCA's selection is dominated by protected objects; (Δ+2) is capped at
        # that composition, so it cannot select more protected objects than DCA.
        from repro.ranking import selection_mask

        dca_protected = table.numeric("protected")[selection_mask(compensated, 0.25)].sum()
        assert protected_selected <= dca_protected

    def test_score_shape_check(self, biased_table):
        table, _ = biased_table
        constraints = PrefixConstraints(("protected",), np.full((5, 1), 5, dtype=int))
        with pytest.raises(ValueError):
            DeltaTwoReranker(constraints).rerank(table, np.zeros(3))
