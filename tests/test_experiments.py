"""Tests for the experiment harness, settings, experiment modules, and CLI.

The experiment modules are exercised at reduced scale (small synthetic
cohorts, short k grids) — the goal here is to verify that every paper
artefact can be regenerated and that the headline qualitative findings hold,
not to re-run the full-scale benchmarks (that is what ``benchmarks/`` does).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import clear_dataset_cache
from repro.experiments import (
    EXPERIMENT_RUNNERS,
    CompasSetting,
    ExperimentResult,
    SchoolSetting,
    format_table,
)
from repro.experiments import (
    exposure_ddp,
    fig1_ndcg,
    matching_admissions,
    fig2_fig3_proportion,
    fig4_vary_k,
    fig5_caps,
    fig6_quota,
    fig7_delta2,
    fig8_refinement,
    fig9_disparate_impact,
    fig10_compas,
    table1,
    table2,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.harness import get_experiment, register_experiment

SMALL = 8_000  # cohort size used for experiment smoke tests
SHORT_SWEEP = (0.05, 0.2, 0.5)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


class TestHarness:
    def test_format_table_alignment(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 22.5, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_experiment_result_accessors(self):
        result = ExperimentResult("x", "desc")
        result.add_table("t", [{"a": 1}])
        result.add_note("note")
        assert result.table("t") == [{"a": 1}]
        with pytest.raises(KeyError):
            result.table("missing")
        formatted = result.format()
        assert "x" in formatted and "note" in formatted

    def test_register_and_get_experiment(self):
        register_experiment("dummy", lambda: ExperimentResult("dummy", ""))
        assert get_experiment("dummy")().name == "dummy"
        with pytest.raises(KeyError):
            get_experiment("never-registered")
        with pytest.raises(ValueError):
            register_experiment("", lambda: None)

    def test_runner_registry_covers_all_paper_artifacts(self):
        expected = {"table1", "table2", "fig1", "fig2_fig3", "fig4", "fig5", "fig6",
                    "fig7", "fig8", "fig9", "fig10", "exposure_ddp", "ablations"}
        assert expected.issubset(set(EXPERIMENT_RUNNERS))


class TestSettings:
    def test_school_setting_caches_scores(self):
        setting = SchoolSetting(num_students=SMALL)
        first = setting.base_scores("train")
        second = setting.base_scores("train")
        assert first is second
        with pytest.raises(ValueError):
            setting.cohort("validation")

    def test_compas_setting_basics(self):
        setting = CompasSetting(num_defendants=2_000)
        assert setting.table.num_rows == 2_000
        assert setting.base_scores().shape == (2_000,)


class TestSchoolExperiments:
    def test_table1_shape_holds(self):
        result = table1.run(num_students=SMALL)
        baseline = result.table("baseline disparity")
        dca_rows = result.table("DCA (with refinement)")
        assert baseline[0]["norm"] > 0.25
        # Last two rows are train/test disparities after compensation.
        assert dca_rows[1]["norm"] < baseline[0]["norm"] / 3
        assert dca_rows[2]["norm"] < baseline[1]["norm"] / 3

    def test_fig1_ndcg_stays_high(self):
        result = fig1_ndcg.run(num_students=SMALL, k_values=SHORT_SWEEP)
        rows = result.table("fig 1: nDCG@k")
        assert len(rows) == len(SHORT_SWEEP)
        assert all(row["ndcg"] > 0.8 for row in rows)

    def test_fig2_fig3_tradeoff_monotone_ends(self):
        result = fig2_fig3_proportion.run(
            num_students=SMALL, proportions=[0.0, 0.5, 1.0]
        )
        fig2 = result.table("fig 2: nDCG and disparity norm vs proportion")
        assert fig2[0]["ndcg"] == pytest.approx(1.0)
        assert fig2[-1]["disparity_norm"] < fig2[0]["disparity_norm"]
        fig3 = result.table("fig 3: per-attribute disparity vs proportion")
        assert set(fig3[0]) >= {"proportion", "low_income", "ell", "special_ed", "norm"}

    def test_fig4_regimes_ordered_as_expected(self):
        result = fig4_vary_k.run(num_students=SMALL, k_values=SHORT_SWEEP, assumed_k=0.05)
        per_k = {row["k"]: row["norm"] for row in result.table("fig 4a: k known in advance")}
        baseline = {row["k"]: row["norm"] for row in result.table("baseline (no bonus)")}
        for k in SHORT_SWEEP:
            assert per_k[k] < baseline[k]
        fixed = {row["k"]: row["norm"] for row in result.table("fig 4b: bonus optimized for k=5%")}
        assert fixed[0.05] < baseline[0.05] / 2

    def test_fig5_larger_caps_reduce_disparity(self):
        result = fig5_caps.run(num_students=SMALL, caps=(0.0, 5.0, 20.0), max_k=0.3)
        rows = result.table("fig 5: discounted disparity vs max bonus")
        assert rows[0]["norm"] > rows[-1]["norm"]

    def test_fig6_quota_helps_but_less_than_dca(self):
        quota = fig6_quota.run(num_students=SMALL, k_values=(0.05,))
        quota_norm = quota.table("fig 6: quota-system disparity")[0]["norm"]
        dca = table1.run(num_students=SMALL)
        dca_norm = dca.table("DCA (with refinement)")[2]["norm"]
        baseline_norm = dca.table("baseline disparity")[1]["norm"]
        assert quota_norm < baseline_norm
        assert dca_norm < quota_norm

    def test_fig7_delta2_comparable_to_dca(self):
        result = fig7_delta2.run(num_students=SMALL, proportions=[1.0])
        rows = result.table("fig 7: DCA vs (Δ+2)")
        by_method = {row["method"]: row for row in rows}
        assert by_method["(Δ+2)"]["disparity_norm"] <= by_method["DCA"]["disparity_norm"] + 0.1
        assert by_method["(Δ+2)"]["ndcg"] > 0.8

    def test_fig8_refinement_not_worse(self):
        result = fig8_refinement.run(
            num_students=SMALL, k_values=(0.05, 0.3), use_rule_based_sample_size=False
        )
        rows = result.table("fig 8a: disparity with and without refinement")
        unrefined = [r["norm"] for r in rows if r["series"].startswith("Core")]
        refined = [r["norm"] for r in rows if r["series"].startswith("DCA")]
        assert np.mean(refined) <= np.mean(unrefined) + 0.02
        timings = result.table("fig 8b: runtime with and without refinement")
        assert all(row["refined_seconds"] >= row["unrefined_seconds"] * 0.5 for row in timings)

    def test_fig9_both_objectives_reduce_both_metrics(self):
        result = fig9_disparate_impact.run(num_students=SMALL, k_values=(0.05, 0.3))
        rows = result.table("fig 9: disparity vs disparate impact optimization")
        assert {row["series"] for row in rows} == {"disparity-driven", "DI-driven"}
        assert all(row["disparity_norm"] < 0.35 for row in rows)

    def test_table2_dca_beats_multinomial_fair(self):
        setting_result = table2.run(num_students=30_000, district=20)
        rows = {row["method"]: row for row in setting_result.table("table II")}
        assert rows["DCA"]["norm"] < rows["Baseline"]["norm"]
        assert rows["Multinomial FA*IR"]["norm"] < rows["Baseline"]["norm"]
        assert rows["DCA"]["norm"] <= rows["Multinomial FA*IR"]["norm"] + 0.05

    def test_exposure_ddp_reduced(self):
        result = exposure_ddp.run(num_students=SMALL, max_k=0.3)
        rows = result.table("DDP before/after")
        assert rows[1]["ddp"] < rows[0]["ddp"]
        # Regression: the experiment compares each protected group against
        # its complement — the reported baseline must equal a direct DDP
        # computation with the complement masks included (and member-only
        # DDP is strictly smaller here, so the fix is observable).
        from repro.metrics import ddp

        setting = SchoolSetting(num_students=SMALL)
        attributes = ("low_income", "ell", "special_ed")
        scores = setting.base_scores("test")
        expected = ddp(setting.test.table, scores, attributes, include_complements=True)
        assert rows[0]["ddp"] == pytest.approx(expected)
        assert ddp(setting.test.table, scores, attributes) < expected

    def test_matching_setting_rejects_bad_knobs_before_fitting(self):
        # A typo'd engine/proposing must fail at construction, not after the
        # per-school DCA fits have already burned minutes at district scale.
        with pytest.raises(ValueError, match="unknown engine"):
            matching_admissions.MatchingSetting(num_students=4_000, engine="vectro")
        with pytest.raises(ValueError, match="unknown proposing side"):
            matching_admissions.MatchingSetting(num_students=4_000, proposing="school")

    def test_matching_admissions_pipeline_school_proposing_vector(self):
        # The school-optimal variant on the round-based engine runs the whole
        # pipeline; the headline demographics finding must hold there too.
        result = matching_admissions.run(
            num_students=SMALL,
            num_schools=4,
            list_length=4,
            engine="vector",
            proposing="schools",
        )
        gaps = {
            row["series"]: row["gap"]
            for row in result.table("representation gap vs population (mean abs deviation)")
        }
        assert gaps["with bonus points"] < gaps["uncorrected rubric"] / 2
        assert any("proposing=schools" in note for note in result.notes)

    def test_matching_admissions_pipeline(self):
        result = matching_admissions.run(num_students=SMALL, num_schools=4, list_length=4)
        gaps = {
            row["series"]: row["gap"]
            for row in result.table("representation gap vs population (mean abs deviation)")
        }
        # The headline finding: bonus points pull every school's admitted
        # class toward the population shares.
        assert gaps["with bonus points"] < gaps["uncorrected rubric"] / 2
        for label in (
            "admitted demographics (uncorrected rubric)",
            "admitted demographics (with bonus points)",
        ):
            rows = result.table(label)
            assert len(rows) == 4
            assert all(row["admitted"] <= row["seats"] for row in rows)
        ranks = result.table("rank of match")
        for row in ranks:
            matched_and_unmatched = sum(v for key, v in row.items() if key != "series")
            assert matched_and_unmatched == SMALL


class TestCompasExperiment:
    def test_fig10_disparity_and_fpr_improve(self):
        result = fig10_compas.run(num_defendants=3_000, k_values=(0.2, 0.4))
        baseline = {row["k"]: row["norm"] for row in result.table("baseline disparity")}
        per_k = {row["k"]: row["norm"] for row in result.table("fig 10a: disparity with per-k bonuses")}
        assert all(per_k[k] < baseline[k] for k in (0.2, 0.4))
        log_rows = result.table("fig 10c: disparity with one log-discounted bonus vector")
        assert any(row["norm"] < baseline[row["k"]] for row in log_rows)


class TestCLI:
    def test_list_command(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig10" in out

    def test_run_unknown_experiment(self, capsys):
        assert cli_main(["run", "nope"]) == 2

    def test_run_experiment_to_file(self, tmp_path, capsys):
        output = tmp_path / "result.txt"
        code = cli_main(["run", "fig6", "--num-students", str(SMALL), "--output", str(output)])
        assert code == 0
        assert "quota" in output.read_text()

    def test_run_matching_experiment(self, tmp_path, capsys):
        # The end-to-end DCA -> match -> demographics pipeline under the CLI.
        output = tmp_path / "matching.txt"
        code = cli_main(["run", "matching", "--num-students", "4000", "--output", str(output)])
        assert code == 0
        text = output.read_text()
        assert "admitted demographics" in text
        assert "rank of match" in text

    def test_run_matching_both_variants_from_cli(self, tmp_path, capsys):
        # Both proposing sides run end-to-end from the command line, on the
        # vector engine; the school-optimal match can only make students
        # (weakly) worse off, which shows up as fewer first choices.
        first_choices = {}
        for proposing in ("students", "schools"):
            output = tmp_path / f"matching-{proposing}.txt"
            code = cli_main(
                [
                    "run",
                    "matching",
                    "--num-students",
                    "4000",
                    "--engine",
                    "vector",
                    "--proposing",
                    proposing,
                    "--output",
                    str(output),
                ]
            )
            assert code == 0
            text = output.read_text()
            assert f"proposing={proposing}" in text
            assert "engine=vector" in text
            lines = text.splitlines()
            section = lines.index("-- rank of match --")
            baseline_row = next(
                line for line in lines[section:] if line.startswith("uncorrected rubric")
            )
            first_choices[proposing] = int(baseline_row.split("|")[1])
        assert first_choices["schools"] <= first_choices["students"]

    def test_cli_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "matching", "--engine", "quantum"])
        with pytest.raises(SystemExit):
            cli_main(["run", "matching", "--proposing", "teachers"])
