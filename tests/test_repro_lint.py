"""Meta-tests for ``repro-lint``: every rule proven in both directions.

The fixture corpus under ``tests/data/lint_fixtures/`` carries
``# LINT-EXPECT: <RULE>`` markers on each line a rule must flag.  One
parametrized test asserts that the findings for each fixture equal its
marker set *exactly* — so known-bad fixtures prove detection and
known-good fixtures (no markers) prove the absence of false positives.

The remaining tests cover the CLI contract (exit codes, GitHub
annotations, rule selection) and the acceptance bar: the real source tree
lints clean.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_RULES,
    lint_source,
    run_lint,
    rules_by_id,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "data" / "lint_fixtures"

_EXPECT = re.compile(r"#\s*LINT-EXPECT:\s*([A-Za-z0-9_,\s]+)")


def _expected_findings(path: Path) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            for rule_id in match.group(1).split(","):
                expected.add((number, rule_id.strip()))
    return expected


def _cli(*argv: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )


ALL_FIXTURES = sorted(FIXTURES.rglob("*.py"))


def test_fixture_corpus_is_complete() -> None:
    """Every rule has at least one known-bad and one known-good fixture."""
    assert ALL_FIXTURES, "fixture corpus missing"
    flagged_rules = {rule for path in ALL_FIXTURES for _, rule in _expected_findings(path)}
    assert flagged_rules == {rule.id for rule in DEFAULT_RULES}
    good = [path for path in ALL_FIXTURES if not _expected_findings(path)]
    assert {
        "r1_good.py",
        "r2_good.py",
        "r3_good.py",
        "r4_good.py",
        "r5_good.py",
        "r6_good.py",
    } <= {path.name for path in good}


@pytest.mark.parametrize(
    "fixture",
    ALL_FIXTURES,
    ids=[str(path.relative_to(FIXTURES)) for path in ALL_FIXTURES],
)
def test_findings_match_markers_exactly(fixture: Path) -> None:
    """Bad fixtures are fully flagged; good fixtures produce zero findings."""
    actual = {(f.line, f.rule) for f in run_lint([fixture])}
    assert actual == _expected_findings(fixture)


def test_disable_comment_suppresses_findings() -> None:
    """``r1_disabled.py`` repeats a real violation under a disable comment."""
    disabled = FIXTURES / "core" / "r1_disabled.py"
    assert run_lint([disabled]) == []
    # The identical source *without* the disable comment is flagged —
    # proving the fixture's cleanliness comes from the comment alone.
    stripped = disabled.read_text().replace("# repro-lint: disable=R1", "")
    findings = lint_source(stripped, path="core/r1_disabled.py")
    assert [finding.rule for finding in findings] == ["R1"]


def test_disable_comment_suppresses_project_rule_findings() -> None:
    """The same-line escape hatch works for the interprocedural R5 too."""
    disabled = FIXTURES / "r5_disabled.py"
    assert run_lint([disabled]) == []
    stripped = disabled.read_text().replace("# repro-lint: disable=R5", "")
    findings = lint_source(stripped, path="r5_disabled.py")
    assert [finding.rule for finding in findings] == ["R5"]


def test_hot_path_gating() -> None:
    """R1 fires under the hot directories (scenarios included since PR 8)."""
    source = "import numpy as np\n\n\ndef draw():\n    return np.random.rand(3)\n"
    assert [f.rule for f in lint_source(source, path="repro/core/demo.py")] == ["R1"]
    assert [f.rule for f in lint_source(source, path="repro/baselines/demo.py")] == ["R1"]
    assert [f.rule for f in lint_source(source, path="repro/experiments/demo.py")] == ["R1"]
    assert [f.rule for f in lint_source(source, path="repro/scenarios/demo.py")] == ["R1"]
    assert lint_source(source, path="repro/tabular/demo.py") == []


def test_interprocedural_findings_carry_call_chains() -> None:
    """R5/R6 messages name the path that connects entry to violation."""
    r5 = {f.line: f.message for f in run_lint([FIXTURES / "r5_bad.py"])}
    assert "[reached via r5_bad.fit -> r5_bad._entropy_stream]" in r5[19]
    assert "[reached via r5_bad._shard_worker_step -> r5_bad._fork_stream]" in r5[39]
    r6 = {f.line: f.message for f in run_lint([FIXTURES / "r6_bad.py"])}
    assert "[write path: _shard_worker_step]" in r6[14]
    assert "[write path: _shard_worker_step -> _flush]" in r6[22]


def test_rule_selection_and_registry() -> None:
    assert [rule.id for rule in DEFAULT_RULES] == ["R1", "R2", "R3", "R4", "R5", "R6"]
    assert [rule.id for rule in rules_by_id(["R3", "R1"])] == ["R3", "R1"]
    with pytest.raises(KeyError):
        rules_by_id(["R9"])
    # Selecting only R2 must silence the R1 fixture entirely.
    r1_bad = FIXTURES / "core" / "r1_bad.py"
    assert run_lint([r1_bad], rules=rules_by_id(["R2"])) == []


def test_findings_are_sorted_and_formatted() -> None:
    findings = run_lint([FIXTURES])
    ordered = [(f.path, f.line, f.rule) for f in findings]
    assert ordered == sorted(ordered)
    sample = findings[0]
    assert sample.format("text") == (
        f"{sample.path}:{sample.line}: {sample.rule} {sample.message}"
    )
    github = sample.format("github")
    assert github.startswith(f"::error file={sample.path},line={sample.line},")
    assert sample.message in github


def test_cli_exit_codes_and_output() -> None:
    bad = _cli(str(FIXTURES / "core" / "r1_bad.py"))
    assert bad.returncode == 1
    assert " R1 " in bad.stdout
    good = _cli(str(FIXTURES / "core" / "r1_good.py"))
    assert good.returncode == 0
    assert good.stdout == ""


def test_cli_github_format() -> None:
    result = _cli(str(FIXTURES / "r2_bad.py"), "--format=github")
    assert result.returncode == 1
    lines = result.stdout.strip().splitlines()
    assert lines and all(line.startswith("::error file=") for line in lines)


def test_cli_sarif_format() -> None:
    import json

    result = _cli(str(FIXTURES / "r5_bad.py"), "--format=sarif")
    assert result.returncode == 1
    log = json.loads(result.stdout)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert {rule["id"] for rule in run["tool"]["driver"]["rules"]} >= {"R5", "R6"}
    assert run["results"], "expected findings in the SARIF log"
    sample = run["results"][0]
    assert sample["ruleId"] == "R5"
    location = sample["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("r5_bad.py")
    assert location["region"]["startLine"] > 0
    # A clean tree emits a valid, empty-results log and exits 0.
    clean = _cli(str(FIXTURES / "r5_good.py"), "--format=sarif")
    assert clean.returncode == 0
    assert json.loads(clean.stdout)["runs"][0]["results"] == []


def test_cli_baseline_round_trip(tmp_path: Path) -> None:
    """--write-baseline records findings; --baseline suppresses exactly those."""
    baseline = tmp_path / "baseline.json"
    bad = str(FIXTURES / "r6_bad.py")
    wrote = _cli(bad, "--write-baseline", str(baseline))
    assert wrote.returncode == 0
    assert baseline.exists()
    suppressed = _cli(bad, "--baseline", str(baseline))
    assert suppressed.returncode == 0
    assert suppressed.stdout == ""
    # A file with findings NOT in the baseline still fails.
    fresh = _cli(bad, str(FIXTURES / "r5_bad.py"), "--baseline", str(baseline))
    assert fresh.returncode == 1
    assert "R5" in fresh.stdout and " R6 " not in fresh.stdout


def test_cli_baseline_rejects_bad_file(tmp_path: Path) -> None:
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"schema": 99, "findings": []}')
    result = _cli(str(FIXTURES / "r6_bad.py"), "--baseline", str(bogus))
    assert result.returncode == 2
    assert "baseline" in result.stderr


def test_cli_list_rules_and_bad_rule_id() -> None:
    listing = _cli("--list-rules")
    assert listing.returncode == 0
    for rule in DEFAULT_RULES:
        assert rule.id in listing.stdout
    unknown = _cli("--rules", "R9", "src/repro")
    assert unknown.returncode == 2


def test_exclude_prunes_paths() -> None:
    findings = run_lint([FIXTURES], exclude=[FIXTURES / "core"])
    assert findings and all("core" not in Path(f.path).parts for f in findings)
    result = _cli("tests/data/lint_fixtures/core", "--exclude", "tests/data/lint_fixtures/core")
    assert result.returncode == 0
    assert result.stdout == ""


def test_source_tree_is_clean() -> None:
    """The acceptance bar: the shipped tree audits clean, tests included."""
    targets = [REPO_ROOT / part for part in ("src/repro", "examples", "benchmarks", "tests")]
    findings = run_lint(targets, exclude=[FIXTURES])
    assert findings == [], "\n".join(finding.format() for finding in findings)
