"""Seed-for-seed equivalence of the array-plane and legacy table DCA engines.

The array engine (``DCAConfig(engine="array")``, the default) must be a pure
re-plumbing of the table engine (``engine="table"``): both consume the RNG
identically and perform the same arithmetic on the same values, so for any
seed the produced bonus vectors are required to be *bitwise* identical — not
merely close.  These tests pin that contract for every phase class and for
every built-in objective, plus a custom table-only objective exercising the
compiled fallback wrapper.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    DCA,
    CoreDCA,
    DCAConfig,
    DCARefinement,
    DisparateImpactObjective,
    DisparityObjective,
    DisparityResult,
    ExposureGapObjective,
    FairnessObjective,
    FalsePositiveRateObjective,
    FullDCA,
    LogDiscountedDisparityObjective,
)
from repro.ranking import ColumnScore
from repro.tabular import Table


def _engine_pair(config: DCAConfig) -> tuple[DCAConfig, DCAConfig]:
    return replace(config, engine="array"), replace(config, engine="table")


@pytest.fixture(scope="module")
def school_setup(school_train, rubric, school_attributes):
    return school_train.table, rubric, school_attributes


class TestSchoolDatasetEquivalence:
    """The acceptance setting: the school cohort, both engines, every phase."""

    CONFIG = DCAConfig(seed=17, iterations=40, refinement_iterations=60, sample_size=400)

    def test_core_dca_identical(self, school_setup):
        table, rubric, attributes = school_setup
        values = {}
        for config in _engine_pair(self.CONFIG):
            objective = DisparityObjective(attributes).fit(table)
            core = CoreDCA(table, rubric, objective, k=0.05, config=config)
            values[config.engine], _ = core.run()
        assert np.array_equal(values["array"], values["table"])

    def test_refinement_identical(self, school_setup):
        table, rubric, attributes = school_setup
        initial = np.asarray([1.0, 5.0, 3.0, 2.0][: len(attributes)], dtype=float)
        values = {}
        for config in _engine_pair(self.CONFIG):
            objective = DisparityObjective(attributes).fit(table)
            refinement = DCARefinement(table, rubric, objective, k=0.05, config=config)
            values[config.engine], _ = refinement.run(initial)
        assert np.array_equal(values["array"], values["table"])

    def test_full_dca_identical(self, school_setup):
        table, rubric, attributes = school_setup
        config = DCAConfig(seed=5, iterations=15, refinement_iterations=0)
        results = {}
        for variant in _engine_pair(config):
            full = FullDCA(attributes, rubric, k=0.05, config=variant)
            results[variant.engine] = full.fit(table)
        assert np.array_equal(
            results["array"].raw_bonus.values, results["table"].raw_bonus.values
        )
        assert results["array"].as_dict() == results["table"].as_dict()

    def test_dca_facade_identical_end_to_end(self, school_setup):
        table, rubric, attributes = school_setup
        results = {}
        for config in _engine_pair(self.CONFIG):
            results[config.engine] = DCA(attributes, rubric, k=0.05, config=config).fit(table)
        array, legacy = results["array"], results["table"]
        assert np.array_equal(array.core_bonus.values, legacy.core_bonus.values)
        assert np.array_equal(array.raw_bonus.values, legacy.raw_bonus.values)
        assert np.array_equal(array.bonus.values, legacy.bonus.values)
        for trace_a, trace_t in zip(array.traces, legacy.traces):
            assert trace_a.phase == trace_t.phase
            assert np.array_equal(trace_a.bonus_history, trace_t.bonus_history)
            assert np.array_equal(trace_a.objective_norms, trace_t.objective_norms)


def _synthetic_population(n: int = 2500, seed: int = 3) -> Table:
    rng = np.random.default_rng(seed)
    group_a = (rng.uniform(size=n) < 0.25).astype(float)
    group_b = (rng.uniform(size=n) < 0.6).astype(float)
    label = (rng.uniform(size=n) < 0.4).astype(float)
    score = rng.normal(10.0, 2.0, size=n) - 1.5 * group_a - 0.5 * group_b
    return Table(
        {"score": score, "group_a": group_a, "group_b": group_b, "label": label}
    )


class TestObjectiveEquivalence:
    """Every built-in objective compiles to the exact same arithmetic."""

    CONFIG = DCAConfig(seed=29, iterations=30, refinement_iterations=40, sample_size=300)

    @pytest.mark.parametrize(
        "make_objective",
        [
            lambda: DisparityObjective(("group_a", "group_b")),
            lambda: LogDiscountedDisparityObjective(("group_a", "group_b")),
            lambda: DisparateImpactObjective(("group_a", "group_b")),
            lambda: FalsePositiveRateObjective(("group_a", "group_b"), label_column="label"),
            lambda: ExposureGapObjective(("group_a", "group_b")),
        ],
        ids=["disparity", "log-discounted", "disparate-impact", "fpr", "exposure"],
    )
    def test_fit_identical_across_engines(self, make_objective):
        table = _synthetic_population()
        results = {}
        for config in _engine_pair(self.CONFIG):
            dca = DCA(
                ("group_a", "group_b"),
                ColumnScore("score"),
                k=0.2,
                objective=make_objective(),
                config=config,
            )
            results[config.engine] = dca.fit(table)
        assert np.array_equal(
            results["array"].raw_bonus.values, results["table"].raw_bonus.values
        )


class _TableOnlyObjective(FairnessObjective):
    """A custom objective with no compiled form: exercises the fallback path."""

    def evaluate(self, table, scores, k):
        from repro.ranking import selection_mask

        mask = selection_mask(np.asarray(scores, dtype=float), k)
        values = np.zeros(len(self.attribute_names))
        for i, name in enumerate(self.attribute_names):
            member = table.numeric(name) > 0.5
            if member.any():
                values[i] = float(mask[member].mean() - mask.mean())
        return DisparityResult(self.attribute_names, values)


class TestProcessBackendEquivalence:
    """The shared-memory process backend closes the loop with both engines.

    ``fit_many(executor="process")`` must agree bitwise with per-job
    ``DCA.fit`` runs under the *table* engine: worker results travel
    process → array plane → table plane without a single bit of drift.
    """

    CONFIG = DCAConfig(seed=23, iterations=30, refinement_iterations=40, sample_size=300)

    def test_process_backend_matches_table_engine_fits(self, school_setup):
        table, rubric, attributes = school_setup
        ks = (0.05, 0.1)
        seeds = (3, 4)
        dca = DCA(attributes, rubric, k=0.05, config=self.CONFIG)
        batch = dca.fit_many(table, ks=ks, seeds=seeds, executor="process", max_workers=2)
        solo_results = [
            DCA(
                attributes,
                rubric,
                k=k,
                config=replace(self.CONFIG, seed=seed, engine="table"),
            ).fit(table)
            for k in ks
            for seed in seeds
        ]
        assert len(batch) == len(solo_results)
        for entry, solo in zip(batch, solo_results):
            assert np.array_equal(entry.result.raw_bonus.values, solo.raw_bonus.values)
            assert np.array_equal(entry.result.bonus.values, solo.bonus.values)


class TestCustomObjectiveFallback:
    def test_custom_objective_runs_under_array_engine(self):
        table = _synthetic_population(1200)
        config = DCAConfig(seed=11, iterations=20, refinement_iterations=20, sample_size=200)
        results = {}
        for variant in _engine_pair(config):
            dca = DCA(
                ("group_a",),
                ColumnScore("score"),
                k=0.2,
                objective=_TableOnlyObjective(("group_a",)),
                config=variant,
            )
            results[variant.engine] = dca.fit(table)
        assert np.array_equal(
            results["array"].raw_bonus.values, results["table"].raw_bonus.values
        )
        assert results["array"].bonus["group_a"] >= 0.0
