"""Unit tests for the standalone Adam optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Adam


class TestAdamValidation:
    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=0.0)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            Adam(epsilon=0.0)

    def test_shape_mismatch(self):
        adam = Adam()
        with pytest.raises(ValueError):
            adam.step(np.zeros(3), np.zeros(2))

    def test_dimensionality_change_between_steps(self):
        adam = Adam()
        adam.step(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError):
            adam.step(np.zeros(3), np.ones(3))


class TestAdamBehaviour:
    def test_first_step_moves_against_gradient(self):
        adam = Adam(learning_rate=0.1)
        updated = adam.step(np.array([1.0, 1.0]), np.array([1.0, -1.0]))
        assert updated[0] < 1.0
        assert updated[1] > 1.0

    def test_first_step_size_is_learning_rate(self):
        # With bias correction, the very first Adam step has magnitude ≈ lr.
        adam = Adam(learning_rate=0.25)
        updated = adam.step(np.zeros(1), np.array([3.0]))
        assert updated[0] == pytest.approx(-0.25, rel=1e-6)

    def test_does_not_mutate_inputs(self):
        adam = Adam()
        parameters = np.array([1.0, 2.0])
        gradient = np.array([0.5, 0.5])
        adam.step(parameters, gradient)
        assert parameters.tolist() == [1.0, 2.0]
        assert gradient.tolist() == [0.5, 0.5]

    def test_step_count_increments(self):
        adam = Adam()
        adam.step(np.zeros(1), np.ones(1))
        adam.step(np.zeros(1), np.ones(1))
        assert adam.step_count == 2

    def test_reset_clears_state(self):
        adam = Adam()
        adam.step(np.zeros(1), np.ones(1))
        adam.reset()
        assert adam.step_count == 0
        # After reset the dimensionality can change without error.
        adam.step(np.zeros(3), np.ones(3))

    def test_converges_on_quadratic(self):
        """Adam should minimize f(x) = ||x - target||^2 reasonably quickly."""
        adam = Adam(learning_rate=0.2)
        target = np.array([3.0, -2.0])
        x = np.zeros(2)
        for _ in range(500):
            gradient = 2.0 * (x - target)
            x = adam.step(x, gradient)
        assert np.allclose(x, target, atol=0.05)

    def test_per_parameter_adaptivity(self):
        """A parameter with a consistently larger gradient should not dominate."""
        adam = Adam(learning_rate=0.1)
        x = np.array([0.0, 0.0])
        for _ in range(50):
            x = adam.step(x, np.array([100.0, 1.0]))
        # Adam normalizes by the gradient magnitude, so both coordinates move
        # by roughly the same amount despite the 100x gradient difference.
        assert abs(x[0]) == pytest.approx(abs(x[1]), rel=0.15)
