"""Property-based checks of the paper's Theorem 4.1 and sampling lemmas.

Theorem 4.1: at every step of Full DCA, if swapping an unselected object p
with a selected object q would reduce the overall disparity, the update gives
p more additional bonus points than q.  Algebraically the claim reduces to
``D · (F_p − F_q) < 0`` whenever the swap lowers the disparity norm — which is
exactly what the property below verifies on random populations.

Lemmas 4.2–4.5: sample centroids and sample disparities are unbiased, low
error estimators of their population counterparts; verified statistically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DisparityCalculator
from repro.ranking import selection_mask
from repro.tabular import Table


@st.composite
def population_with_two_attributes(draw):
    n = draw(st.integers(min_value=12, max_value=80))
    rng_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(rng_seed)
    a = (rng.uniform(size=n) < draw(st.floats(0.2, 0.8))).astype(float)
    b = (rng.uniform(size=n) < draw(st.floats(0.2, 0.8))).astype(float)
    scores = rng.normal(size=n) - draw(st.floats(0.0, 2.0)) * a - draw(st.floats(0.0, 2.0)) * b
    return Table({"a": a, "b": b}), scores


class TestTheorem41:
    @given(data=population_with_two_attributes(), k=st.floats(0.1, 0.6))
    @settings(max_examples=60, deadline=None)
    def test_descent_direction_rewards_beneficial_swaps(self, data, k):
        """If swapping q (selected) with p (unselected) lowers the disparity
        norm, then the Full-DCA update direction gives p more points than q:
        −D·F_p > −D·F_q, i.e. D·(F_p − F_q) < 0."""
        table, scores = data
        attributes = ("a", "b")
        calculator = DisparityCalculator(attributes).fit(table)
        mask = selection_mask(scores, k)
        if mask.all() or not mask.any():
            return
        disparity = calculator.disparity(table, scores, k).vector
        matrix = table.matrix(list(attributes))
        selected_indices = np.flatnonzero(mask)
        unselected_indices = np.flatnonzero(~mask)
        s = len(selected_indices)
        selected_centroid = matrix[mask].mean(axis=0)
        population_centroid = matrix.mean(axis=0)

        rng = np.random.default_rng(0)
        for _ in range(10):
            q = rng.choice(selected_indices)
            p = rng.choice(unselected_indices)
            swapped_centroid = selected_centroid + (matrix[p] - matrix[q]) / s
            old_norm = np.linalg.norm(selected_centroid - population_centroid)
            new_norm = np.linalg.norm(swapped_centroid - population_centroid)
            if new_norm < old_norm - 1e-12:
                assert float(disparity @ (matrix[p] - matrix[q])) < 1e-9

    @given(data=population_with_two_attributes(), k=st.floats(0.1, 0.6),
           learning_rate=st.floats(0.01, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_update_adds_more_points_to_underrepresented_groups(self, data, k, learning_rate):
        """The Full-DCA step −L·D is non-negative exactly on the dimensions
        whose disparity is non-positive (under-represented groups gain points)."""
        table, scores = data
        calculator = DisparityCalculator(("a", "b")).fit(table)
        disparity = calculator.disparity(table, scores, k).vector
        update = -learning_rate * disparity
        for dimension in range(2):
            if disparity[dimension] < 0:
                assert update[dimension] > 0
            elif disparity[dimension] > 0:
                assert update[dimension] < 0


class TestSamplingLemmas:
    def test_sample_centroid_is_unbiased(self):
        """Lemma 4.2: the sample centroid estimates the population centroid."""
        rng = np.random.default_rng(7)
        n = 50_000
        flags = (rng.uniform(size=n) < 0.37).astype(float)
        table = Table({"flag": flags})
        population_mean = flags.mean()
        estimates = []
        for _ in range(200):
            sample = table.sample(500, rng=rng)
            estimates.append(sample.numeric("flag").mean())
        estimates = np.asarray(estimates)
        assert estimates.mean() == pytest.approx(population_mean, abs=0.01)
        assert estimates.std() < 0.05

    def test_sample_quantile_is_consistent(self):
        """Lemma 4.3: the k-quantile of a sample tracks the population quantile."""
        rng = np.random.default_rng(8)
        population = rng.normal(size=100_000)
        true_quantile = np.quantile(population, 0.95)
        estimates = [
            np.quantile(rng.choice(population, size=500, replace=False), 0.95)
            for _ in range(200)
        ]
        assert np.mean(estimates) == pytest.approx(true_quantile, abs=0.05)

    def test_sample_disparity_is_unbiased(self):
        """Theorem 4.5: the sample disparity estimates the population disparity."""
        rng = np.random.default_rng(9)
        n = 40_000
        flags = (rng.uniform(size=n) < 0.3).astype(float)
        scores = rng.normal(size=n) - 1.0 * flags
        table = Table({"flag": flags, "__score__": scores})
        calculator = DisparityCalculator(["flag"]).fit(table)
        population_value = calculator.disparity(table, scores, 0.1)["flag"]
        estimates = []
        for _ in range(150):
            indices = rng.choice(n, size=600, replace=False)
            sample = table.take(indices)
            estimates.append(
                calculator.disparity(sample, sample.numeric("__score__"), 0.1)["flag"]
            )
        estimates = np.asarray(estimates)
        assert estimates.mean() == pytest.approx(population_value, abs=0.02)
        assert estimates.std() < 0.08
