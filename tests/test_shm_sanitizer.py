"""The shm sanitizer catches real leaks — including from subprocesses.

The deliberate-leak tests create a segment that nothing unlinks and assert
the sanitizer reports it by name: without the sanitizer those leaks would
sail through silently (the assertions here are exactly what the autouse
fixture in ``conftest.py`` enforces for every test).  Each test unlinks
its leak afterwards so the autouse guard sees a clean window.
"""

from __future__ import annotations

import subprocess
import sys
from multiprocessing import shared_memory

import pytest

from repro.analysis.shm_sanitizer import ShmSanitizer
from repro.datasets import SchoolGeneratorConfig, generate_school_cohort

#: Leaks a segment from a child process.  ``resource_tracker.unregister``
#: stops the child's exit-time tracker from unlinking it for us — the same
#: shape as a worker crashing before cleanup.
_LEAK_SCRIPT = """
from multiprocessing import shared_memory, resource_tracker

segment = shared_memory.SharedMemory(create=True, size=128)
try:
    resource_tracker.unregister(segment._name, "shared_memory")
except Exception:
    pass
segment.close()
print(segment.name)
"""


def _unlink(name: str) -> None:
    segment = shared_memory.SharedMemory(name=name)
    try:
        segment.close()
    finally:
        segment.unlink()


def test_subprocess_leak_is_reported():
    sanitizer = ShmSanitizer()
    sanitizer.start()
    if not sanitizer.filesystem_tracking:
        sanitizer.stop()
        pytest.skip("no OS-level segment directory on this platform")
    result = subprocess.run(
        [sys.executable, "-c", _LEAK_SCRIPT], capture_output=True, text=True
    )
    leaked = sanitizer.stop()
    assert result.returncode == 0, result.stderr
    name = result.stdout.strip()
    try:
        assert name in leaked, f"sanitizer missed subprocess leak {name!r}: {leaked}"
    finally:
        _unlink(name)


def test_in_process_leak_is_reported():
    with ShmSanitizer() as sanitizer:
        segment = shared_memory.SharedMemory(create=True, size=64)
        # close() without unlink() still leaks the backing segment.
        segment.close()
    try:
        assert segment.name in sanitizer.leaked
    finally:
        segment.unlink()


def test_clean_shared_cohort_reports_nothing():
    """``generate_school_cohort(shared=True)`` + close() leaves no residue."""
    sanitizer = ShmSanitizer()
    sanitizer.start()
    cohort = generate_school_cohort(
        "sanitizer-clean", SchoolGeneratorConfig(num_students=512), seed=3, shared=True
    )
    try:
        assert cohort.store is not None
    finally:
        cohort.close()
    assert sanitizer.stop() == ()


def test_unlinked_segment_is_not_a_leak():
    with ShmSanitizer() as sanitizer:
        # Deliberately sequential (no finally): the subject under test.
        segment = shared_memory.SharedMemory(create=True, size=64)  # repro-lint: disable=R2
        segment.close()
        segment.unlink()
    assert sanitizer.leaked == ()


def test_sanitizer_lifecycle_guards():
    sanitizer = ShmSanitizer()
    with pytest.raises(RuntimeError):
        sanitizer.stop()
    sanitizer.start()
    assert sanitizer.active
    with pytest.raises(RuntimeError):
        sanitizer.start()
    assert sanitizer.stop() == ()
    assert not sanitizer.active


def test_autouse_guard_is_active(shm_sanitizer):
    """The conftest fixture really wraps every test in a running sanitizer."""
    assert isinstance(shm_sanitizer, ShmSanitizer)
    assert shm_sanitizer.active
