"""Property-based suite: the deferred-acceptance axioms on random instances.

``tests/test_matching.py`` pins the three engines to *each other*; this
module pins them to the *theory*.  On seeded randomized instances (heavy
ties, NaN-unacceptable pairings, fully-unacceptable students, zero-capacity
schools, oversized capacities, empty preference lists) every engine and both
proposing sides must satisfy the Gale–Shapley axioms:

* **feasibility** — rosters within capacity, every match mutually
  acceptable (student listed the school, school scores the student), the
  ``assignment``/``rosters``/``matched_rank`` views consistent;
* **stability** — no blocking pair: no student prefers a school (that finds
  the student acceptable) to their match while that school has a free seat
  or holds somebody it likes less;
* **student-optimality** of student-proposing results and
  **school-optimality** of school-proposing results — each side's optimal
  stable matching weakly dominates the other side's, which the tests verify
  pairwise (plus a handcrafted instance whose two optima are known exactly);
* the **rural-hospitals** consequence — every stable matching matches the
  same set of students and fills every school to the same count.

The instances are generated from seeded ``numpy`` generators (no new
dependencies), so failures reproduce exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.matching import deferred_acceptance

ENGINES = ("heap", "vector", "reference")
SEEDS = range(18)


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


def _instance(seed: int):
    """A seeded instance covering every adversarial shape at once."""
    rng = np.random.default_rng(seed)
    num_students = int(rng.integers(2, 70))
    num_schools = int(rng.integers(1, 7))
    preferences: list[list[int]] = []
    for _ in range(num_students):
        if rng.random() < 0.1:
            preferences.append([])
            continue
        length = int(rng.integers(1, num_schools + 1))
        preferences.append(
            [int(s) for s in rng.choice(num_schools, size=length, replace=False)]
        )
    capacities = [int(c) for c in rng.integers(0, 6, size=num_schools)]
    if rng.random() < 0.1:
        capacities = [int(c) for c in rng.integers(num_students, num_students + 3, size=num_schools)]
    # Few distinct score values: ties dominate.  NaN = unacceptable, with the
    # occasional fully-unacceptable student.
    plane = rng.integers(0, 3, size=(num_schools, num_students)).astype(float)
    plane[rng.random((num_schools, num_students)) < 0.2] = np.nan
    plane[:, rng.random(num_students) < 0.05] = np.nan
    return preferences, plane, capacities


def _school_prefers(plane, school, a, b) -> bool:
    """The strict school preference: higher score, ties to the lower index."""
    return (plane[school, a], -a) > (plane[school, b], -b)


# ----------------------------------------------------------------------
# feasibility
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("proposing", ("students", "schools"))
def test_feasibility_and_view_consistency(seed, engine, proposing):
    preferences, plane, capacities = _instance(seed)
    match = deferred_acceptance(
        preferences, plane, capacities, engine=engine, proposing=proposing
    )

    seen: set[int] = set()
    for school, roster in enumerate(match.rosters):
        assert len(roster) <= capacities[school], "capacity exceeded"
        for student in roster:
            assert student not in seen, "student on two rosters"
            seen.add(student)
            assert match.assignment[student] == school
            assert school in preferences[student], "student never listed the school"
            assert not np.isnan(plane[school, student]), "school never ranked the student"
        # Rosters are ordered by the strict school preference, best first.
        for better, worse in zip(roster, roster[1:]):
            assert _school_prefers(plane, school, better, worse)

    for student in range(len(preferences)):
        school = int(match.assignment[student])
        rank = int(match.matched_rank[student])
        if school < 0:
            assert rank == -1
            assert student not in seen
        else:
            assert student in seen
            assert preferences[student][rank] == school
    assert match.num_unmatched == len(preferences) - len(seen)


# ----------------------------------------------------------------------
# stability
# ----------------------------------------------------------------------
def _assert_stable(preferences, plane, capacities, match) -> None:
    for student, prefs in enumerate(preferences):
        assigned = int(match.assignment[student])
        current_rank = prefs.index(assigned) if assigned >= 0 else len(prefs)
        for school in prefs[:current_rank]:
            # The student strictly prefers `school` to their match.  If the
            # school would take them, the pair blocks the matching.
            if capacities[school] == 0 or np.isnan(plane[school, student]):
                continue
            roster = match.roster(school)
            assert len(roster) == capacities[school], (
                f"blocking pair: student {student} acceptable to school "
                f"{school}, which has a free seat"
            )
            weakest = roster[-1]
            assert _school_prefers(plane, school, weakest, student), (
                f"blocking pair: school {school} prefers student {student} "
                f"to its weakest admit {weakest}"
            )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("proposing", ("students", "schools"))
def test_no_blocking_pair(seed, engine, proposing):
    preferences, plane, capacities = _instance(seed)
    match = deferred_acceptance(
        preferences, plane, capacities, engine=engine, proposing=proposing
    )
    _assert_stable(preferences, plane, capacities, match)


# ----------------------------------------------------------------------
# optimality of each proposing side
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_student_proposing_is_student_optimal(seed, engine):
    """Every student weakly prefers the student-proposing outcome to the
    school-proposing one (the student-optimal matching dominates every
    stable matching, of which the school-optimal one is the extreme)."""
    preferences, plane, capacities = _instance(seed)
    student_optimal = deferred_acceptance(
        preferences, plane, capacities, engine=engine, proposing="students"
    )
    school_optimal = deferred_acceptance(
        preferences, plane, capacities, engine=engine, proposing="schools"
    )
    for student in range(len(preferences)):
        ours = int(student_optimal.matched_rank[student])
        theirs = int(school_optimal.matched_rank[student])
        if theirs >= 0:
            assert 0 <= ours <= theirs, (
                f"student {student} does better under school-proposing DA"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_school_proposing_is_school_optimal(seed, engine):
    """Every school weakly prefers its school-proposing roster, seat by
    seat: with responsive preferences the school-optimal stable matching
    dominates elementwise (students in one roster but not the other are
    uniformly ordered between two stable matchings)."""
    preferences, plane, capacities = _instance(seed)
    student_optimal = deferred_acceptance(
        preferences, plane, capacities, engine=engine, proposing="students"
    )
    school_optimal = deferred_acceptance(
        preferences, plane, capacities, engine=engine, proposing="schools"
    )
    for school in range(len(capacities)):
        preferred = school_optimal.roster(school)
        fallback = student_optimal.roster(school)
        assert len(preferred) == len(fallback)
        for mine, other in zip(preferred, fallback):
            if mine != other:
                assert _school_prefers(plane, school, mine, other)


@pytest.mark.parametrize("seed", SEEDS)
def test_rural_hospitals(seed, engine):
    """Both stable matchings match the same students and fill every school
    to the same count."""
    preferences, plane, capacities = _instance(seed)
    student_optimal = deferred_acceptance(
        preferences, plane, capacities, engine=engine, proposing="students"
    )
    school_optimal = deferred_acceptance(
        preferences, plane, capacities, engine=engine, proposing="schools"
    )
    assert np.array_equal(
        student_optimal.assignment >= 0, school_optimal.assignment >= 0
    )
    assert [len(r) for r in student_optimal.rosters] == [
        len(r) for r in school_optimal.rosters
    ]


def test_known_divergent_instance(engine):
    """A two-sided tug-of-war whose two optima are known in closed form."""
    preferences = [[0, 1], [1, 0]]
    plane = np.array([[1.0, 2.0], [2.0, 1.0]])
    student_optimal = deferred_acceptance(
        preferences, plane, [1, 1], engine=engine, proposing="students"
    )
    school_optimal = deferred_acceptance(
        preferences, plane, [1, 1], engine=engine, proposing="schools"
    )
    assert student_optimal.assignment.tolist() == [0, 1]
    assert school_optimal.assignment.tolist() == [1, 0]
    _assert_stable(preferences, plane, [1, 1], student_optimal)
    _assert_stable(preferences, plane, [1, 1], school_optimal)
