"""Schema guard for the committed BENCH_*.json performance trajectory.

The benchmarks record their headline numbers via
``benchmarks/_bench_record.record_bench`` (regen with ``REPRO_REGEN_BENCH=1``,
CI artifacts via ``REPRO_BENCH_OUT``).  This suite pins the recorder's
destination/merge semantics and validates every committed payload, so a
malformed regen cannot land silently.
"""

from __future__ import annotations

import importlib.util
import json
from numbers import Number
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

_spec = importlib.util.spec_from_file_location(
    "_bench_record", BENCH_DIR / "_bench_record.py"
)
_bench_record = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_bench_record)

COMMITTED = sorted(BENCH_DIR.glob("BENCH_*.json"))


def _assert_numeric_leaves(mapping: dict, where: str) -> None:
    for key, value in mapping.items():
        if isinstance(value, dict):
            _assert_numeric_leaves(value, f"{where}.{key}")
        else:
            assert isinstance(value, Number) and not isinstance(value, bool), (
                f"{where}.{key} must be a number, got {value!r}"
            )


def test_expected_trajectory_files_are_committed() -> None:
    names = {path.name for path in COMMITTED}
    assert {
        "BENCH_sharded_fit.json",
        "BENCH_matching.json",
        "BENCH_scheduler.json",
    } <= names


@pytest.mark.parametrize("path", COMMITTED, ids=[p.name for p in COMMITTED])
def test_committed_payload_schema(path: Path) -> None:
    payload = json.loads(path.read_text())
    assert set(payload) == {"schema", "bench", "metrics", "context"}
    assert payload["schema"] == _bench_record.SCHEMA
    assert path.name == f"BENCH_{payload['bench']}.json"
    assert payload["metrics"], "metrics must not be empty"
    _assert_numeric_leaves(payload["metrics"], f"{path.name}:metrics")
    _assert_numeric_leaves(payload["context"], f"{path.name}:context")
    # Speedup metrics are ratios > 0 wherever they appear.
    stack = [payload["metrics"]]
    while stack:
        mapping = stack.pop()
        for key, value in mapping.items():
            if isinstance(value, dict):
                stack.append(value)
            elif key == "speedup":
                assert value > 0


class TestRecorder:
    def test_silent_without_destination(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_OUT", raising=False)
        monkeypatch.delenv("REPRO_REGEN_BENCH", raising=False)
        payload = _bench_record.record_bench("smoke", {"seconds": 1.5})
        assert payload["metrics"] == {"seconds": 1.5}
        assert not list(tmp_path.iterdir())

    def test_writes_artifact_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        monkeypatch.delenv("REPRO_REGEN_BENCH", raising=False)
        _bench_record.record_bench("smoke", {"seconds": 2.0}, context={"rows": 10})
        written = json.loads((tmp_path / "BENCH_smoke.json").read_text())
        assert written["bench"] == "smoke"
        assert written["metrics"] == {"seconds": 2.0}
        assert written["context"] == {"rows": 10}

    def test_merges_groups_across_records(self, tmp_path, monkeypatch):
        """Two benchmark tests can land in one trajectory file."""
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        _bench_record.record_bench("smoke", {"left": {"speedup": 3.0}})
        _bench_record.record_bench(
            "smoke", {"right": {"speedup": 5.0}}, context={"rows": 7}
        )
        written = json.loads((tmp_path / "BENCH_smoke.json").read_text())
        assert set(written["metrics"]) == {"left", "right"}
        assert written["context"] == {"rows": 7}

    def test_mismatched_schema_is_replaced_not_merged(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        target = tmp_path / "BENCH_smoke.json"
        target.write_text(json.dumps({"schema": 0, "bench": "smoke", "metrics": {"old": 1}}))
        _bench_record.record_bench("smoke", {"new": 2.0})
        written = json.loads(target.read_text())
        assert written["schema"] == _bench_record.SCHEMA
        assert written["metrics"] == {"new": 2.0}
