"""Known-good R2 fixture: every accepted cleanup shape, one per function."""

import contextlib
from multiprocessing import shared_memory

from repro.core.parallel import SharedColumnStore, SharedPopulationPlane


def with_block(num_rows):
    with SharedColumnStore(num_rows, ("a",)) as store:
        return store.table().num_rows


def with_closing(num_rows):
    with contextlib.closing(SharedColumnStore(num_rows, ("a",))) as store:
        return store.table().num_rows


def try_finally(num_rows):
    store = SharedColumnStore(num_rows, ("a",))
    try:
        return store.table().num_rows
    finally:
        store.close()


def cleanup_on_error(num_rows):
    plane = SharedPopulationPlane.allocate({"x": ("<f8", (num_rows,))})
    try:
        plane.view("x")[...] = 0.0
    except BaseException:
        plane.close()
        raise
    return plane


def ownership_transfer(num_rows):
    return SharedColumnStore(num_rows, ("a",))


def attach_and_hand_back(name):
    segment = shared_memory.SharedMemory(name=name)
    return segment


def exit_stack(num_rows):
    with contextlib.ExitStack() as stack:
        store = SharedColumnStore(num_rows, ("a",))
        stack.callback(store.close)
        other = SharedColumnStore(num_rows, ("b",))
        stack.enter_context(other)
        return store.table().num_rows + other.table().num_rows


class OwnsSegment:
    def __init__(self, num_rows):
        self._store = SharedColumnStore(num_rows, ("a",))

    def close(self):
        self._store.close()
