"""Known-good R6 fixture: every write descriptor-indexed, callees included.

Mirrors ``r6_bad.py`` shape for shape: position scatters, a bounds slice,
the nameable scatter helper, and a callee — all indexed through taint that
originates at ``state.bounds[shard]`` / ``shard_sample_positions``.
"""


def _shard_worker_step(state, shard, sample):
    lo, hi = state.bounds[shard]
    positions = shard_sample_positions(state.indices, lo, hi)
    local = sample[positions]
    state.scratch[positions] = local
    state.scratch[lo:hi, 0] = local.sum()
    scatter_fields(state.scratch, positions, local)
    _flush(state.scratch, positions, local)
    return positions.shape[0]


def _flush(scratch, rows, values):
    scratch[rows] = values
