"""Known-bad R5 fixture: hidden randomness behind fit-reachable helpers.

Every violation here is *invisible to R1*: the draws live in helpers, in a
directory R1 does not audit, and only the call graph connects them to the
``fit`` / ``_shard_worker_step`` entry points.
"""

import random
import time

import numpy as np


def _hidden_jitter():
    return random.random()  # LINT-EXPECT: R5


def _entropy_stream():
    return np.random.default_rng()  # LINT-EXPECT: R5


def _global_draw(n):
    return np.random.rand(n)  # LINT-EXPECT: R5


def _stamp():
    return time.time()  # LINT-EXPECT: R5


def fit(values):
    stream = _entropy_stream()
    noise = _global_draw(len(values)) + _hidden_jitter()
    return values + noise, stream, _stamp()


def _fork_stream(seed):
    # Seeded, so fine on an ordinary fit path — but reachable from the
    # row-shard worker below, where minting ANY generator is a violation.
    return np.random.default_rng(seed)  # LINT-EXPECT: R5


def _shard_worker_step(job):
    rng = _fork_stream(1234)
    return rng.integers(0, 10)
