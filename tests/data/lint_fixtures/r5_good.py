"""Known-good R5 fixture: lineage threaded from a seeded root generator.

The same call-graph shape as ``r5_bad.py``, but every stream derives from
a seed or a ``Generator`` parameter, and the row-shard worker consumes
only the arrays it was handed — it never mints RNG state of its own.
"""

import numpy as np


def _config_stream(seed):
    return np.random.default_rng(seed)


def _draw(rng: np.random.Generator, n):
    return rng.choice(n, size=2, replace=False)


def fit(values, seed):
    rng = _config_stream(seed)
    return _draw(rng, len(values))


def _shard_worker_step(state, shard, sample):
    lo, hi = state.bounds[shard]
    positions = shard_sample_positions(state.indices, lo, hi)
    state.scratch[positions] = sample[positions]
    return positions.shape[0]
