"""Known-bad R3 fixture: broken map-reduce contracts."""

import numpy as np


class PartialWithoutMerge:  # LINT-EXPECT: R3
    def partial(self, indices, scores, k):
        return {"scores": scores}


class ExportWithoutFromState:  # LINT-EXPECT: R3
    def export_state(self):
        return {}, {}


class ReducesInsidePartial:
    def shard_fields(self):
        return {}

    def partial(self, indices, scores, k):
        total = np.sum(scores)  # LINT-EXPECT: R3
        mixed = scores.mean()  # LINT-EXPECT: R3
        proj = scores @ scores  # LINT-EXPECT: R3
        return {"scores": scores, "total": total, "mixed": mixed, "proj": proj}

    def merge(self, accumulators, k):
        return accumulators
