"""Known-bad R1 fixture: hidden-global randomness and clocks in a hot path."""

import random
import time
from datetime import datetime

import numpy as np


def draw_sample(values):
    pick = np.random.rand(len(values))  # LINT-EXPECT: R1
    np.random.seed(0)  # LINT-EXPECT: R1
    jitter = random.random()  # LINT-EXPECT: R1
    stamp = time.time()  # LINT-EXPECT: R1
    now = datetime.now()  # LINT-EXPECT: R1
    rng = np.random.default_rng()  # LINT-EXPECT: R1
    return pick, jitter, stamp, now, rng
