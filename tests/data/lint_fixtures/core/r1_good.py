"""Known-good R1 fixture: randomness threaded through seeded generators."""

import time

import numpy as np


def draw_sample(values, rng: np.random.Generator):
    start = time.perf_counter()
    seeded = np.random.default_rng(1234)
    pick = rng.choice(len(values), size=2, replace=False)
    elapsed = time.perf_counter() - start
    return pick, seeded, elapsed
