"""Escape-hatch fixture: a real R1 violation silenced by a disable comment."""

import numpy as np


def entropy_fallback(rng):
    # The justification comment travels with the disable, as in real code.
    return rng or np.random.default_rng()  # repro-lint: disable=R1
