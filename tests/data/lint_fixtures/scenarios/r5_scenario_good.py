"""Known-good scenario fixture: trial streams derived from the config seed.

Same call-graph shape as ``scenarios/r5_scenario_bad.py``, but every
generator is minted from an explicit ``(seed, trial)`` pair on the
ordinary fit path — the idiom ``repro.scenarios.market`` uses — and the
row-shard worker only consumes arrays it was handed.
"""

import numpy as np


def _trial_stream(seed, trial):
    return np.random.default_rng((seed, trial))


def _market_noise(rng, num_students):
    return rng.normal(0.0, 1.0, size=num_students)


def fit(market):
    rng = _trial_stream(market.seed, market.trial)
    return market.base_scores + _market_noise(rng, market.num_students)


def _shard_worker_step(state, shard, sample):
    lo, hi = state.bounds[shard]
    positions = scenario_shard_positions(state.indices, lo, hi)
    state.scratch[positions] = sample[positions]
    return positions.shape[0]
