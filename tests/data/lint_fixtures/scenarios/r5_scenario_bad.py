"""Known-bad scenario fixture: a market-shape worker minting its own RNG.

Lives under a ``scenarios/`` directory, which is hot-path for R1 — so the
unseeded draws are flagged twice: directly by R1, and interprocedurally by
R5 through the ``fit`` / ``_shard_worker_step`` entry points.
"""

import numpy as np


def _market_noise(num_students):
    return np.random.rand(num_students)  # LINT-EXPECT: R1, R5


def _trial_stream():
    return np.random.default_rng()  # LINT-EXPECT: R1, R5


def fit(market):
    noise = _market_noise(market.num_students)
    return market.base_scores + noise * _trial_stream().normal()


def _scenario_shard_stream(seed):
    # Seeded, so R1 has no complaint — but the row-shard worker below may
    # not mint ANY generator, so R5 flags the minting site.
    return np.random.default_rng(seed)  # LINT-EXPECT: R5


def _shard_worker_step(job):
    rng = _scenario_shard_stream(job.seed)
    return rng.integers(0, job.num_rows)
