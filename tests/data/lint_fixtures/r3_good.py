"""Known-good R3 fixture: partial gathers, merge owns every reduction."""

import numpy as np


class WellFormedCompiled:
    def shard_fields(self):
        return {"matrix": self._matrix}

    def partial(self, indices, scores, k):
        # Pure gathers: bit-exact regardless of shard order.
        return {"scores": scores, "rows": self._matrix[indices]}

    def merge(self, accumulators, k):
        rows = np.concatenate([acc["rows"] for acc in accumulators])
        return float(np.sum(rows) / max(k, 1))

    def export_state(self):
        return {"matrix": self._matrix}, {}

    @classmethod
    def from_state(cls, arrays, metadata):
        instance = cls.__new__(cls)
        instance._matrix = arrays["matrix"]
        return instance
