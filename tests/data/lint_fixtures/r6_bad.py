"""Known-bad R6 fixture: out-of-shard writes into shared worker state.

Four distinct violation shapes: a scratch store indexed by something that
is not the shard descriptor, a write into a read-only population array, a
``scatter_fields`` call fed undescribed positions, and an untainted store
inside a callee the scratch view was passed to.
"""


def _shard_worker_step(state, shard, sample):
    lo, hi = state.bounds[shard]
    positions = shard_sample_positions(state.indices, lo, hi)
    everything = range(state.num_rows)
    state.scratch[everything] = sample  # LINT-EXPECT: R6
    state.base[positions] = sample[positions]  # LINT-EXPECT: R6
    scatter_fields(state.scratch, everything, sample)  # LINT-EXPECT: R6
    _flush(state.scratch, everything, sample)
    return positions


def _flush(scratch, rows, values):
    scratch[rows] = values  # LINT-EXPECT: R6
