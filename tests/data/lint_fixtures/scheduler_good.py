"""Known-good scheduler fixture: the doorbell worker loop, R5/R6-clean.

Mirrors the real :func:`repro.core.scheduler._scheduler_worker_loop` shape:
a long-lived loop that blocks on a barrier, reads the step command out of
the control block, and serves its strided shards through the shared step
kernel.  Every write is indexed through the worker's own shard descriptor
(or its private ledger row), and no RNG state is minted anywhere on the
worker path — the parent owns the fit's one sample stream.
"""


def _scheduler_worker_loop(worker_id, num_workers, state, start_barrier, done_barrier):
    while True:
        start_barrier.wait()
        command = int(state.command[0])
        if command == 0:
            return
        bonus_values = state.bonus.copy()
        num_sampled = int(state.command[1])
        for shard in range(worker_id, len(state.bounds), num_workers):
            state.served[shard] = _shard_worker_serve(
                state, shard, bonus_values, num_sampled
            )
        done_barrier.wait()


def _shard_worker_serve(state, shard, bonus_values, num_sampled):
    lo, hi = state.bounds[shard]
    positions = shard_sample_positions(state.indices[:num_sampled], lo, hi)
    local = bonus_values[positions]
    state.scratch[positions] = local
    scatter_fields(state.scratch, positions, local)
    state.topk[1][shard, : positions.shape[0]] = positions
    state.topk[2][shard] = positions.shape[0]
    return positions.shape[0]
