"""Known-good R4 fixture: module-level workers, descriptor payloads."""

import concurrent.futures


def _work(descriptor):
    return descriptor * 2


def _init_worker(payload):
    del payload


def fan_out(descriptors):
    with concurrent.futures.ProcessPoolExecutor(
        initializer=_init_worker, initargs=(None,)
    ) as pool:
        return list(pool.map(_work, descriptors))


def threads_may_close_over_anything(table):
    # Thread pools share the address space: closures over tables are legal.
    with concurrent.futures.ThreadPoolExecutor() as pool:
        return list(pool.map(lambda row: table.take(row), range(3)))
