"""Known-bad scheduler fixture: RNG minting and an untainted top-k write.

The same doorbell loop shape as ``scheduler_good.py``, with the two
violations the scheduler rules exist to catch: the step kernel mints its
own generator (even seeded, workers must never own RNG state — R5 on the
worker path), and it scatters into the scratch at a position that never
came from the shard descriptor (R6).
"""

import numpy as np


def _scheduler_worker_loop(worker_id, num_workers, state, start_barrier, done_barrier):
    while True:
        start_barrier.wait()
        if int(state.command[0]) == 0:
            return
        bonus_values = state.bonus.copy()
        num_sampled = int(state.command[1])
        for shard in range(worker_id, len(state.bounds), num_workers):
            state.served[shard] = _shard_worker_serve(
                state, shard, bonus_values, num_sampled
            )
        done_barrier.wait()


def _shard_worker_serve(state, shard, bonus_values, num_sampled):
    lo, hi = state.bounds[shard]
    positions = shard_sample_positions(state.indices[:num_sampled], lo, hi)
    rng = np.random.default_rng(shard)  # LINT-EXPECT: R5
    jitter = int(rng.integers(0, num_sampled))
    state.scratch[positions] = bonus_values[positions]
    state.scratch[jitter] = 1.0  # LINT-EXPECT: R6
    return positions.shape[0]
