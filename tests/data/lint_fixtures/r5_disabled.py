"""Escape-hatch fixture: a fit-reachable entropy fallback silenced inline."""

import numpy as np


def _entropy_fallback(rng):
    # Documented fallback for callers that opt out of reproducibility; the
    # justification travels with the disable, exactly as in real code.
    return rng or np.random.default_rng()  # repro-lint: disable=R5


def fit(values, rng=None):
    stream = _entropy_fallback(rng)
    return stream.choice(len(values))
