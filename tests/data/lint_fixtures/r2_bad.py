"""Known-bad R2 fixture: shared-memory allocations that can escape."""

from multiprocessing import shared_memory

from repro.core.parallel import SharedColumnStore
from repro.datasets import generate_school_cohort


def leak_segment():
    segment = shared_memory.SharedMemory(create=True, size=64)  # LINT-EXPECT: R2
    return segment.name


def close_without_finally(num_rows):
    store = SharedColumnStore(num_rows, ("a",))  # LINT-EXPECT: R2
    table = store.table()
    store.close()  # leaks if table() raises above
    return table


def bare_allocation():
    shared_memory.SharedMemory(create=True, size=64)  # LINT-EXPECT: R2


def shared_cohort_dropped(config):
    cohort = generate_school_cohort("leak", config, seed=1, shared=True)  # LINT-EXPECT: R2
    return cohort.table.num_rows


class NoCleanupOwner:
    def __init__(self, num_rows):
        self._store = SharedColumnStore(num_rows, ("a",))  # LINT-EXPECT: R2
