"""Known-bad R4 fixture: unpicklable or heavyweight pool submissions."""

import concurrent.futures
import multiprocessing


def _echo(value):
    return value


def fan_out(jobs, table):
    def gather(job):
        return table.take(job)

    with concurrent.futures.ProcessPoolExecutor() as pool:
        first = pool.submit(lambda job: job + 1, jobs[0])  # LINT-EXPECT: R4
        rest = list(pool.map(gather, jobs))  # LINT-EXPECT: R4
        heavy = pool.submit(_echo, table)  # LINT-EXPECT: R4
    return first, rest, heavy


def bad_initializer(jobs):
    def setup():
        pass

    with concurrent.futures.ProcessPoolExecutor(initializer=setup) as pool:  # LINT-EXPECT: R4
        return list(pool.map(_echo, jobs))


class SelfSubmitter:
    def __init__(self):
        self._pool = multiprocessing.Pool(2)

    def run(self, jobs):
        return self._pool.map(self._step, jobs)  # LINT-EXPECT: R4

    def _step(self, job):
        return job
