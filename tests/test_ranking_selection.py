"""Unit tests for repro.ranking.selection and repro.ranking.ranking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ranking import (
    Ranking,
    rank_positions,
    rank_table,
    selection_mask,
    selection_size,
    selection_threshold,
    top_k_indices,
    ColumnScore,
)
from repro.tabular import Table


class TestSelectionSize:
    def test_five_percent_of_hundred(self):
        assert selection_size(100, 0.05) == 5

    def test_rounds_up(self):
        assert selection_size(10, 0.05) == 1
        assert selection_size(101, 0.05) == 6

    def test_full_selection(self):
        assert selection_size(10, 1.0) == 10

    def test_zero_objects(self):
        assert selection_size(0, 0.5) == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            selection_size(10, 0.0)
        with pytest.raises(ValueError):
            selection_size(10, 1.5)

    def test_negative_population(self):
        with pytest.raises(ValueError):
            selection_size(-1, 0.5)

    def test_at_least_one_selected(self):
        assert selection_size(3, 0.01) == 1


class TestRankPositions:
    def test_simple_ordering(self):
        ranks = rank_positions(np.array([1.0, 3.0, 2.0]))
        assert ranks.tolist() == [2, 0, 1]

    def test_ties_broken_by_index(self):
        ranks = rank_positions(np.array([2.0, 2.0, 1.0]))
        assert ranks.tolist() == [0, 1, 2]

    def test_empty(self):
        assert rank_positions(np.array([])).shape == (0,)


class TestTopK:
    def test_top_k_indices_order(self):
        scores = np.array([5.0, 1.0, 3.0, 4.0])
        assert top_k_indices(scores, 0.5).tolist() == [0, 3]

    def test_selection_mask_count(self):
        scores = np.arange(100, dtype=float)
        mask = selection_mask(scores, 0.1)
        assert mask.sum() == 10
        assert mask[90:].all()

    def test_threshold_is_last_selected_score(self):
        scores = np.array([10.0, 9.0, 8.0, 7.0])
        assert selection_threshold(scores, 0.5) == 9.0

    def test_threshold_empty(self):
        with pytest.raises(ValueError):
            selection_threshold(np.array([]), 0.5)

    def test_ties_at_boundary_deterministic(self):
        scores = np.array([1.0, 1.0, 1.0, 1.0])
        assert top_k_indices(scores, 0.5).tolist() == [0, 1]

    def test_mask_ties_admitted_in_row_order(self):
        # Three objects tie at the boundary score; the earliest rows win.
        scores = np.array([5.0, 2.0, 2.0, 2.0, 1.0])
        mask = selection_mask(scores, 0.6)  # size 3: the 5.0 plus two of the 2.0s
        assert mask.tolist() == [True, True, True, False, False]

    def test_mask_matches_top_k_indices_under_heavy_ties(self):
        """The partition-based mask must select exactly the lexsort top-k set."""
        rng = np.random.default_rng(31)
        for _ in range(300):
            n = int(rng.integers(1, 120))
            scores = rng.integers(0, 6, size=n).astype(float)  # heavy ties
            k = float(rng.uniform(0.01, 1.0))
            reference = np.zeros(n, dtype=bool)
            reference[top_k_indices(scores, k)] = True
            assert np.array_equal(selection_mask(scores, k), reference)

    def test_mask_handles_nan_scores_like_lexsort(self):
        scores = np.array([3.0, np.nan, 2.0, np.nan, 1.0])
        reference = np.zeros(5, dtype=bool)
        reference[top_k_indices(scores, 0.6)] = True
        assert np.array_equal(selection_mask(scores, 0.6), reference)


class TestRankingObject:
    @pytest.fixture
    def ranking(self):
        table = Table({"score": [1.0, 4.0, 3.0, 2.0], "flag": [1, 0, 1, 0]})
        return Ranking(table, table.numeric("score"))

    def test_shape_validation(self):
        table = Table({"x": [1.0, 2.0]})
        with pytest.raises(ValueError):
            Ranking(table, np.array([1.0]))

    def test_ranks(self, ranking):
        assert ranking.ranks.tolist() == [3, 0, 1, 2]

    def test_order_and_sorted_table(self, ranking):
        assert ranking.order().tolist() == [1, 2, 3, 0]
        assert ranking.sorted_table().numeric("score").tolist() == [4.0, 3.0, 2.0, 1.0]

    def test_selected_and_unselected_partition(self, ranking):
        selected = ranking.selected(0.5)
        unselected = ranking.unselected(0.5)
        assert selected.num_rows + unselected.num_rows == ranking.num_objects
        assert selected.numeric("score").tolist() == [4.0, 3.0]

    def test_selected_mask_matches_size(self, ranking):
        assert ranking.selected_mask(0.25).sum() == ranking.selection_size(0.25)

    def test_with_scores_re_ranks(self, ranking):
        reranked = ranking.with_scores(np.array([4.0, 3.0, 2.0, 1.0]))
        assert reranked.order().tolist() == [0, 1, 2, 3]

    def test_centroid_population_vs_selection(self, ranking):
        population = ranking.centroid(["flag"])
        selected = ranking.centroid(["flag"], k=0.5)
        assert population[0] == pytest.approx(0.5)
        assert selected[0] == pytest.approx(0.5)

    def test_rank_table_helper(self):
        table = Table({"x": [2.0, 1.0]})
        ranking = rank_table(table, ColumnScore("x"))
        assert ranking.order().tolist() == [0, 1]
