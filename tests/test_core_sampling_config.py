"""Unit tests for repro.core.sampling and repro.core.config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DCAConfig, SampleStream, rarest_group_frequency, recommended_sample_size
from repro.tabular import Table


class TestRarestGroupFrequency:
    def test_picks_the_rarest_binary_group(self):
        table = Table({"common": [1] * 50 + [0] * 50, "rare": [1] * 10 + [0] * 90})
        assert rarest_group_frequency(table, ["common", "rare"]) == pytest.approx(0.1)

    def test_majority_attribute_counts_its_complement(self):
        """Regression: a mean-0.9 attribute has a rarest group of 0.1 (the 0s).

        The old implementation reported the share of 1s only, so the
        ``max(1/k, 1/r)`` rule sized samples ~9x too small for majority-1
        attributes.
        """
        table = Table({"majority": [1] * 90 + [0] * 10})
        assert rarest_group_frequency(table, ["majority"]) == pytest.approx(0.1)

    def test_complement_considered_across_attributes(self):
        # 1s-frequency 0.8 → complement 0.2 is rarer than the other column's 0.3.
        table = Table({"mostly_on": [1] * 80 + [0] * 20, "flag": [1] * 30 + [0] * 70})
        assert rarest_group_frequency(table, ["mostly_on", "flag"]) == pytest.approx(0.2)

    def test_ignores_continuous_attributes(self):
        table = Table({"eni": np.linspace(0, 1, 100), "flag": [1] * 30 + [0] * 70})
        assert rarest_group_frequency(table, ["eni", "flag"]) == pytest.approx(0.3)

    def test_all_continuous_returns_one(self):
        table = Table({"eni": np.linspace(0, 1, 50)})
        assert rarest_group_frequency(table, ["eni"]) == 1.0

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            rarest_group_frequency(Table({"x": []}), ["x"])

    def test_all_ones_group_not_rarest(self):
        table = Table({"always": [1] * 20, "rare": [1] * 2 + [0] * 18})
        assert rarest_group_frequency(table, ["always", "rare"]) == pytest.approx(0.1)


class TestRecommendedSampleSize:
    def test_rule_follows_selection_fraction(self):
        # k = 1% needs 30 / 0.01 = 3000 rows.
        assert recommended_sample_size(0.01, 1.0) == 3000

    def test_rule_follows_rarest_group(self):
        # r = 10% needs 30 / 0.1 = 300 rows (k is not binding).
        assert recommended_sample_size(0.5, 0.1) == 300

    def test_maximum_of_both(self):
        assert recommended_sample_size(0.05, 0.1) == max(30 / 0.05, 30 / 0.1)

    def test_floor_applies(self):
        assert recommended_sample_size(0.9, 0.9, minimum=250) == 250

    def test_cap_applies(self):
        assert recommended_sample_size(0.001, 0.5, maximum=5000) == 5000

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            recommended_sample_size(0.0, 0.5)
        with pytest.raises(ValueError):
            recommended_sample_size(0.5, 0.0)
        with pytest.raises(ValueError):
            recommended_sample_size(0.5, 0.5, min_group_count=0)

    def test_paper_setting_scale(self):
        """The paper's setting (k=5%, rarest group 10%) needs a few hundred rows."""
        size = recommended_sample_size(0.05, 0.1)
        assert 300 <= size <= 700

    def test_cap_above_floor_leaves_floor_intact(self):
        # maximum > minimum: the floor applies as usual, no warning.
        assert recommended_sample_size(0.9, 0.9, minimum=250, maximum=10_000) == 250

    def test_cap_below_floor_wins_with_warning(self):
        """Regression: when maximum < minimum the cap must win, loudly.

        The old code silently returned a size below ``minimum``; the clamp
        order is now documented (cap last, cap wins) and announced.
        """
        with pytest.warns(UserWarning, match="cap"):
            size = recommended_sample_size(0.5, 0.5, minimum=100, maximum=40)
        assert size == 40

    def test_non_positive_cap_rejected(self):
        with pytest.raises(ValueError):
            recommended_sample_size(0.5, 0.5, maximum=0)


class TestSampleStream:
    def test_draw_size(self, rng):
        table = Table({"x": np.arange(100.0)})
        stream = SampleStream(table, 10, rng=rng)
        assert stream.draw().num_rows == 10

    def test_sample_size_capped_at_table_size(self, rng):
        table = Table({"x": np.arange(5.0)})
        stream = SampleStream(table, 50, rng=rng)
        assert stream.draw() is table

    def test_iteration_protocol(self, rng):
        table = Table({"x": np.arange(50.0)})
        stream = iter(SampleStream(table, 5, rng=rng))
        assert next(stream).num_rows == 5

    def test_draws_differ(self):
        table = Table({"x": np.arange(1000.0)})
        stream = SampleStream(table, 20, rng=np.random.default_rng(0))
        first = stream.draw().numeric("x")
        second = stream.draw().numeric("x")
        assert not np.array_equal(first, second)

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            SampleStream(Table({"x": []}), 5, rng=rng)
        with pytest.raises(ValueError):
            SampleStream(Table({"x": [1.0]}), 0, rng=rng)

    def test_draw_indices_are_integer_arrays(self, rng):
        table = Table({"x": np.arange(200.0)})
        indices = SampleStream(table, 20, rng=rng).draw_indices()
        assert indices.dtype.kind == "i"
        assert indices.shape == (20,)
        assert np.all((0 <= indices) & (indices < 200))

    def test_draw_indices_identity_when_capped(self, rng):
        table = Table({"x": np.arange(5.0)})
        indices = SampleStream(table, 50, rng=rng).draw_indices()
        assert np.array_equal(indices, np.arange(5))

    def test_draw_and_draw_indices_share_rng_sequence(self):
        """The two faces of the stream must see the same sample sequence."""
        table = Table({"x": np.arange(500.0)})
        via_tables = SampleStream(table, 30, rng=np.random.default_rng(8))
        via_indices = SampleStream(table, 30, rng=np.random.default_rng(8))
        for _ in range(5):
            drawn = via_tables.draw().numeric("x")
            indices = via_indices.draw_indices()
            assert np.array_equal(drawn, table.numeric("x")[indices])


class TestSampleStreamStratifyEdgeCases:
    """Pinned behaviour of stratified streams on degenerate inputs.

    The contract in every degenerate case is *graceful degradation to the
    uniform stream*: a stratum with nothing to protect builds no correction
    and consumes no extra RNG state, so the draw sequence stays bit-for-bit
    identical to an unstratified stream with the same seed.
    """

    @staticmethod
    def _rare_population(n: int = 2_000, members: int = 12) -> Table:
        rng = np.random.default_rng(7)
        rare = np.zeros(n)
        rare[rng.choice(n, size=members, replace=False)] = 1.0
        return Table({"score": rng.normal(10.0, 2.0, size=n), "rare": rare})

    def test_stratum_emptied_by_filtering_degrades_to_uniform(self):
        """Filtering away every member leaves a 0%-prevalence attribute.

        ``_build_strata`` must skip it (there is nothing left to protect),
        not crash or try to sample from an empty pool.
        """
        table = self._rare_population()
        filtered = table.filter(lambda t: t.numeric("rare") < 0.5)
        assert float(filtered.numeric("rare").sum()) == 0.0
        stratified = SampleStream(
            filtered, 100, rng=np.random.default_rng(3), stratify=("rare",)
        )
        uniform = SampleStream(filtered, 100, rng=np.random.default_rng(3))
        for _ in range(5):
            assert np.array_equal(stratified.draw_indices(), uniform.draw_indices())

    def test_all_majority_attribute_degrades_to_uniform(self):
        """A 100%-prevalence attribute has no rarest side to enforce."""
        table = Table(
            {
                "score": np.arange(500.0),
                "always": np.ones(500),
            }
        )
        stratified = SampleStream(
            table, 50, rng=np.random.default_rng(4), stratify=("always",)
        )
        uniform = SampleStream(table, 50, rng=np.random.default_rng(4))
        for _ in range(5):
            assert np.array_equal(stratified.draw_indices(), uniform.draw_indices())

    def test_degenerate_attribute_does_not_disturb_real_stratum(self):
        """Mixing an all-ones attribute in leaves the real stratum enforced."""
        table = self._rare_population()
        mixed = table.with_column("always", np.ones(table.num_rows))
        member_mask = table.numeric("rare") > 0.5
        stream = SampleStream(
            mixed, 100, rng=np.random.default_rng(9), stratify=("always", "rare")
        )
        for _ in range(50):
            assert member_mask[stream.draw_indices()].any()

    def test_stratify_with_per_phase_batching_enforces_every_row(self):
        """``rng_batching="per_phase"`` draws still honour the stratum minimum."""
        table = self._rare_population()
        member_mask = table.numeric("rare") > 0.5
        stratified = SampleStream(
            table,
            100,
            rng=np.random.default_rng(5),
            stratify=("rare",),
            min_stratum_count=2,
        )
        matrix = stratified.draw_phase_indices(50)
        assert matrix.shape == (50, 100)
        assert min(int(member_mask[row].sum()) for row in matrix) >= 2
        # The guarantee is not vacuous: the uniform per-phase stream with the
        # same seed misses the group in some rows of the same phase.
        uniform = SampleStream(table, 100, rng=np.random.default_rng(5))
        uniform_matrix = uniform.draw_phase_indices(50)
        assert any(not member_mask[row].any() for row in uniform_matrix)

    def test_stratify_with_per_phase_identity_broadcast(self):
        """Full-population phases take the read-only identity fast path.

        ``draw_phase_indices`` returns a broadcast identity matrix when the
        sample covers the population; the strata pass must not try to mutate
        it (every group is trivially fully represented).
        """
        table = self._rare_population(n=200, members=5)
        stream = SampleStream(
            table, 5_000, rng=np.random.default_rng(1), stratify=("rare",)
        )
        matrix = stream.draw_phase_indices(3)
        assert matrix.shape == (3, 200)
        for row in matrix:
            assert np.array_equal(row, np.arange(200))


class TestDCAConfig:
    def test_defaults_are_valid(self):
        DCAConfig().validate()

    def test_learning_rates_must_decrease(self):
        with pytest.raises(ValueError):
            DCAConfig(learning_rates=(0.1, 1.0)).validate()

    def test_learning_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            DCAConfig(learning_rates=(1.0, -0.1)).validate()

    def test_learning_rates_required(self):
        with pytest.raises(ValueError):
            DCAConfig(learning_rates=()).validate()

    def test_iterations_positive(self):
        with pytest.raises(ValueError):
            DCAConfig(iterations=0).validate()

    def test_negative_refinement_rejected(self):
        with pytest.raises(ValueError):
            DCAConfig(refinement_iterations=-1).validate()

    def test_granularity_non_negative(self):
        with pytest.raises(ValueError):
            DCAConfig(granularity=-0.5).validate()

    def test_max_bonus_above_min(self):
        with pytest.raises(ValueError):
            DCAConfig(min_bonus=5.0, max_bonus=1.0).validate()

    def test_sample_size_positive_when_given(self):
        with pytest.raises(ValueError):
            DCAConfig(sample_size=0).validate()

    def test_without_refinement_copy(self):
        config = DCAConfig(seed=3, max_bonus=20.0)
        stripped = config.without_refinement()
        assert stripped.refinement_iterations == 0
        assert stripped.seed == 3
        assert stripped.max_bonus == 20.0
        assert config.refinement_iterations > 0  # original untouched

    def test_without_refinement_preserves_engine(self):
        assert DCAConfig(engine="table").without_refinement().engine == "table"

    def test_engine_validated(self):
        with pytest.raises(ValueError):
            DCAConfig(engine="pandas").validate()
        DCAConfig(engine="array").validate()
        DCAConfig(engine="table").validate()
