"""Unit tests for repro.core.bonus (BonusVector)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BonusVector, apply_bonus
from repro.tabular import Table


@pytest.fixture
def table():
    return Table(
        {
            "low_income": [1, 0, 1, 0],
            "ell": [0, 0, 1, 1],
            "eni": [0.5, 0.1, 0.9, 0.2],
        }
    )


class TestConstruction:
    def test_from_mapping(self):
        bonus = BonusVector({"a": 1.0, "b": 2.5})
        assert bonus.attribute_names == ("a", "b")
        assert bonus["b"] == 2.5

    def test_from_names_and_values(self):
        bonus = BonusVector(attribute_names=["a", "b"], values=[1.0, 2.0])
        assert bonus.as_dict() == {"a": 1.0, "b": 2.0}

    def test_requires_some_input(self):
        with pytest.raises(ValueError):
            BonusVector()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            BonusVector(attribute_names=["a"], values=[1.0, 2.0])

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            BonusVector(attribute_names=["a", "a"], values=[1.0, 2.0])

    def test_zeros_constructor(self):
        bonus = BonusVector.zeros(["x", "y"])
        assert bonus.as_dict() == {"x": 0.0, "y": 0.0}

    def test_unknown_attribute_lookup(self):
        with pytest.raises(KeyError):
            BonusVector({"a": 1.0})["b"]

    def test_values_read_only(self):
        bonus = BonusVector({"a": 1.0})
        with pytest.raises(ValueError):
            bonus.values[0] = 2.0

    def test_iteration_and_len(self):
        bonus = BonusVector({"a": 1.0, "b": 2.0})
        assert list(bonus) == ["a", "b"]
        assert len(bonus) == 2


class TestTransformations:
    def test_scaled(self):
        bonus = BonusVector({"a": 2.0, "b": 4.0}).scaled(0.5)
        assert bonus.as_dict() == {"a": 1.0, "b": 2.0}

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            BonusVector({"a": 1.0}).scaled(-0.5)

    def test_clipped_bounds(self):
        bonus = BonusVector({"a": -1.0, "b": 25.0}).clipped(0.0, 20.0)
        assert bonus.as_dict() == {"a": 0.0, "b": 20.0}

    def test_clipped_invalid_bounds(self):
        with pytest.raises(ValueError):
            BonusVector({"a": 1.0}).clipped(5.0, 1.0)

    def test_rounded_to_half_points(self):
        bonus = BonusVector({"a": 1.26, "b": 11.74}).rounded(0.5)
        assert bonus.as_dict() == {"a": 1.5, "b": 11.5}

    def test_rounded_rejects_non_positive_granularity(self):
        with pytest.raises(ValueError):
            BonusVector({"a": 1.0}).rounded(0.0)

    def test_replace(self):
        bonus = BonusVector({"a": 1.0, "b": 2.0}).replace(a=5.0)
        assert bonus.as_dict() == {"a": 5.0, "b": 2.0}

    def test_replace_unknown(self):
        with pytest.raises(KeyError):
            BonusVector({"a": 1.0}).replace(zzz=2.0)

    def test_norm(self):
        assert BonusVector({"a": 3.0, "b": 4.0}).norm() == pytest.approx(5.0)

    def test_transformations_return_new_objects(self):
        original = BonusVector({"a": 1.0})
        scaled = original.scaled(2.0)
        assert original["a"] == 1.0
        assert scaled["a"] == 2.0


class TestApplication:
    def test_binary_attribute_adds_full_bonus(self, table):
        bonus = BonusVector({"low_income": 2.0, "ell": 0.0, "eni": 0.0})
        base = np.zeros(4)
        adjusted = bonus.apply(table, base)
        assert adjusted.tolist() == [2.0, 0.0, 2.0, 0.0]

    def test_continuous_attribute_scales_bonus(self, table):
        bonus = BonusVector({"low_income": 0.0, "ell": 0.0, "eni": 10.0})
        adjusted = bonus.apply(table, np.zeros(4))
        assert adjusted.tolist() == pytest.approx([5.0, 1.0, 9.0, 2.0])

    def test_bonuses_compound_across_attributes(self, table):
        bonus = BonusVector({"low_income": 1.0, "ell": 2.0, "eni": 0.0})
        adjusted = bonus.apply(table, np.zeros(4))
        # Row 2 is both low-income and ELL: gets 1 + 2 = 3 (intersectionality).
        assert adjusted[2] == pytest.approx(3.0)

    def test_base_scores_preserved(self, table):
        bonus = BonusVector({"low_income": 1.0, "ell": 0.0, "eni": 0.0})
        base = np.array([10.0, 20.0, 30.0, 40.0])
        adjusted = bonus.apply(table, base)
        assert adjusted.tolist() == [11.0, 20.0, 31.0, 40.0]
        assert base.tolist() == [10.0, 20.0, 30.0, 40.0]

    def test_shape_validation(self, table):
        bonus = BonusVector({"low_income": 1.0})
        with pytest.raises(ValueError):
            bonus.apply(table, np.zeros(3))

    def test_apply_bonus_function(self, table):
        bonus = BonusVector({"low_income": 1.0, "ell": 0.0, "eni": 0.0})
        assert apply_bonus(table, np.zeros(4), bonus).tolist() == [1.0, 0.0, 1.0, 0.0]

    def test_adjustments_zero_for_empty_vector(self, table):
        bonus = BonusVector({})
        assert bonus.adjustments(table).tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_explain_components_sum_to_total(self, table):
        bonus = BonusVector({"low_income": 2.0, "ell": 1.0, "eni": 4.0})
        base = np.array([50.0, 60.0, 70.0, 80.0])
        explanation = bonus.explain(table, base, row=2)
        parts = [v for k, v in explanation.items() if k.startswith("bonus:")]
        assert explanation["total"] == pytest.approx(explanation["base_score"] + sum(parts))
        assert explanation["bonus:low_income"] == 2.0
        assert explanation["bonus:eni"] == pytest.approx(3.6)
