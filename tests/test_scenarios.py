"""The scenario harness: configs, markets, driver, and the golden corpus.

The committed corpus under ``tests/data/scenarios/`` is the differential
proving ground: every instance is replayed on every tier-1 run, asserting

* the golden numbers still hold (bonus vector, disparity/DDP, assignments);
* ``vector == heap == reference`` matchings on **both** proposing sides for
  every generated market shape (heavy tails, tie storms, zero/oversized
  capacities, ...);
* a ``row_workers=2`` fit is **bitwise identical** to the serial fit on
  every shape.

Regenerate after an intentional behaviour change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_scenarios.py -q

Integers compare exactly; floats via ``pytest.approx(rel=1e-9)``.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.core import DCA, DisparityObjective
from repro.matching import ENGINES, PROPOSING_SIDES, deferred_acceptance
from repro.scenarios import (
    CORPUS_K,
    ScenarioConfig,
    build_instance,
    builtin_scenarios,
    corpus_fit_config,
    corpus_scenarios,
    generate_market,
    get_scenario,
    run_scenario,
    write_corpus,
)
from repro.scenarios.configs import AttributeSpec, CapacitySpec, PreferenceSpec

CORPUS_DIR = Path(__file__).parent / "data" / "scenarios"


def _corpus_paths() -> list[Path]:
    return sorted(CORPUS_DIR.glob("*.json"))


def test_regen_golden_corpus():
    """With REPRO_REGEN_GOLDEN=1 this test rewrites the corpus and skips."""
    if not os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("set REPRO_REGEN_GOLDEN=1 to regenerate the corpus")
    paths = write_corpus(CORPUS_DIR)
    pytest.skip(f"regenerated {len(paths)} corpus instances under {CORPUS_DIR}")


def test_corpus_is_committed_and_covers_every_builtin():
    names = {path.stem for path in _corpus_paths()}
    assert names == {config.name for config in builtin_scenarios()}
    assert len(names) >= 6


@pytest.mark.parametrize("path", _corpus_paths(), ids=[p.stem for p in _corpus_paths()])
class TestCorpusReplay:
    """Every committed instance is recomputed from its embedded config."""

    def test_golden_numbers_hold(self, path: Path):
        golden = json.loads(path.read_text())
        config = ScenarioConfig.from_dict(golden["scenario"])
        rebuilt = build_instance(config)
        assert rebuilt["schema"] == golden["schema"]
        assert rebuilt["k"] == golden["k"] == CORPUS_K
        expected, observed = golden["expected"], rebuilt["expected"]
        # Integer artifacts: exact.
        assert observed["capacities"] == expected["capacities"]
        assert observed["sample_size"] == expected["sample_size"]
        assert observed["matches"] == expected["matches"]
        # Granularity-rounded bonuses land on exact multiples of 0.5, but
        # compare approx anyway so a future granularity=0 corpus still works.
        for payload_key in ("bonus", "raw_bonus"):
            assert set(observed[payload_key]) == set(expected[payload_key])
            for name, value in expected[payload_key].items():
                assert observed[payload_key][name] == pytest.approx(
                    value, rel=1e-9, abs=1e-12
                )
        for key in (
            "disparity_norm_before",
            "disparity_norm_after",
            "ddp_before",
            "ddp_after",
        ):
            assert observed[key] == pytest.approx(expected[key], rel=1e-9, abs=1e-12)

    def test_cross_engine_matchings_identical(self, path: Path):
        """vector == heap == reference, both proposing sides, on the raw plane."""
        golden = json.loads(path.read_text())
        config = ScenarioConfig.from_dict(golden["scenario"])
        market = generate_market(config, trial=0)
        for proposing in PROPOSING_SIDES:
            assignments = {}
            for engine in ENGINES:
                match = deferred_acceptance(
                    market.preferences,
                    market.score_plane,
                    list(market.capacities),
                    engine=engine,
                    proposing=proposing,
                )
                assignments[engine] = match.assignment
            for engine in ENGINES[1:]:
                assert np.array_equal(
                    assignments[ENGINES[0]], assignments[engine]
                ), f"{config.name}: {engine} differs from {ENGINES[0]} ({proposing=})"

    def test_row_sharded_fit_bitwise_equals_serial(self, path: Path):
        golden = json.loads(path.read_text())
        config = ScenarioConfig.from_dict(golden["scenario"])
        market = generate_market(config, trial=0)
        attributes = market.fairness_attributes

        def fresh_dca():
            return DCA(
                attributes,
                market.score_function(),
                CORPUS_K,
                objective=DisparityObjective(attributes),
                config=replace(corpus_fit_config(), seed=config.seed * 1_000),
            )

        serial = fresh_dca().fit(market.table)
        sharded = fresh_dca().fit(market.table, row_workers=2)
        assert np.array_equal(serial.raw_bonus.values, sharded.raw_bonus.values)
        assert np.array_equal(serial.core_bonus.values, sharded.core_bonus.values)
        assert np.array_equal(serial.bonus.values, sharded.bonus.values)


class TestScenarioConfig:
    def test_round_trips_through_json(self):
        for config in builtin_scenarios():
            assert ScenarioConfig.from_json(config.to_json()) == config

    def test_builtins_are_distinct_and_valid(self):
        configs = builtin_scenarios()
        assert len({config.name for config in configs}) == len(configs) >= 6
        for config in configs:
            config.validate()

    def test_get_scenario(self):
        assert get_scenario("tie_storm").tie_levels is not None
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_validation_rejects_bad_shapes(self):
        base = builtin_scenarios()[0]
        with pytest.raises(ValueError, match="at least two protected"):
            replace(base, attributes=(AttributeSpec("solo", 0.5),)).validate()
        with pytest.raises(ValueError, match="ordinary school"):
            replace(
                base, num_schools=2, capacities=CapacitySpec(zero_schools=1, oversized_schools=1)
            ).validate()
        with pytest.raises(ValueError, match="unknown attributes"):
            replace(base, attribute_correlations=(("a", "b", 0.5),)).validate()
        with pytest.raises(ValueError, match="tie_levels"):
            replace(base, tie_levels=1).validate()
        with pytest.raises(ValueError, match="clustered preferences"):
            PreferenceSpec(model="clustered", clusters=1).validate()

    def test_scaled_changes_size_only(self):
        config = builtin_scenarios()[0]
        scaled = config.scaled(num_students=123, trials=1)
        assert (scaled.num_students, scaled.trials) == (123, 1)
        assert scaled.capacities == config.capacities
        assert config.scaled() is config


class TestMarketShapes:
    """Each built-in scenario realizes the shape its name promises."""

    def test_generation_is_deterministic(self):
        config = corpus_scenarios()[0]
        a = generate_market(config, trial=1)
        b = generate_market(config, trial=1)
        assert np.array_equal(a.base_scores, b.base_scores)
        assert np.array_equal(a.score_plane, b.score_plane)
        assert np.array_equal(a.preferences, b.preferences)
        assert a.capacities == b.capacities
        # A different trial is a different market from the same shape.
        c = generate_market(config, trial=2)
        assert not np.array_equal(a.base_scores, c.base_scores)

    def test_heavy_tail_concentrates_seats(self):
        market = generate_market(get_scenario("heavy_tailed_capacities"))
        seats = market.capacities
        assert seats[0] > 3 * seats[1] and seats[0] > 10 * seats[-1]

    def test_zero_capacity_mix_has_both_extremes(self):
        market = generate_market(get_scenario("zero_capacity_mix"))
        assert market.capacities[0] == 0 and market.capacities[1] == 0
        assert market.capacities[-1] >= market.num_students

    def test_tie_storm_crushes_score_levels(self):
        config = get_scenario("tie_storm")
        market = generate_market(config)
        assert np.unique(market.base_scores).size <= config.tie_levels
        assert np.unique(market.score_plane).size <= config.tie_levels

    def test_intersection_column_is_the_conjunction(self):
        market = generate_market(get_scenario("intersectional_groups").scaled(360))
        table = market.table
        product = table.numeric("low_income") * table.numeric("ell")
        assert np.array_equal(table.numeric("low_income_x_ell"), product)
        assert "low_income_x_ell" in market.fairness_attributes
        assert product.sum() > 0, "intersection must be non-empty at corpus size"

    def test_attribute_prevalences_are_calibrated(self):
        config = get_scenario("clustered_preferences")
        market = generate_market(config)
        for spec in config.attributes:
            observed = float(market.table.numeric(spec.name).mean())
            assert observed == pytest.approx(spec.prevalence, abs=0.06)

    def test_invalid_trial_rejected(self):
        with pytest.raises(ValueError, match="trial"):
            generate_market(builtin_scenarios()[0], trial=-1)


class TestDriver:
    def test_envelope_smoke(self):
        config = get_scenario("tiny_district")
        envelope = run_scenario(
            config,
            trials=2,
            engines=("heap", "vector"),
            row_workers=2,
        )
        assert envelope.trials == 2
        assert envelope.all_identical()
        assert envelope.identity == {
            "engines_identical": 1,
            "sharded_bitwise_identical": 1,
        }
        for key in ("disparity_norm_before", "ddp_after", "match_share_gap"):
            stats = envelope.fairness[key]
            assert stats["min"] <= stats["mean"] <= stats["max"]
        assert "fit_serial_seconds" in envelope.runtime
        assert "fit_sharded_seconds" in envelope.runtime
        assert "match_heap_seconds" in envelope.runtime

    def test_compensation_reduces_disparity(self):
        envelope = run_scenario(
            get_scenario("clustered_preferences").scaled(num_students=360), trials=1
        )
        fairness = envelope.fairness
        assert (
            fairness["disparity_norm_after"]["mean"]
            < fairness["disparity_norm_before"]["mean"]
        )
        assert (
            fairness["representation_gap_after"]["mean"]
            < fairness["representation_gap_before"]["mean"]
        )

    def test_rejects_unknown_grid_entries(self):
        config = get_scenario("tiny_district")
        with pytest.raises(ValueError, match="unknown engine"):
            run_scenario(config, engines=("warp",))
        with pytest.raises(ValueError, match="proposing"):
            run_scenario(config, proposing_sides=("nobody",))
        with pytest.raises(KeyError, match="unknown objective"):
            run_scenario(config, objectives=("novelty",), trials=1)
