"""Unit tests for repro.tabular.column."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tabular import (
    BooleanColumn,
    CategoricalColumn,
    ColumnTypeError,
    NumericColumn,
    column_from_values,
)


class TestNumericColumn:
    def test_basic_construction(self):
        column = NumericColumn([1.0, 2.0, 3.0], name="x")
        assert len(column) == 3
        assert column.name == "x"
        assert column.mean() == pytest.approx(2.0)

    def test_integer_input_preserved(self):
        column = NumericColumn([1, 2, 3])
        assert column.values.dtype.kind in ("i", "u")

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(ColumnTypeError):
            NumericColumn(np.ones((2, 2)))

    def test_rejects_strings(self):
        with pytest.raises(ColumnTypeError):
            NumericColumn(["a", "b"])

    def test_values_are_read_only(self):
        column = NumericColumn([1.0, 2.0])
        with pytest.raises(ValueError):
            column.values[0] = 5.0

    def test_take_and_mask(self):
        column = NumericColumn([10.0, 20.0, 30.0, 40.0])
        assert column.take([3, 0]).to_list() == [40.0, 10.0]
        assert column.mask([True, False, True, False]).to_list() == [10.0, 30.0]

    def test_concat(self):
        a = NumericColumn([1.0, 2.0])
        b = NumericColumn([3.0])
        assert a.concat(b).to_list() == [1.0, 2.0, 3.0]

    def test_concat_type_mismatch(self):
        with pytest.raises(ColumnTypeError):
            NumericColumn([1.0]).concat(BooleanColumn([1]))

    def test_normalized_range(self):
        column = NumericColumn([0.0, 5.0, 10.0])
        normalized = column.normalized()
        assert normalized.to_list() == [0.0, 0.5, 1.0]

    def test_normalized_constant_column(self):
        column = NumericColumn([3.0, 3.0, 3.0])
        assert column.normalized().to_list() == [0.0, 0.0, 0.0]

    def test_summary_statistics(self):
        column = NumericColumn([1.0, 2.0, 3.0, 4.0])
        assert column.min() == 1.0
        assert column.max() == 4.0
        assert column.std() == pytest.approx(np.std([1, 2, 3, 4]))

    def test_scalar_indexing(self):
        column = NumericColumn([1.0, 2.0, 3.0])
        assert column[1] == 2.0

    def test_slice_indexing_returns_column(self):
        column = NumericColumn([1.0, 2.0, 3.0])
        assert column[1:].to_list() == [2.0, 3.0]


class TestBooleanColumn:
    def test_from_zero_one(self):
        column = BooleanColumn([0, 1, 1, 0])
        assert column.rate() == pytest.approx(0.5)

    def test_from_bools(self):
        column = BooleanColumn([True, False, True])
        assert column.to_numeric().tolist() == [1.0, 0.0, 1.0]

    def test_rejects_non_binary(self):
        with pytest.raises(ColumnTypeError):
            BooleanColumn([0, 1, 2])

    def test_rate_of_empty(self):
        assert BooleanColumn([]).rate() == 0.0

    def test_mean_matches_rate(self):
        column = BooleanColumn([1, 0, 0, 0])
        assert column.mean() == pytest.approx(column.rate())


class TestCategoricalColumn:
    def test_categories_sorted_and_coded(self):
        column = CategoricalColumn(["b", "a", "b", "c"])
        assert column.categories == ("a", "b", "c")
        assert column.labels.tolist() == ["b", "a", "b", "c"]

    def test_explicit_categories(self):
        column = CategoricalColumn(["x", "y"], categories=["y", "x", "z"])
        assert column.categories == ("y", "x", "z")

    def test_unknown_value_with_explicit_categories(self):
        with pytest.raises(ColumnTypeError):
            CategoricalColumn(["a", "q"], categories=["a", "b"])

    def test_indicator(self):
        column = CategoricalColumn(["red", "blue", "red"], name="color")
        indicator = column.indicator("red")
        assert indicator.to_numeric().tolist() == [1.0, 0.0, 1.0]
        assert indicator.name == "color=red"

    def test_indicator_unknown_category(self):
        with pytest.raises(ColumnTypeError):
            CategoricalColumn(["red"]).indicator("green")

    def test_one_hot_covers_all_categories(self):
        column = CategoricalColumn(["a", "b", "a"])
        one_hot = column.one_hot()
        assert set(one_hot) == {"a", "b"}
        assert one_hot["a"].to_numeric().tolist() == [1.0, 0.0, 1.0]

    def test_value_counts(self):
        column = CategoricalColumn(["a", "b", "a", "a"])
        assert column.value_counts() == {"a": 3, "b": 1}

    def test_take_preserves_categories(self):
        column = CategoricalColumn(["a", "b", "c"])
        taken = column.take([2, 0])
        assert taken.labels.tolist() == ["c", "a"]
        assert taken.categories == column.categories

    def test_concat_merges_different_category_sets(self):
        a = CategoricalColumn(["x", "y"])
        b = CategoricalColumn(["z"])
        merged = a.concat(b)
        assert merged.labels.tolist() == ["x", "y", "z"]


class TestColumnFromValues:
    def test_strings_become_categorical(self):
        assert isinstance(column_from_values(["a", "b"]), CategoricalColumn)

    def test_zero_one_becomes_boolean(self):
        assert isinstance(column_from_values([0, 1, 0]), BooleanColumn)

    def test_general_numbers_become_numeric(self):
        assert isinstance(column_from_values([0.5, 2.0]), NumericColumn)

    def test_existing_column_passthrough(self):
        column = NumericColumn([1.0])
        assert column_from_values(column) is column

    def test_bools_become_boolean(self):
        assert isinstance(column_from_values([True, False]), BooleanColumn)

    def test_all_zeros_is_boolean(self):
        # A constant-zero column is treated as binary, which is what fairness
        # attribute columns with no members look like in small samples.
        assert isinstance(column_from_values([0, 0, 0]), BooleanColumn)
