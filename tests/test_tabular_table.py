"""Unit tests for repro.tabular.table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tabular import (
    ColumnLengthError,
    DuplicateColumnError,
    EmptySelectionError,
    MissingColumnError,
    SchemaMismatchError,
    Table,
)


@pytest.fixture
def table():
    return Table(
        {
            "score": [3.0, 1.0, 2.0, 5.0],
            "flag": [1, 0, 1, 0],
            "group": ["a", "b", "a", "b"],
        }
    )


class TestConstruction:
    def test_basic_properties(self, table):
        assert table.num_rows == 4
        assert table.num_columns == 3
        assert table.column_names == ("score", "flag", "group")

    def test_empty_table(self):
        empty = Table()
        assert empty.num_rows == 0
        assert empty.column_names == ()

    def test_length_mismatch(self):
        with pytest.raises(ColumnLengthError):
            Table({"a": [1, 2], "b": [1, 2, 3]})

    def test_from_rows(self):
        table = Table.from_rows([{"x": 1, "y": "a"}, {"x": 2, "y": "b"}])
        assert table.numeric("x").tolist() == [1, 2]

    def test_from_rows_schema_mismatch(self):
        with pytest.raises(SchemaMismatchError):
            Table.from_rows([{"x": 1}, {"y": 2}])

    def test_from_rows_empty(self):
        assert Table.from_rows([]).num_rows == 0

    def test_from_columns_length_check(self):
        from repro.tabular import NumericColumn

        with pytest.raises(ColumnLengthError):
            Table.from_columns({"a": NumericColumn([1.0]), "b": NumericColumn([1.0, 2.0])})


class TestAccess:
    def test_column_access(self, table):
        assert table.column("score").to_list() == [3.0, 1.0, 2.0, 5.0]
        assert table["flag"].to_numeric().tolist() == [1.0, 0.0, 1.0, 0.0]

    def test_missing_column(self, table):
        with pytest.raises(MissingColumnError):
            table.column("nope")

    def test_matrix_shape_and_order(self, table):
        matrix = table.matrix(["flag", "score"])
        assert matrix.shape == (4, 2)
        assert matrix[:, 0].tolist() == [1.0, 0.0, 1.0, 0.0]

    def test_matrix_empty_names(self, table):
        assert table.matrix([]).shape == (4, 0)

    def test_row_returns_labels_for_categoricals(self, table):
        row = table.row(0)
        assert row == {"score": 3.0, "flag": True, "group": "a"}

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(10)

    def test_rows_iteration(self, table):
        rows = list(table.rows())
        assert len(rows) == 4
        assert rows[3]["group"] == "b"

    def test_contains(self, table):
        assert "score" in table
        assert "nope" not in table


class TestDerivedTables:
    def test_with_column(self, table):
        extended = table.with_column("double", table.numeric("score") * 2)
        assert "double" in extended
        assert "double" not in table  # original unchanged
        assert extended.numeric("double").tolist() == [6.0, 2.0, 4.0, 10.0]

    def test_with_column_length_check(self, table):
        with pytest.raises(ColumnLengthError):
            table.with_column("bad", [1.0])

    def test_without_columns(self, table):
        reduced = table.without_columns(["group"])
        assert reduced.column_names == ("score", "flag")

    def test_without_missing_column(self, table):
        with pytest.raises(MissingColumnError):
            table.without_columns(["nope"])

    def test_select_order(self, table):
        selected = table.select(["group", "score"])
        assert selected.column_names == ("group", "score")

    def test_rename(self, table):
        renamed = table.rename({"score": "points"})
        assert "points" in renamed
        assert "score" not in renamed

    def test_rename_duplicate(self, table):
        with pytest.raises(DuplicateColumnError):
            table.rename({"score": "flag"})

    def test_take_preserves_order(self, table):
        taken = table.take([3, 0])
        assert taken.numeric("score").tolist() == [5.0, 3.0]

    def test_filter_with_mask(self, table):
        filtered = table.filter(table.numeric("flag") > 0.5)
        assert filtered.num_rows == 2
        assert filtered.numeric("score").tolist() == [3.0, 2.0]

    def test_filter_with_callable(self, table):
        filtered = table.filter(lambda t: t.numeric("score") > 2.0)
        assert filtered.num_rows == 2

    def test_filter_shape_check(self, table):
        with pytest.raises(ColumnLengthError):
            table.filter(np.array([True, False]))

    def test_head(self, table):
        assert table.head(2).num_rows == 2
        assert table.head(100).num_rows == 4

    def test_sort_by_column(self, table):
        ordered = table.sort_by("score")
        assert ordered.numeric("score").tolist() == [1.0, 2.0, 3.0, 5.0]

    def test_sort_descending(self, table):
        ordered = table.sort_by("score", descending=True)
        assert ordered.numeric("score").tolist() == [5.0, 3.0, 2.0, 1.0]

    def test_sort_by_external_key(self, table):
        ordered = table.sort_by(np.array([4.0, 3.0, 2.0, 1.0]))
        assert ordered.numeric("score").tolist() == [5.0, 2.0, 1.0, 3.0]

    def test_sort_key_shape_check(self, table):
        with pytest.raises(ColumnLengthError):
            table.sort_by(np.array([1.0, 2.0]))

    def test_concat(self, table):
        combined = table.concat(table)
        assert combined.num_rows == 8

    def test_concat_schema_mismatch(self, table):
        other = Table({"x": [1.0]})
        with pytest.raises(SchemaMismatchError):
            table.concat(other)

    def test_concat_with_empty(self, table):
        assert Table().concat(table).num_rows == 4
        assert table.concat(Table()).num_rows == 4


class TestSamplingAndSplitting:
    def test_sample_size(self, table, rng):
        sample = table.sample(2, rng=rng)
        assert sample.num_rows == 2

    def test_sample_larger_than_table_returns_table(self, table, rng):
        assert table.sample(10, rng=rng) is table

    def test_sample_with_replacement(self, table, rng):
        sample = table.sample(10, rng=rng, replace=True)
        assert sample.num_rows == 10

    def test_sample_empty_table(self, rng):
        with pytest.raises(EmptySelectionError):
            Table().sample(1, rng=rng)

    def test_shuffle_preserves_multiset(self, table, rng):
        shuffled = table.shuffle(rng=rng)
        assert sorted(shuffled.numeric("score").tolist()) == sorted(
            table.numeric("score").tolist()
        )

    def test_split_sizes(self, rng):
        table = Table({"x": list(range(100))})
        left, right = table.split(0.3, rng=rng)
        assert left.num_rows == 30
        assert right.num_rows == 70

    def test_split_invalid_fraction(self, table, rng):
        with pytest.raises(ValueError):
            table.split(1.5, rng=rng)


class TestSummaries:
    def test_means(self, table):
        means = table.means(["score", "flag"])
        assert means["score"] == pytest.approx(2.75)
        assert means["flag"] == pytest.approx(0.5)

    def test_centroid_order(self, table):
        centroid = table.centroid(["flag", "score"])
        assert centroid.tolist() == pytest.approx([0.5, 2.75])

    def test_centroid_empty_table(self):
        with pytest.raises(EmptySelectionError):
            Table().centroid(["x"])

    def test_group_rates(self, table):
        assert table.group_rates(["flag"]) == {"flag": 0.5}

    def test_describe_skips_categoricals(self, table):
        summary = table.describe()
        assert "group" not in summary
        assert summary["score"]["max"] == 5.0

    def test_to_dict_roundtrip(self, table):
        data = table.to_dict()
        rebuilt = Table(data)
        assert rebuilt == table

    def test_equality(self, table):
        assert table == Table(table.to_dict())
        assert table != table.take([0, 1])
