"""Tests for the deferred-acceptance matching substrate.

Covers both engines (``heap`` and ``reference``), the normalized ranking
forms (score matrix / mapping / sequence), the padded preference-matrix
input, the pinned ``proposals_made`` accounting, and — because the
student-optimal stable matching is unique once school tie-breaks make
preferences strict — exact engine equivalence on randomized instances with
zero-capacity schools, unacceptable students, duplicate scores, and
exhausted preference lists.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.matching import deferred_acceptance, generate_student_preferences

ENGINES = ("heap", "reference")


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


class TestDeferredAcceptance:
    def test_simple_one_school(self, engine):
        match = deferred_acceptance(
            student_preferences=[[0], [0], [0]],
            school_rankings=[[3.0, 2.0, 1.0]],
            capacities=[2],
            engine=engine,
        )
        assert match.roster(0) == (0, 1)
        assert match.assignment.tolist() == [0, 0, -1]
        assert match.num_unmatched == 1

    def test_students_get_best_feasible_school(self, engine):
        # Both students prefer school 0, which has one seat and prefers student 1.
        match = deferred_acceptance(
            student_preferences=[[0, 1], [0, 1]],
            school_rankings=[[1.0, 2.0], [1.0, 2.0]],
            capacities=[1, 1],
            engine=engine,
        )
        assert match.assignment.tolist() == [1, 0]

    def test_stability_no_blocking_pair(self, engine):
        """Verify stability on a random instance: no student/school pair both
        prefer each other to their match."""
        rng = np.random.default_rng(4)
        num_students, num_schools = 60, 5
        preferences = generate_student_preferences(num_students, num_schools, list_length=5, rng=rng)
        rankings = [list(rng.uniform(size=num_students)) for _ in range(num_schools)]
        capacities = [8] * num_schools
        match = deferred_acceptance(preferences, rankings, capacities, engine=engine)

        def prefers(student: int, school: int) -> bool:
            assigned = match.assignment[student]
            prefs = preferences[student]
            if school not in prefs:
                return False
            if assigned < 0:
                return True
            return prefs.index(school) < prefs.index(assigned)

        for student in range(num_students):
            for school in range(num_schools):
                if not prefers(student, school):
                    continue
                roster = match.roster(school)
                if len(roster) < capacities[school]:
                    pytest.fail(f"blocking pair: student {student}, school {school} has free seats")
                weakest = min(roster, key=lambda s: rankings[school][s])
                assert rankings[school][student] <= rankings[school][weakest], (
                    f"blocking pair: student {student} preferred by school {school}"
                )

    def test_respects_capacities(self, engine):
        rng = np.random.default_rng(1)
        preferences = generate_student_preferences(50, 3, list_length=3, rng=rng)
        rankings = [list(rng.uniform(size=50)) for _ in range(3)]
        match = deferred_acceptance(preferences, rankings, [5, 7, 9], engine=engine)
        assert len(match.roster(0)) <= 5
        assert len(match.roster(1)) <= 7
        assert len(match.roster(2)) <= 9

    def test_rosters_sorted_by_school_preference(self, engine):
        match = deferred_acceptance(
            student_preferences=[[0], [0], [0]],
            school_rankings=[[1.0, 3.0, 2.0]],
            capacities=[3],
            engine=engine,
        )
        assert match.roster(0) == (1, 2, 0)

    def test_mapping_rankings_mark_unacceptable_students(self, engine):
        # Student 1 is not in school 0's ranking and can never be admitted there.
        match = deferred_acceptance(
            student_preferences=[[0], [0]],
            school_rankings=[{0: 1.0}],
            capacities=[2],
            engine=engine,
        )
        assert match.assignment.tolist() == [0, -1]

    def test_short_sequence_ranking_marks_tail_unacceptable(self, engine):
        # School 0's score list only covers student 0; student 1 is unacceptable.
        match = deferred_acceptance(
            student_preferences=[[0], [0]],
            school_rankings=[[1.0]],
            capacities=[2],
            engine=engine,
        )
        assert match.assignment.tolist() == [0, -1]

    def test_zero_capacity_school(self, engine):
        match = deferred_acceptance(
            student_preferences=[[0, 1]],
            school_rankings=[[1.0], [1.0]],
            capacities=[0, 1],
            engine=engine,
        )
        assert match.assignment.tolist() == [1]

    def test_empty_preference_list_student_unmatched(self, engine):
        match = deferred_acceptance(
            student_preferences=[[], [0]],
            school_rankings=[[1.0, 2.0]],
            capacities=[1],
            engine=engine,
        )
        assert match.assignment.tolist() == [-1, 0]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], [[1.0]], [1, 2])  # rankings/capacities mismatch
        with pytest.raises(ValueError):
            deferred_acceptance([[5]], [[1.0]], [1])  # unknown school
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], [[1.0]], [-1])  # negative capacity
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], [[1.0]], [1], engine="quantum")  # unknown engine
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], np.zeros((2, 1)), [1])  # score matrix shape

    def test_higher_ranked_student_displaces_lower(self, engine):
        # Student 2 applies last but is the school's favourite.
        match = deferred_acceptance(
            student_preferences=[[0], [0], [0]],
            school_rankings=[[2.0, 1.0, 3.0]],
            capacities=[2],
            engine=engine,
        )
        assert set(match.roster(0)) == {0, 2}


class TestScoreMatrixInput:
    def test_score_matrix_equivalent_to_sequences(self, engine):
        rng = np.random.default_rng(3)
        preferences = generate_student_preferences(30, 4, list_length=3, rng=rng)
        plane = rng.normal(size=(4, 30))
        capacities = [4, 4, 4, 4]
        from_matrix = deferred_acceptance(preferences, plane, capacities, engine=engine)
        from_lists = deferred_acceptance(
            preferences, [list(row) for row in plane], capacities, engine=engine
        )
        assert np.array_equal(from_matrix.assignment, from_lists.assignment)
        assert from_matrix.rosters == from_lists.rosters
        assert from_matrix.proposals_made == from_lists.proposals_made

    def test_nan_in_score_matrix_marks_unacceptable(self, engine):
        plane = np.array([[np.nan, 1.0]])
        match = deferred_acceptance([[0], [0]], plane, [2], engine=engine)
        assert match.assignment.tolist() == [-1, 0]


class TestPreferenceMatrixInput:
    def test_padded_matrix_equivalent_to_lists(self, engine):
        lists = [[2, 0], [1], [], [0, 1, 2]]
        matrix = np.array([[2, 0, -1], [1, -1, -1], [-1, -1, -1], [0, 1, 2]])
        rankings = [[1.0, 2.0, 3.0, 4.0]] * 3
        for capacities in ([1, 1, 1], [0, 2, 1]):
            a = deferred_acceptance(lists, rankings, capacities, engine=engine)
            b = deferred_acceptance(matrix, rankings, capacities, engine=engine)
            assert np.array_equal(a.assignment, b.assignment)
            assert a.rosters == b.rosters
            assert a.proposals_made == b.proposals_made
            assert np.array_equal(a.matched_rank, b.matched_rank)

    def test_interior_padding_rejected(self):
        with pytest.raises(ValueError):
            deferred_acceptance(np.array([[-1, 0]]), [[1.0]], [1])

    def test_out_of_range_school_rejected(self):
        with pytest.raises(ValueError):
            deferred_acceptance(np.array([[3]]), [[1.0]], [1])
        with pytest.raises(ValueError):
            deferred_acceptance(np.array([[-2]]), [[1.0]], [1])


class TestProposalAccounting:
    """Pin the ``proposals_made`` semantics: applications to zero-capacity
    schools are skipped without being counted; applications a seated school
    rejects for unacceptability are counted."""

    def test_zero_capacity_school_not_counted(self, engine):
        match = deferred_acceptance(
            student_preferences=[[0, 1]],
            school_rankings=[[1.0], [1.0]],
            capacities=[0, 1],
            engine=engine,
        )
        assert match.proposals_made == 1

    def test_unacceptable_application_counted(self, engine):
        match = deferred_acceptance(
            student_preferences=[[0], [0]],
            school_rankings=[{0: 1.0}],
            capacities=[2],
            engine=engine,
        )
        assert match.proposals_made == 2

    def test_exact_count_with_bump_chain(self, engine):
        # s0: zero-capacity school first, then school 1 (bumps s1 out);
        # s1: seated then bumped, list exhausted; s2: unacceptable at school 1.
        match = deferred_acceptance(
            student_preferences=[[0, 1], [1], [1]],
            school_rankings=[{}, {0: 2.0, 1: 1.0}],
            capacities=[0, 1],
            engine=engine,
        )
        assert match.assignment.tolist() == [1, -1, -1]
        # Counted: s0 -> school 1, s1 -> school 1, s2 -> school 1.  The
        # s0 -> school 0 application is skipped (no seats to consider it).
        assert match.proposals_made == 3
        assert match.matched_rank.tolist() == [1, -1, -1]

    def test_count_equals_sum_of_list_positions_consumed(self, engine):
        # Without zero-capacity or unacceptable entries, every consumed list
        # position is one counted proposal.
        rng = np.random.default_rng(9)
        preferences = generate_student_preferences(40, 4, list_length=3, rng=rng)
        rankings = rng.normal(size=(4, 40))
        match = deferred_acceptance(preferences, rankings, [6] * 4, engine=engine)
        consumed = 0
        for student, prefs in enumerate(preferences):
            school = match.assignment[student]
            consumed += prefs.index(school) + 1 if school >= 0 else len(prefs)
        assert match.proposals_made == consumed


class TestMatchedRank:
    def test_matched_rank_points_into_preference_lists(self, engine):
        rng = np.random.default_rng(12)
        preferences = generate_student_preferences(50, 5, list_length=4, rng=rng)
        rankings = rng.normal(size=(5, 50))
        match = deferred_acceptance(preferences, rankings, [7] * 5, engine=engine)
        for student, prefs in enumerate(preferences):
            school = match.assignment[student]
            rank = match.matched_rank[student]
            if school < 0:
                assert rank == -1
            else:
                assert prefs[rank] == school

    def test_rank_distribution_sums_to_cohort(self, engine):
        rng = np.random.default_rng(13)
        preferences = generate_student_preferences(80, 5, list_length=3, rng=rng)
        rankings = rng.normal(size=(5, 80))
        match = deferred_acceptance(preferences, rankings, [10] * 5, engine=engine)
        counts = match.rank_distribution(3)
        assert counts.shape == (4,)
        assert counts.sum() == 80
        assert counts[3] == match.num_unmatched

    def test_rank_distribution_rejects_uncovered_ranks(self, engine):
        # matched_rank is [1, 0, -1]: student 0 lands on their second choice.
        match = deferred_acceptance(
            student_preferences=[[0, 1], [0, 1], [1]],
            school_rankings=[[1.0, 2.0, 0.0], [3.0, 2.0, 1.0]],
            capacities=[1, 1],
            engine=engine,
        )
        assert match.matched_rank.tolist() == [1, 0, -1]
        with pytest.raises(ValueError):
            match.rank_distribution(1)  # would silently drop student 0
        assert match.rank_distribution(2).tolist() == [1, 1, 1]


def _random_instance(rng: np.random.Generator):
    """A randomized instance stressing every edge the engines must agree on."""
    num_students = int(rng.integers(1, 90))
    num_schools = int(rng.integers(1, 9))
    preferences = []
    for _ in range(num_students):
        if rng.random() < 0.1:
            preferences.append([])  # student who lists nothing
            continue
        length = int(rng.integers(1, num_schools + 1))
        preferences.append([int(s) for s in rng.choice(num_schools, size=length, replace=False)])
    # Zero-capacity schools and scarce seats (bumps + exhausted lists) both occur.
    capacities = [int(c) for c in rng.integers(0, 6, size=num_schools)]
    # Small integer scores force heavy tie-breaking; NaN marks unacceptable.
    plane = rng.integers(0, 4, size=(num_schools, num_students)).astype(float)
    plane[rng.random((num_schools, num_students)) < 0.15] = np.nan
    form = int(rng.integers(0, 3))
    if form == 0:
        rankings = plane
    elif form == 1:
        rankings = [
            {s: plane[school, s] for s in range(num_students) if not np.isnan(plane[school, s])}
            for school in range(num_schools)
        ]
    else:
        rankings = [list(row) for row in plane]
    return preferences, rankings, capacities


class TestEngineEquivalence:
    """The student-optimal stable matching is unique (school preferences are
    made strict by the ``-student`` tie-break), so the heap and reference
    engines must agree *exactly* — assignment, rosters, matched ranks, and
    the proposal count, which is order-independent for deferred acceptance."""

    @pytest.mark.parametrize("seed", range(25))
    def test_randomized_instances(self, seed):
        preferences, rankings, capacities = _random_instance(np.random.default_rng(seed))
        heap = deferred_acceptance(preferences, rankings, capacities, engine="heap")
        reference = deferred_acceptance(preferences, rankings, capacities, engine="reference")
        assert np.array_equal(heap.assignment, reference.assignment)
        assert heap.rosters == reference.rosters
        assert heap.proposals_made == reference.proposals_made
        assert np.array_equal(heap.matched_rank, reference.matched_rank)

    def test_midsize_instance_with_generated_preferences(self):
        rng = np.random.default_rng(99)
        preferences = generate_student_preferences(400, 12, list_length=6, rng=rng, as_matrix=True)
        plane = rng.normal(size=(12, 400))
        plane[rng.random((12, 400)) < 0.05] = np.nan
        capacities = [0, 10, 25, 25, 25, 25, 25, 25, 25, 25, 25, 25]
        heap = deferred_acceptance(preferences, plane, capacities, engine="heap")
        reference = deferred_acceptance(preferences, plane, capacities, engine="reference")
        assert np.array_equal(heap.assignment, reference.assignment)
        assert heap.rosters == reference.rosters
        assert heap.proposals_made == reference.proposals_made


class TestPreferenceGeneration:
    def test_shapes_and_validity(self, rng):
        preferences = generate_student_preferences(20, 6, list_length=3, rng=rng)
        assert len(preferences) == 20
        for prefs in preferences:
            assert len(prefs) == 3
            assert len(set(prefs)) == 3
            assert all(0 <= school < 6 for school in prefs)

    def test_list_length_capped_at_num_schools(self, rng):
        preferences = generate_student_preferences(5, 2, list_length=10, rng=rng)
        assert all(len(prefs) == 2 for prefs in preferences)

    def test_as_matrix_matches_list_form(self):
        lists = generate_student_preferences(30, 5, list_length=3, rng=np.random.default_rng(8))
        matrix = generate_student_preferences(
            30, 5, list_length=3, rng=np.random.default_rng(8), as_matrix=True
        )
        assert isinstance(matrix, np.ndarray)
        assert matrix.dtype == np.int64
        assert matrix.shape == (30, 3)
        assert matrix.tolist() == lists

    def test_popular_school_listed_first_more_often(self):
        rng = np.random.default_rng(0)
        preferences = generate_student_preferences(
            2_000, 5, list_length=1, popularity_spread=2.0, rng=rng
        )
        firsts = np.array([prefs[0] for prefs in preferences])
        counts = np.bincount(firsts, minlength=5)
        assert counts.max() > 2 * counts.min()

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            generate_student_preferences(0, 5, rng=rng)
        with pytest.raises(ValueError):
            generate_student_preferences(5, 5, list_length=0, rng=rng)
