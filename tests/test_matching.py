"""Tests for the deferred-acceptance matching substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matching import deferred_acceptance, generate_student_preferences


class TestDeferredAcceptance:
    def test_simple_one_school(self):
        match = deferred_acceptance(
            student_preferences=[[0], [0], [0]],
            school_rankings=[[3.0, 2.0, 1.0]],
            capacities=[2],
        )
        assert match.roster(0) == (0, 1)
        assert match.assignment.tolist() == [0, 0, -1]
        assert match.num_unmatched == 1

    def test_students_get_best_feasible_school(self):
        # Both students prefer school 0, which has one seat and prefers student 1.
        match = deferred_acceptance(
            student_preferences=[[0, 1], [0, 1]],
            school_rankings=[[1.0, 2.0], [1.0, 2.0]],
            capacities=[1, 1],
        )
        assert match.assignment.tolist() == [1, 0]

    def test_stability_no_blocking_pair(self):
        """Verify stability on a random instance: no student/school pair both
        prefer each other to their match."""
        rng = np.random.default_rng(4)
        num_students, num_schools = 60, 5
        preferences = generate_student_preferences(num_students, num_schools, list_length=5, rng=rng)
        rankings = [list(rng.uniform(size=num_students)) for _ in range(num_schools)]
        capacities = [8] * num_schools
        match = deferred_acceptance(preferences, rankings, capacities)

        def prefers(student: int, school: int) -> bool:
            assigned = match.assignment[student]
            prefs = preferences[student]
            if school not in prefs:
                return False
            if assigned < 0:
                return True
            return prefs.index(school) < prefs.index(assigned)

        for student in range(num_students):
            for school in range(num_schools):
                if not prefers(student, school):
                    continue
                roster = match.roster(school)
                if len(roster) < capacities[school]:
                    pytest.fail(f"blocking pair: student {student}, school {school} has free seats")
                weakest = min(roster, key=lambda s: rankings[school][s])
                assert rankings[school][student] <= rankings[school][weakest], (
                    f"blocking pair: student {student} preferred by school {school}"
                )

    def test_respects_capacities(self):
        rng = np.random.default_rng(1)
        preferences = generate_student_preferences(50, 3, list_length=3, rng=rng)
        rankings = [list(rng.uniform(size=50)) for _ in range(3)]
        match = deferred_acceptance(preferences, rankings, [5, 7, 9])
        assert len(match.roster(0)) <= 5
        assert len(match.roster(1)) <= 7
        assert len(match.roster(2)) <= 9

    def test_rosters_sorted_by_school_preference(self):
        match = deferred_acceptance(
            student_preferences=[[0], [0], [0]],
            school_rankings=[[1.0, 3.0, 2.0]],
            capacities=[3],
        )
        assert match.roster(0) == (1, 2, 0)

    def test_mapping_rankings_mark_unacceptable_students(self):
        # Student 1 is not in school 0's ranking and can never be admitted there.
        match = deferred_acceptance(
            student_preferences=[[0], [0]],
            school_rankings=[{0: 1.0}],
            capacities=[2],
        )
        assert match.assignment.tolist() == [0, -1]

    def test_zero_capacity_school(self):
        match = deferred_acceptance(
            student_preferences=[[0, 1]],
            school_rankings=[[1.0], [1.0]],
            capacities=[0, 1],
        )
        assert match.assignment.tolist() == [1]

    def test_empty_preference_list_student_unmatched(self):
        match = deferred_acceptance(
            student_preferences=[[], [0]],
            school_rankings=[[1.0, 2.0]],
            capacities=[1],
        )
        assert match.assignment.tolist() == [-1, 0]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], [[1.0]], [1, 2])  # rankings/capacities mismatch
        with pytest.raises(ValueError):
            deferred_acceptance([[5]], [[1.0]], [1])  # unknown school
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], [[1.0]], [-1])  # negative capacity

    def test_higher_ranked_student_displaces_lower(self):
        # Student 2 applies last but is the school's favourite.
        match = deferred_acceptance(
            student_preferences=[[0], [0], [0]],
            school_rankings=[[2.0, 1.0, 3.0]],
            capacities=[2],
        )
        assert set(match.roster(0)) == {0, 2}

    def test_proposals_counted(self):
        match = deferred_acceptance(
            student_preferences=[[0], [0]],
            school_rankings=[[1.0, 2.0]],
            capacities=[1],
        )
        assert match.proposals_made >= 2


class TestPreferenceGeneration:
    def test_shapes_and_validity(self, rng):
        preferences = generate_student_preferences(20, 6, list_length=3, rng=rng)
        assert len(preferences) == 20
        for prefs in preferences:
            assert len(prefs) == 3
            assert len(set(prefs)) == 3
            assert all(0 <= school < 6 for school in prefs)

    def test_list_length_capped_at_num_schools(self, rng):
        preferences = generate_student_preferences(5, 2, list_length=10, rng=rng)
        assert all(len(prefs) == 2 for prefs in preferences)

    def test_popular_school_listed_first_more_often(self):
        rng = np.random.default_rng(0)
        preferences = generate_student_preferences(
            2_000, 5, list_length=1, popularity_spread=2.0, rng=rng
        )
        firsts = np.array([prefs[0] for prefs in preferences])
        counts = np.bincount(firsts, minlength=5)
        assert counts.max() > 2 * counts.min()

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            generate_student_preferences(0, 5, rng=rng)
        with pytest.raises(ValueError):
            generate_student_preferences(5, 5, list_length=0, rng=rng)
