"""Tests for the deferred-acceptance matching substrate.

Covers all three engines (``heap``, ``vector``, ``reference``), both
proposing sides, the normalized ranking forms (score matrix / mapping /
sequence), the padded preference-matrix input, the pinned
``proposals_made`` accounting, the pinned tie-break (equal scores break by
the lower student index, identically everywhere), and — because the
proposing side's optimal stable matching is unique once school tie-breaks
make preferences strict — exact three-way engine equivalence on randomized
adversarial instances: zero-capacity schools, fully-unacceptable students,
duplicate scores/ties, empty preference lists, empty districts, and
capacities exceeding the cohort.  The DA axioms themselves (stability,
optimality, rural hospitals) live in ``tests/test_matching_properties.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.matching import deferred_acceptance, generate_student_preferences

ENGINES = ("heap", "vector", "reference")
PROPOSING = ("students", "schools")


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


@pytest.fixture(params=PROPOSING)
def proposing(request):
    return request.param


def _assert_matches_equal(left, right) -> None:
    assert np.array_equal(left.assignment, right.assignment)
    assert left.rosters == right.rosters
    assert left.proposals_made == right.proposals_made
    assert np.array_equal(left.matched_rank, right.matched_rank)


class TestDeferredAcceptance:
    def test_simple_one_school(self, engine):
        match = deferred_acceptance(
            student_preferences=[[0], [0], [0]],
            school_rankings=[[3.0, 2.0, 1.0]],
            capacities=[2],
            engine=engine,
        )
        assert match.roster(0) == (0, 1)
        assert match.assignment.tolist() == [0, 0, -1]
        assert match.num_unmatched == 1

    def test_students_get_best_feasible_school(self, engine):
        # Both students prefer school 0, which has one seat and prefers student 1.
        match = deferred_acceptance(
            student_preferences=[[0, 1], [0, 1]],
            school_rankings=[[1.0, 2.0], [1.0, 2.0]],
            capacities=[1, 1],
            engine=engine,
        )
        assert match.assignment.tolist() == [1, 0]

    def test_stability_no_blocking_pair(self, engine):
        """Verify stability on a random instance: no student/school pair both
        prefer each other to their match."""
        rng = np.random.default_rng(4)
        num_students, num_schools = 60, 5
        preferences = generate_student_preferences(num_students, num_schools, list_length=5, rng=rng)
        rankings = [list(rng.uniform(size=num_students)) for _ in range(num_schools)]
        capacities = [8] * num_schools
        match = deferred_acceptance(preferences, rankings, capacities, engine=engine)

        def prefers(student: int, school: int) -> bool:
            assigned = match.assignment[student]
            prefs = preferences[student]
            if school not in prefs:
                return False
            if assigned < 0:
                return True
            return prefs.index(school) < prefs.index(assigned)

        for student in range(num_students):
            for school in range(num_schools):
                if not prefers(student, school):
                    continue
                roster = match.roster(school)
                if len(roster) < capacities[school]:
                    pytest.fail(f"blocking pair: student {student}, school {school} has free seats")
                weakest = min(roster, key=lambda s: rankings[school][s])
                assert rankings[school][student] <= rankings[school][weakest], (
                    f"blocking pair: student {student} preferred by school {school}"
                )

    def test_respects_capacities(self, engine):
        rng = np.random.default_rng(1)
        preferences = generate_student_preferences(50, 3, list_length=3, rng=rng)
        rankings = [list(rng.uniform(size=50)) for _ in range(3)]
        match = deferred_acceptance(preferences, rankings, [5, 7, 9], engine=engine)
        assert len(match.roster(0)) <= 5
        assert len(match.roster(1)) <= 7
        assert len(match.roster(2)) <= 9

    def test_rosters_sorted_by_school_preference(self, engine):
        match = deferred_acceptance(
            student_preferences=[[0], [0], [0]],
            school_rankings=[[1.0, 3.0, 2.0]],
            capacities=[3],
            engine=engine,
        )
        assert match.roster(0) == (1, 2, 0)

    def test_mapping_rankings_mark_unacceptable_students(self, engine):
        # Student 1 is not in school 0's ranking and can never be admitted there.
        match = deferred_acceptance(
            student_preferences=[[0], [0]],
            school_rankings=[{0: 1.0}],
            capacities=[2],
            engine=engine,
        )
        assert match.assignment.tolist() == [0, -1]

    def test_short_sequence_ranking_marks_tail_unacceptable(self, engine):
        # School 0's score list only covers student 0; student 1 is unacceptable.
        match = deferred_acceptance(
            student_preferences=[[0], [0]],
            school_rankings=[[1.0]],
            capacities=[2],
            engine=engine,
        )
        assert match.assignment.tolist() == [0, -1]

    def test_zero_capacity_school(self, engine):
        match = deferred_acceptance(
            student_preferences=[[0, 1]],
            school_rankings=[[1.0], [1.0]],
            capacities=[0, 1],
            engine=engine,
        )
        assert match.assignment.tolist() == [1]

    def test_empty_preference_list_student_unmatched(self, engine):
        match = deferred_acceptance(
            student_preferences=[[], [0]],
            school_rankings=[[1.0, 2.0]],
            capacities=[1],
            engine=engine,
        )
        assert match.assignment.tolist() == [-1, 0]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], [[1.0]], [1, 2])  # rankings/capacities mismatch
        with pytest.raises(ValueError):
            deferred_acceptance([[5]], [[1.0]], [1])  # unknown school
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], [[1.0]], [-1])  # negative capacity
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], [[1.0]], [1], engine="quantum")  # unknown engine
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], np.zeros((2, 1)), [1])  # score matrix shape

    def test_higher_ranked_student_displaces_lower(self, engine):
        # Student 2 applies last but is the school's favourite.
        match = deferred_acceptance(
            student_preferences=[[0], [0], [0]],
            school_rankings=[[2.0, 1.0, 3.0]],
            capacities=[2],
            engine=engine,
        )
        assert set(match.roster(0)) == {0, 2}


class TestScoreMatrixInput:
    def test_score_matrix_equivalent_to_sequences(self, engine):
        rng = np.random.default_rng(3)
        preferences = generate_student_preferences(30, 4, list_length=3, rng=rng)
        plane = rng.normal(size=(4, 30))
        capacities = [4, 4, 4, 4]
        from_matrix = deferred_acceptance(preferences, plane, capacities, engine=engine)
        from_lists = deferred_acceptance(
            preferences, [list(row) for row in plane], capacities, engine=engine
        )
        assert np.array_equal(from_matrix.assignment, from_lists.assignment)
        assert from_matrix.rosters == from_lists.rosters
        assert from_matrix.proposals_made == from_lists.proposals_made

    def test_nan_in_score_matrix_marks_unacceptable(self, engine):
        plane = np.array([[np.nan, 1.0]])
        match = deferred_acceptance([[0], [0]], plane, [2], engine=engine)
        assert match.assignment.tolist() == [-1, 0]


class TestPreferenceMatrixInput:
    def test_padded_matrix_equivalent_to_lists(self, engine):
        lists = [[2, 0], [1], [], [0, 1, 2]]
        matrix = np.array([[2, 0, -1], [1, -1, -1], [-1, -1, -1], [0, 1, 2]])
        rankings = [[1.0, 2.0, 3.0, 4.0]] * 3
        for capacities in ([1, 1, 1], [0, 2, 1]):
            a = deferred_acceptance(lists, rankings, capacities, engine=engine)
            b = deferred_acceptance(matrix, rankings, capacities, engine=engine)
            assert np.array_equal(a.assignment, b.assignment)
            assert a.rosters == b.rosters
            assert a.proposals_made == b.proposals_made
            assert np.array_equal(a.matched_rank, b.matched_rank)

    def test_interior_padding_rejected(self):
        with pytest.raises(ValueError):
            deferred_acceptance(np.array([[-1, 0]]), [[1.0]], [1])

    def test_out_of_range_school_rejected(self):
        with pytest.raises(ValueError):
            deferred_acceptance(np.array([[3]]), [[1.0]], [1])
        with pytest.raises(ValueError):
            deferred_acceptance(np.array([[-2]]), [[1.0]], [1])


class TestProposalAccounting:
    """Pin the ``proposals_made`` semantics: applications to zero-capacity
    schools are skipped without being counted; applications a seated school
    rejects for unacceptability are counted."""

    def test_zero_capacity_school_not_counted(self, engine):
        match = deferred_acceptance(
            student_preferences=[[0, 1]],
            school_rankings=[[1.0], [1.0]],
            capacities=[0, 1],
            engine=engine,
        )
        assert match.proposals_made == 1

    def test_unacceptable_application_counted(self, engine):
        match = deferred_acceptance(
            student_preferences=[[0], [0]],
            school_rankings=[{0: 1.0}],
            capacities=[2],
            engine=engine,
        )
        assert match.proposals_made == 2

    def test_exact_count_with_bump_chain(self, engine):
        # s0: zero-capacity school first, then school 1 (bumps s1 out);
        # s1: seated then bumped, list exhausted; s2: unacceptable at school 1.
        match = deferred_acceptance(
            student_preferences=[[0, 1], [1], [1]],
            school_rankings=[{}, {0: 2.0, 1: 1.0}],
            capacities=[0, 1],
            engine=engine,
        )
        assert match.assignment.tolist() == [1, -1, -1]
        # Counted: s0 -> school 1, s1 -> school 1, s2 -> school 1.  The
        # s0 -> school 0 application is skipped (no seats to consider it).
        assert match.proposals_made == 3
        assert match.matched_rank.tolist() == [1, -1, -1]

    def test_count_equals_sum_of_list_positions_consumed(self, engine):
        # Without zero-capacity or unacceptable entries, every consumed list
        # position is one counted proposal.
        rng = np.random.default_rng(9)
        preferences = generate_student_preferences(40, 4, list_length=3, rng=rng)
        rankings = rng.normal(size=(4, 40))
        match = deferred_acceptance(preferences, rankings, [6] * 4, engine=engine)
        consumed = 0
        for student, prefs in enumerate(preferences):
            school = match.assignment[student]
            consumed += prefs.index(school) + 1 if school >= 0 else len(prefs)
        assert match.proposals_made == consumed


class TestMatchedRank:
    def test_matched_rank_points_into_preference_lists(self, engine):
        rng = np.random.default_rng(12)
        preferences = generate_student_preferences(50, 5, list_length=4, rng=rng)
        rankings = rng.normal(size=(5, 50))
        match = deferred_acceptance(preferences, rankings, [7] * 5, engine=engine)
        for student, prefs in enumerate(preferences):
            school = match.assignment[student]
            rank = match.matched_rank[student]
            if school < 0:
                assert rank == -1
            else:
                assert prefs[rank] == school

    def test_rank_distribution_sums_to_cohort(self, engine):
        rng = np.random.default_rng(13)
        preferences = generate_student_preferences(80, 5, list_length=3, rng=rng)
        rankings = rng.normal(size=(5, 80))
        match = deferred_acceptance(preferences, rankings, [10] * 5, engine=engine)
        counts = match.rank_distribution(3)
        assert counts.shape == (4,)
        assert counts.sum() == 80
        assert counts[3] == match.num_unmatched

    def test_rank_distribution_rejects_uncovered_ranks(self, engine):
        # matched_rank is [1, 0, -1]: student 0 lands on their second choice.
        match = deferred_acceptance(
            student_preferences=[[0, 1], [0, 1], [1]],
            school_rankings=[[1.0, 2.0, 0.0], [3.0, 2.0, 1.0]],
            capacities=[1, 1],
            engine=engine,
        )
        assert match.matched_rank.tolist() == [1, 0, -1]
        with pytest.raises(ValueError):
            match.rank_distribution(1)  # would silently drop student 0
        assert match.rank_distribution(2).tolist() == [1, 1, 1]


class TestSchoolProposing:
    """Semantics of ``proposing="schools"``: the school-optimal matching,
    with mirrored acceptability rules and proposal accounting."""

    def test_diverges_from_student_optimal_on_classic_instance(self, engine):
        # Both sides disagree about who should get what: students want
        # (s0->0, s1->1), schools want the opposite.  The proposing side wins.
        preferences = [[0, 1], [1, 0]]
        plane = np.array([[1.0, 2.0], [2.0, 1.0]])
        students = deferred_acceptance(
            preferences, plane, [1, 1], engine=engine, proposing="students"
        )
        schools = deferred_acceptance(
            preferences, plane, [1, 1], engine=engine, proposing="schools"
        )
        assert students.assignment.tolist() == [0, 1]
        assert schools.assignment.tolist() == [1, 0]
        assert students.matched_rank.tolist() == [0, 0]
        assert schools.matched_rank.tolist() == [1, 1]

    def test_unlisted_school_cannot_match_student(self, engine):
        # School 1 would love student 0, but student 0 never listed it.
        match = deferred_acceptance(
            [[0]], [[1.0], [5.0]], [1, 1], engine=engine, proposing="schools"
        )
        assert match.assignment.tolist() == [0]

    def test_nan_student_never_proposed_to(self, engine):
        match = deferred_acceptance(
            [[0], [0]],
            np.array([[np.nan, 1.0]]),
            [2],
            engine=engine,
            proposing="schools",
        )
        assert match.assignment.tolist() == [-1, 0]

    def test_capacity_respected(self, engine):
        rng = np.random.default_rng(21)
        preferences = generate_student_preferences(50, 3, list_length=3, rng=rng)
        plane = rng.normal(size=(3, 50))
        match = deferred_acceptance(
            preferences, plane, [5, 7, 9], engine=engine, proposing="schools"
        )
        assert [len(match.roster(j)) for j in range(3)] == [5, 7, 9]

    def test_offer_to_empty_list_student_not_counted(self, engine):
        # Student 1 lists nothing: the school's offer is skipped silently.
        # Student 0 lists only school 1: school 0's offer is counted and
        # declined.  Counted offers: school0->s0, school1->s0.
        match = deferred_acceptance(
            [[1], []],
            np.array([[2.0, 1.0], [1.0, np.nan]]),
            [1, 1],
            engine=engine,
            proposing="schools",
        )
        assert match.assignment.tolist() == [1, -1]
        assert match.proposals_made == 2

    def test_matched_rank_points_into_preference_lists(self, engine):
        rng = np.random.default_rng(5)
        preferences = generate_student_preferences(60, 5, list_length=4, rng=rng)
        plane = rng.normal(size=(5, 60))
        match = deferred_acceptance(
            preferences, plane, [7] * 5, engine=engine, proposing="schools"
        )
        for student, prefs in enumerate(preferences):
            school = match.assignment[student]
            rank = match.matched_rank[student]
            if school < 0:
                assert rank == -1
            else:
                assert prefs[rank] == school

    def test_invalid_proposing_rejected(self):
        with pytest.raises(ValueError):
            deferred_acceptance([[0]], [[1.0]], [1], proposing="teachers")


class TestTieBreakDeterminism:
    """Equal scores break in favour of the lower student index — identically
    in every engine and on both proposing sides, so heavily tied rubrics
    (integer scores, shared cut-offs) still give one deterministic match."""

    def test_all_tied_scores_admit_lowest_indices(self, engine, proposing):
        match = deferred_acceptance(
            [[0]] * 5,
            [[1.0] * 5],
            [2],
            engine=engine,
            proposing=proposing,
        )
        assert match.roster(0) == (0, 1)
        assert match.assignment.tolist() == [0, 0, -1, -1, -1]

    def test_tied_bump_prefers_lower_index(self, engine):
        # Student 2 proposes last with a tied score: the incumbent holders
        # (lower indices) keep their seats.
        match = deferred_acceptance(
            [[0], [0], [0]],
            [[2.0, 2.0, 2.0]],
            [2],
            engine=engine,
        )
        assert match.roster(0) == (0, 1)
        # ...but a strictly better late proposal still bumps the weakest.
        match = deferred_acceptance(
            [[0], [0], [0]],
            [[2.0, 2.0, 3.0]],
            [2],
            engine=engine,
        )
        assert match.roster(0) == (2, 0)

    def test_tied_rosters_order_by_student_index(self, engine, proposing):
        match = deferred_acceptance(
            [[0]] * 4,
            [[7.0, 7.0, 7.0, 7.0]],
            [4],
            engine=engine,
            proposing=proposing,
        )
        assert match.roster(0) == (0, 1, 2, 3)

    @pytest.mark.parametrize("seed", range(5))
    def test_heavily_tied_instances_identical_across_engines(self, seed, proposing):
        rng = np.random.default_rng(seed)
        num_students, num_schools = 60, 4
        preferences = generate_student_preferences(
            num_students, num_schools, list_length=3, rng=rng
        )
        # Two distinct score values only: ties everywhere.
        plane = rng.integers(0, 2, size=(num_schools, num_students)).astype(float)
        capacities = [7] * num_schools
        results = [
            deferred_acceptance(
                preferences, plane, capacities, engine=engine, proposing=proposing
            )
            for engine in ENGINES
        ]
        for other in results[1:]:
            _assert_matches_equal(results[0], other)


def _random_instance(rng: np.random.Generator):
    """A randomized instance stressing every edge the engines must agree on."""
    num_students = int(rng.integers(1, 90))
    num_schools = int(rng.integers(1, 9))
    preferences = []
    for _ in range(num_students):
        if rng.random() < 0.1:
            preferences.append([])  # student who lists nothing
            continue
        length = int(rng.integers(1, num_schools + 1))
        preferences.append([int(s) for s in rng.choice(num_schools, size=length, replace=False)])
    # Zero-capacity schools and scarce seats (bumps + exhausted lists) both
    # occur; occasionally every school is seatless (an empty district) or
    # capacities exceed the cohort (c > P).
    capacities = [int(c) for c in rng.integers(0, 6, size=num_schools)]
    shape = rng.random()
    if shape < 0.08:
        capacities = [0] * num_schools
    elif shape < 0.16:
        capacities = [int(c) for c in rng.integers(num_students, num_students + 5, size=num_schools)]
    # Small integer scores force heavy tie-breaking; NaN marks unacceptable
    # pairings, occasionally an entire student column (fully-unacceptable
    # students).
    plane = rng.integers(0, 4, size=(num_schools, num_students)).astype(float)
    plane[rng.random((num_schools, num_students)) < 0.15] = np.nan
    plane[:, rng.random(num_students) < 0.05] = np.nan
    form = int(rng.integers(0, 3))
    if form == 0:
        rankings = plane
    elif form == 1:
        rankings = [
            {s: plane[school, s] for s in range(num_students) if not np.isnan(plane[school, s])}
            for school in range(num_schools)
        ]
    else:
        rankings = [list(row) for row in plane]
    return preferences, rankings, capacities


class TestEngineEquivalence:
    """The proposing side's optimal stable matching is unique (school
    preferences are made strict by the ``-student`` tie-break), so all three
    engines must agree *exactly* — assignment, rosters, matched ranks, and
    the proposal count, which is order-independent for deferred acceptance."""

    @pytest.mark.parametrize("seed", range(25))
    def test_randomized_instances_three_way(self, seed, proposing):
        preferences, rankings, capacities = _random_instance(np.random.default_rng(seed))
        results = {
            engine: deferred_acceptance(
                preferences, rankings, capacities, engine=engine, proposing=proposing
            )
            for engine in ENGINES
        }
        _assert_matches_equal(results["heap"], results["reference"])
        _assert_matches_equal(results["vector"], results["reference"])

    @pytest.mark.parametrize(
        "capacities",
        [
            [0, 0, 0],  # empty district: nobody can be matched
            [200, 200, 200],  # c > P: nobody is ever bumped
            [0, 1, 200],  # both extremes at once
        ],
        ids=["all-zero", "oversized", "mixed"],
    )
    def test_adversarial_capacities_three_way(self, capacities, proposing):
        rng = np.random.default_rng(7)
        preferences = generate_student_preferences(40, 3, list_length=3, rng=rng)
        plane = rng.integers(0, 3, size=(3, 40)).astype(float)
        plane[:, 0] = np.nan  # a fully-unacceptable student
        results = [
            deferred_acceptance(
                preferences, plane, capacities, engine=engine, proposing=proposing
            )
            for engine in ENGINES
        ]
        for other in results[1:]:
            _assert_matches_equal(results[0], other)
        if capacities == [0, 0, 0]:
            assert results[0].num_unmatched == 40

    def test_midsize_instance_with_generated_preferences(self, proposing):
        rng = np.random.default_rng(99)
        preferences = generate_student_preferences(400, 12, list_length=6, rng=rng, as_matrix=True)
        plane = rng.normal(size=(12, 400))
        plane[rng.random((12, 400)) < 0.05] = np.nan
        capacities = [0, 10, 25, 25, 25, 25, 25, 25, 25, 25, 25, 25]
        results = [
            deferred_acceptance(
                preferences, plane, capacities, engine=engine, proposing=proposing
            )
            for engine in ENGINES
        ]
        for other in results[1:]:
            _assert_matches_equal(results[0], other)


class TestPreferenceGeneration:
    def test_shapes_and_validity(self, rng):
        preferences = generate_student_preferences(20, 6, list_length=3, rng=rng)
        assert len(preferences) == 20
        for prefs in preferences:
            assert len(prefs) == 3
            assert len(set(prefs)) == 3
            assert all(0 <= school < 6 for school in prefs)

    def test_list_length_capped_at_num_schools(self, rng):
        preferences = generate_student_preferences(5, 2, list_length=10, rng=rng)
        assert all(len(prefs) == 2 for prefs in preferences)

    def test_as_matrix_matches_list_form(self):
        lists = generate_student_preferences(30, 5, list_length=3, rng=np.random.default_rng(8))
        matrix = generate_student_preferences(
            30, 5, list_length=3, rng=np.random.default_rng(8), as_matrix=True
        )
        assert isinstance(matrix, np.ndarray)
        assert matrix.dtype == np.int64
        assert matrix.shape == (30, 3)
        assert matrix.tolist() == lists

    def test_popular_school_listed_first_more_often(self):
        rng = np.random.default_rng(0)
        preferences = generate_student_preferences(
            2_000, 5, list_length=1, popularity_spread=2.0, rng=rng
        )
        firsts = np.array([prefs[0] for prefs in preferences])
        counts = np.bincount(firsts, minlength=5)
        assert counts.max() > 2 * counts.min()

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            generate_student_preferences(0, 5, rng=rng)
        with pytest.raises(ValueError):
            generate_student_preferences(5, 5, list_length=0, rng=rng)
