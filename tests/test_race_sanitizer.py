"""The runtime write-race sanitizer: ledger math and the injected race.

Two layers: unit tests drive :func:`~repro.analysis.race_sanitizer.verify_step`
on hand-built ledgers (overlap, gap, out-of-range, unserved shard), and the
end-to-end tests run real ``DCA.fit(row_workers=N)`` — clean bounds must
stay bitwise identical to serial with the sanitizer armed, while a shard
deliberately widened by one row must die with :class:`WriteRaceError` at
the first step that samples the contested row.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.race_sanitizer import (
    ENV_FLAG,
    WriteRaceError,
    enabled,
    ledger_specs,
    record_shard_write,
    reset_step,
    verify_step,
    verify_topk,
)
from repro.core import DCA, DCAConfig
from repro.ranking import ColumnScore
from repro.tabular import Table

BOUNDS = ((0, 2), (2, 4))


def _ledger(num_shards: int = 2, sample_size: int = 6):
    specs = ledger_specs(num_shards, sample_size)
    positions = np.zeros(specs["sanitizer:positions"][1], dtype=np.int64)
    counts = np.zeros(specs["sanitizer:counts"][1], dtype=np.int64)
    reset_step(counts)
    return positions, counts


class TestLedger:
    def test_enabled_requires_exact_flag(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not enabled()
        monkeypatch.setenv(ENV_FLAG, "0")
        assert not enabled()
        monkeypatch.setenv(ENV_FLAG, "1")
        assert enabled()

    def test_specs_shapes(self):
        specs = ledger_specs(3, 500)
        assert specs["sanitizer:positions"] == ("<i8", (3, 500))
        assert specs["sanitizer:counts"] == ("<i8", (3,))

    def test_disjoint_covering_step_verifies(self):
        positions, counts = _ledger()
        record_shard_write(positions, counts, 0, np.array([0, 1]))
        record_shard_write(positions, counts, 1, np.array([2, 3]))
        verify_step(positions, counts, 4, BOUNDS)

    def test_empty_shard_still_counts_as_served(self):
        positions, counts = _ledger()
        record_shard_write(positions, counts, 0, np.arange(4))
        record_shard_write(positions, counts, 1, np.empty(0, dtype=np.int64))
        verify_step(positions, counts, 4, BOUNDS)

    def test_unserved_shard_raises(self):
        positions, counts = _ledger()
        record_shard_write(positions, counts, 0, np.array([0, 1, 2, 3]))
        with pytest.raises(WriteRaceError, match="shard 1 .* no write ledger"):
            verify_step(positions, counts, 4, BOUNDS)

    def test_overlap_names_both_writers(self):
        positions, counts = _ledger()
        record_shard_write(positions, counts, 0, np.array([0, 1, 2]))
        record_shard_write(positions, counts, 1, np.array([2, 3]))
        with pytest.raises(WriteRaceError, match=r"position 2 was written by shards \[0, 1\]"):
            verify_step(positions, counts, 4, BOUNDS)

    def test_uncovered_position_raises(self):
        positions, counts = _ledger()
        record_shard_write(positions, counts, 0, np.array([0]))
        record_shard_write(positions, counts, 1, np.array([3]))
        with pytest.raises(WriteRaceError, match="no worker wrote"):
            verify_step(positions, counts, 4, BOUNDS)

    def test_out_of_range_scatter_raises(self):
        positions, counts = _ledger()
        record_shard_write(positions, counts, 0, np.array([0, 5]))
        record_shard_write(positions, counts, 1, np.array([2, 3]))
        with pytest.raises(WriteRaceError, match="outside the sample"):
            verify_step(positions, counts, 4, BOUNDS)


class TestTopkLedger:
    """verify_topk: the distributed top-k region checked against the ledger."""

    def _step(self):
        """A verified two-shard step: shard 0 wrote {0,1,2}, shard 1 {3,4}."""
        positions, counts = _ledger(sample_size=8)
        record_shard_write(positions, counts, 0, np.array([0, 1, 2]))
        record_shard_write(positions, counts, 1, np.array([3, 4]))
        verify_step(positions, counts, 5, BOUNDS)
        topk_positions = np.zeros((2, 8), dtype=np.int64)
        topk_counts = np.zeros(2, dtype=np.int64)
        return positions, counts, topk_positions, topk_counts

    def test_consistent_candidates_verify(self):
        positions, counts, topk_positions, topk_counts = self._step()
        topk_positions[0, :2] = [0, 2]
        topk_counts[0] = 2
        topk_positions[1, :2] = [3, 4]
        topk_counts[1] = 2
        verify_topk(positions, counts, topk_positions, topk_counts, limit=2)

    def test_limit_caps_small_shards(self):
        """A shard with fewer rows than the limit publishes all of them."""
        positions, counts, topk_positions, topk_counts = self._step()
        topk_positions[0, :3] = [0, 1, 2]
        topk_counts[0] = 3
        topk_positions[1, :2] = [3, 4]
        topk_counts[1] = 2  # only scattered 2 rows, under limit 3
        verify_topk(positions, counts, topk_positions, topk_counts, limit=3)

    def test_stale_count_raises(self):
        """A count from a previous step (too many candidates) must die."""
        positions, counts, topk_positions, topk_counts = self._step()
        topk_positions[0, :2] = [0, 1]
        topk_counts[0] = 2
        topk_positions[1, :2] = [3, 4]
        topk_counts[1] = 2  # limit is 1: one candidate expected
        with pytest.raises(WriteRaceError, match="stale or truncated"):
            verify_topk(positions, counts, topk_positions, topk_counts, limit=1)

    def test_unreset_sentinel_raises(self):
        """A shard that never published (count still -1) must die."""
        positions, counts, topk_positions, topk_counts = self._step()
        topk_positions[0, :2] = [0, 1]
        topk_counts[0] = 2
        topk_counts[1] = -1  # parent reset, worker never wrote
        with pytest.raises(WriteRaceError, match="shard 1 published -1"):
            verify_topk(positions, counts, topk_positions, topk_counts, limit=2)

    def test_foreign_candidate_raises(self):
        """A candidate at a position the shard never scattered must die."""
        positions, counts, topk_positions, topk_counts = self._step()
        topk_positions[0, :2] = [0, 4]  # position 4 belongs to shard 1
        topk_counts[0] = 2
        topk_positions[1, :2] = [3, 4]
        topk_counts[1] = 2
        with pytest.raises(WriteRaceError, match=r"shard 0 .* \[4\] .* never scattered"):
            verify_topk(positions, counts, topk_positions, topk_counts, limit=2)


# ----------------------------------------------------------------------
# End to end on a real sharded fit
# ----------------------------------------------------------------------
def _cohort(n: int = 400) -> Table:
    rng = np.random.default_rng(7)
    rare = (rng.uniform(size=n) < 0.3).astype(float)
    score = rng.normal(10.0, 2.0, size=n) - rare
    return Table({"score": score, "rare": rare})


#: Full-population sample so the contested boundary row is in every step.
FULL_SAMPLE = DCAConfig(
    seed=11, iterations=5, refinement_iterations=5, sample_size=400
)


class TestEndToEnd:
    def test_clean_fit_is_bitwise_identical_under_sanitizer(self, race_sanitizer):
        table = _cohort()
        config = DCAConfig(
            seed=11, iterations=10, refinement_iterations=10, sample_size=150
        )
        dca = DCA(["rare"], ColumnScore("score"), k=0.2, config=config)
        serial = dca.fit(table)
        sharded = dca.fit(table, row_workers=2)
        assert np.array_equal(serial.raw_bonus.values, sharded.raw_bonus.values)
        assert np.array_equal(serial.bonus.values, sharded.bonus.values)

    def test_widened_shard_raises_write_race(self, race_sanitizer, monkeypatch):
        """The acceptance injection: one shard one row too wide must die loudly."""
        import repro.core.parallel as parallel

        true_bounds = parallel.compute_shard_bounds

        def widened(num_rows, shard_rows):
            bounds = true_bounds(num_rows, shard_rows)
            first_lo, first_hi = bounds[0]
            return ((first_lo, first_hi + 1),) + bounds[1:]

        monkeypatch.setattr(parallel, "compute_shard_bounds", widened)
        dca = DCA(["rare"], ColumnScore("score"), k=0.2, config=FULL_SAMPLE)
        with pytest.raises(WriteRaceError, match="write race: sample position"):
            dca.fit(_cohort(), row_workers=2)

    def test_count_preserving_race_is_silent_without_sanitizer(self, monkeypatch):
        """The bug class the sanitizer exists for: unarmed, the race is silent.

        Pure widening trips the existing total-write-count guard, so the
        truly dangerous geometry is count-preserving: shard 0 steals one
        row of shard 1 *and* shard 1 drops its last row.  One position is
        written twice, one never — totals balance, nothing raises, the fit
        quietly produces garbage.  Armed, the same geometry must die.
        """
        import repro.core.parallel as parallel

        monkeypatch.delenv(ENV_FLAG, raising=False)
        true_bounds = parallel.compute_shard_bounds

        def racy(num_rows, shard_rows):
            bounds = true_bounds(num_rows, shard_rows)
            (first_lo, first_hi), (last_lo, last_hi) = bounds[0], bounds[-1]
            return ((first_lo, first_hi + 1),) + bounds[1:-1] + ((last_lo, last_hi - 1),)

        monkeypatch.setattr(parallel, "compute_shard_bounds", racy)
        dca = DCA(["rare"], ColumnScore("score"), k=0.2, config=FULL_SAMPLE)
        dca.fit(_cohort(), row_workers=2)  # completes without any error

        monkeypatch.setenv(ENV_FLAG, "1")
        with pytest.raises(WriteRaceError):
            dca.fit(_cohort(), row_workers=2)
